//! # wake-serve
//!
//! The OLA **service layer**: many concurrent clients, one engine, one
//! memory budget. The paper's pitch is *interactive* online aggregation —
//! analysts watching estimates tighten live — and this crate is the
//! network front-end that makes the repo's single-query library calls
//! into that service: a session-oriented server multiplexing many
//! concurrent [`wake_engine::EstimateStream`]s, pushing every converging
//! estimate to its client as it lands.
//!
//! Built on `std::net` and a bounded worker pool only (the environment
//! has no registry access, so no tokio/hyper — the vendored-deps rule),
//! speaking two protocols over the same port, sniffed per connection:
//!
//! - **Line-delimited JSON over TCP** — requests like
//!   `{"op":"query","name":"q1","deadline_ms":500}` answered with a
//!   stream of `{"type":"estimate",...}` lines and a terminal
//!   `{"type":"done",...}`; plus `{"op":"explain","id":N}` (EXPLAIN
//!   ANALYZE: the finished query's [`wake_obs::QueryProfile`] as JSON)
//!   and `{"op":"list"}`.
//! - **Minimal HTTP/1.1 with chunked transfer encoding** — `GET
//!   /query/<name>[?deadline_ms=N]` streams the same ndjson lines one
//!   chunk each (curl-able), `GET /explain/<id>`, `GET /queries`.
//!
//! Three service-level guarantees, all tested:
//!
//! - **Admission control**: at most `serve_max_concurrent` queries
//!   execute, `serve_max_queued` more wait; past that, clients get a
//!   *typed* overload response (HTTP `429`) immediately — never a hang.
//! - **Global memory governance**: with `serve_global_budget` set, every
//!   executing query leases an equal slice of one
//!   [`wake_engine::GlobalGovernor`] total, re-apportioned as queries
//!   enter and leave. A burst of heavy queries spills to disk (largest
//!   resident query first) instead of OOMing the host, and every answer
//!   stays exact.
//! - **Disconnect = cancel**: a client hanging up mid-stream cancels its
//!   query through the engine's drop-cancel contract — node threads
//!   joined, spill temp directories removed, the governor lease returned.
//!
//! Estimates carry `value` / `ci_rel_half_width` telemetry for the
//! catalog entry's *watch column*, plus `rows_processed`, cumulative
//! `spill_bytes` / `scan_bytes`, and a `degraded` flag (spill device
//! failed; answer still exact).
//!
//! ```no_run
//! use wake_serve::{serve, QueryCatalog, ServeClient};
//! use wake_engine::EngineConfig;
//! # fn demo(graph: wake_core::graph::QueryGraph) -> std::io::Result<()> {
//! let mut catalog = QueryCatalog::new();
//! catalog.register_watch("revenue", graph, "revenue");
//! let server = serve(
//!     EngineConfig::threaded().with_serve_global_budget(64 << 20),
//!     catalog,
//! )?;
//! let mut client = ServeClient::connect(server.addr())?;
//! let outcome = client.query("revenue")?;
//! for est in &outcome.estimates {
//!     println!("t={:.2} value={:?}", est.t, est.value);
//! }
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod catalog;
pub mod client;
pub mod json;
pub mod registry;
pub mod server;

pub use catalog::{CatalogEntry, QueryCatalog};
pub use client::{http_get, QueryOutcome, ServeClient, WireDone, WireEstimate};
pub use registry::{QueryRecord, QueryRegistry, QueryStatus};
pub use server::{serve, ServerHandle, DEFAULT_DEADLINE};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wake_core::agg::AggSpec;
    use wake_core::graph::QueryGraph;
    use wake_data::{Column, DataFrame, DataType, Field, MemorySource, Schema};
    use wake_engine::EngineConfig;
    use wake_expr::col;

    fn sum_graph(n: i64, per_part: usize) -> QueryGraph {
        let schema = Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Float64),
        ]));
        let df = DataFrame::new(
            schema,
            vec![
                Column::from_i64((0..n).map(|i| i % 4).collect()),
                Column::from_f64((0..n).map(|i| (i % 13) as f64).collect()),
            ],
        )
        .unwrap();
        let src = MemorySource::from_frame("t", &df, per_part, vec![], None).unwrap();
        let mut g = QueryGraph::new();
        let r = g.read(src);
        let a = g.agg(r, vec!["k"], vec![AggSpec::sum(col("v"), "s")]);
        g.sink(a);
        g
    }

    fn expected_sum(n: i64) -> f64 {
        (0..n).map(|i| (i % 13) as f64).sum()
    }

    fn test_catalog() -> QueryCatalog {
        let mut catalog = QueryCatalog::new();
        catalog.register_watch("sum_v", sum_graph(4000, 40), "s");
        catalog
    }

    #[test]
    fn tcp_query_streams_exact_final_value() {
        let server = serve(EngineConfig::new(), test_catalog()).unwrap();
        let mut client = ServeClient::connect(server.addr()).unwrap();
        let outcome = client.query("sum_v").unwrap();
        assert!(outcome.error.is_none(), "{:?}", outcome.error);
        let done = outcome.done.expect("terminal event");
        assert_eq!(done.status, "completed");
        let last = outcome.estimates.last().expect("estimates");
        assert!(last.is_final);
        assert_eq!(last.value, Some(expected_sum(4000)));
        // Estimates arrive in stream order with monotone progress.
        for pair in outcome.estimates.windows(2) {
            assert!(pair[1].seq > pair[0].seq);
            assert!(pair[1].rows_processed >= pair[0].rows_processed);
        }
        server.shutdown();
    }

    #[test]
    fn tcp_unknown_query_and_bad_request_are_typed() {
        let server = serve(EngineConfig::new(), test_catalog()).unwrap();
        let mut client = ServeClient::connect(server.addr()).unwrap();
        let outcome = client.query("nope").unwrap();
        assert_eq!(
            outcome.error.as_ref().map(|e| e.0.as_str()),
            Some("unknown_query")
        );
        client.send_line("{\"op\":\"frobnicate\"}").unwrap();
        let line = client.read_line().unwrap().unwrap();
        assert_eq!(
            json::field_str(&line, "code").as_deref(),
            Some("bad_request")
        );
        server.shutdown();
    }

    #[test]
    fn tcp_explain_returns_profile_after_completion() {
        let server = serve(EngineConfig::new(), test_catalog()).unwrap();
        let mut client = ServeClient::connect(server.addr()).unwrap();
        let outcome = client.query("sum_v").unwrap();
        let id = outcome.id;
        assert!(id > 0);
        let line = client.explain(id).unwrap().unwrap();
        assert_eq!(json::field_str(&line, "type").as_deref(), Some("profile"));
        assert!(line.contains("\"nodes\""), "profile JSON embedded: {line}");
        // Unknown id is a typed error, not a hang or close.
        let missing = client.explain(999_999).unwrap().unwrap();
        assert_eq!(
            json::field_str(&missing, "code").as_deref(),
            Some("not_found")
        );
        // The listing shows the completed record and the catalog.
        let list = client.list().unwrap().unwrap();
        assert!(list.contains("\"sum_v\""));
        assert!(list.contains("\"completed\""));
        server.shutdown();
    }

    #[test]
    fn http_chunked_stream_and_endpoints() {
        let server = serve(EngineConfig::new(), test_catalog()).unwrap();
        let (status, body) = http_get(server.addr(), "/query/sum_v").unwrap();
        assert_eq!(status, 200);
        let lines: Vec<&str> = body.lines().collect();
        let done = lines
            .iter()
            .find(|l| json::field_str(l, "type").as_deref() == Some("done"))
            .expect("done event in chunked body");
        assert_eq!(
            json::field_str(done, "status").as_deref(),
            Some("completed")
        );
        let final_est = lines
            .iter()
            .rev()
            .find(|l| json::field_str(l, "type").as_deref() == Some("estimate"))
            .expect("estimates in chunked body");
        assert_eq!(
            json::field_f64(final_est, "value"),
            Some(expected_sum(4000))
        );

        let id = json::field_u64(done, "id").unwrap();
        let (status, body) = http_get(server.addr(), &format!("/explain/{id}")).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"profile\""));

        let (status, body) = http_get(server.addr(), "/queries").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"sum_v\""));

        let (status, _) = http_get(server.addr(), "/query/nope").unwrap();
        assert_eq!(status, 404);
        let (status, _) = http_get(server.addr(), "/nonsense").unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn deadline_stops_with_best_estimate() {
        let mut catalog = QueryCatalog::new();
        // Big enough that a zero deadline always fires before completion.
        catalog.register_watch("slow", sum_graph(20_000, 10), "s");
        let server = serve(EngineConfig::new(), catalog).unwrap();
        let mut client = ServeClient::connect(server.addr()).unwrap();
        let outcome = client
            .query_with("slow", Some(std::time::Duration::ZERO))
            .unwrap();
        let done = outcome.done.expect("terminal event");
        assert_eq!(done.status, "completed");
        assert!(done.stopped_early, "deadline stop is surfaced");
        let last = outcome.estimates.last().expect("triggering estimate");
        assert!(!last.is_final);
        server.shutdown();
    }

    #[test]
    fn global_ledger_leases_and_returns_to_idle() {
        let server = serve(
            EngineConfig::new().with_serve_global_budget(1 << 20),
            test_catalog(),
        )
        .unwrap();
        let global = server.global_governor().expect("global budget configured");
        assert!(global.is_idle());
        let mut client = ServeClient::connect(server.addr()).unwrap();
        let outcome = client.query("sum_v").unwrap();
        assert_eq!(
            outcome.estimates.last().unwrap().value,
            Some(expected_sum(4000))
        );
        // The lease is returned once the query's stream is dropped.
        assert!(
            global.is_idle(),
            "ledger must return to idle after the query"
        );
        server.shutdown();
    }
}

//! Minimal JSON helpers for the wire protocol.
//!
//! The workspace has no registry access, hence no serde; the protocol's
//! needs are tiny (flat request objects, composed response lines), so the
//! crate hand-rolls exactly that: string escaping, an object builder, and
//! field extractors for the **flat** objects the protocol exchanges. The
//! extractors are not a general JSON parser — nested objects on the
//! *request* side are out of protocol and read as whatever flat match
//! they contain first.

/// Escape `s` as the contents of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental builder for one flat JSON object.
#[derive(Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    pub fn new() -> Obj {
        Obj { buf: String::new() }
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
    }

    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.sep();
        self.buf
            .push_str(&format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.sep();
        self.buf.push_str(&format!("\"{}\":{}", escape(key), value));
        self
    }

    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.sep();
        // JSON has no NaN/Inf; null them rather than emit invalid output.
        if value.is_finite() {
            self.buf.push_str(&format!("\"{}\":{}", escape(key), value));
        } else {
            self.buf.push_str(&format!("\"{}\":null", escape(key)));
        }
        self
    }

    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.sep();
        self.buf.push_str(&format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Insert pre-rendered JSON (an object, array, or literal) verbatim.
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.sep();
        self.buf.push_str(&format!("\"{}\":{}", escape(key), json));
        self
    }

    pub fn build(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Position just past `"key"` followed by `:` in `json`, or `None`.
fn after_key(json: &str, key: &str) -> Option<usize> {
    let needle = format!("\"{}\"", escape(key));
    let mut from = 0;
    while let Some(rel) = json[from..].find(&needle) {
        let mut i = from + rel + needle.len();
        let bytes = json.as_bytes();
        while i < bytes.len() && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b':' {
            return Some(i + 1);
        }
        from += rel + needle.len();
    }
    None
}

/// Extract a string field from a flat JSON object, unescaping the basic
/// escapes [`escape`] produces.
pub fn field_str(json: &str, key: &str) -> Option<String> {
    let mut i = after_key(json, key)?;
    let bytes = json.as_bytes();
    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
        i += 1;
    }
    if i >= bytes.len() || bytes[i] != b'"' {
        return None;
    }
    i += 1;
    let mut out = String::new();
    let mut chars = json[i..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extract an unsigned integer field from a flat JSON object.
pub fn field_u64(json: &str, key: &str) -> Option<u64> {
    let i = after_key(json, key)?;
    let rest = json[i..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract a number field (integer or float) from a flat JSON object.
pub fn field_f64(json: &str, key: &str) -> Option<f64> {
    let i = after_key(json, key)?;
    let rest = json[i..].trim_start();
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract a boolean field from a flat JSON object.
pub fn field_bool(json: &str, key: &str) -> Option<bool> {
    let i = after_key(json, key)?;
    let rest = json[i..].trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_builder_and_extractors() {
        let line = Obj::new()
            .str("op", "query")
            .str("name", "q\"1\"")
            .u64("deadline_ms", 250)
            .f64("t", 0.5)
            .bool("is_final", false)
            .raw("extra", "[1,2]")
            .build();
        assert_eq!(field_str(&line, "op").as_deref(), Some("query"));
        assert_eq!(field_str(&line, "name").as_deref(), Some("q\"1\""));
        assert_eq!(field_u64(&line, "deadline_ms"), Some(250));
        assert_eq!(field_f64(&line, "t"), Some(0.5));
        assert_eq!(field_bool(&line, "is_final"), Some(false));
        assert_eq!(field_str(&line, "missing"), None);
        assert_eq!(field_u64(&line, "t"), Some(0), "u64 reads digits only");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let line = Obj::new().f64("v", f64::NAN).build();
        assert_eq!(line, "{\"v\":null}");
        assert_eq!(field_f64(&line, "v"), None);
    }

    #[test]
    fn key_match_requires_colon() {
        // A *value* that happens to look like a key must not match.
        let line = "{\"a\":\"op\",\"op\":\"list\"}";
        assert_eq!(field_str(line, "op").as_deref(), Some("list"));
    }
}

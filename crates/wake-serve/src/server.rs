//! The server: admission control, the worker pool, and both protocols.
//!
//! One listener thread accepts connections and hands each to its own
//! connection thread; a pool of `serve_max_concurrent` worker threads
//! executes admitted queries from a bounded job queue of depth
//! `serve_max_queued`. Admission is a non-blocking `try_send` into that
//! queue: a full queue is answered with a **typed overload** response
//! (HTTP `429`, TCP `{"type":"error","code":"overloaded"}`) instead of
//! blocking the client — bursts degrade to fast refusals, never hangs.
//!
//! Memory is governed process-wide: when `serve_global_budget` (or
//! `WAKE_SERVE_GLOBAL_BUDGET`) is set, every executed query leases an
//! equal share of one [`GlobalGovernor`] total, re-apportioned as queries
//! enter and leave; the largest resident query is the first pushed over
//! its shrunken slice and therefore the first to spill — admission
//! fairness mirroring the per-shard largest-partition eviction rule.
//!
//! Client disconnect cancels the running query through the engine's
//! drop-cancel contract: the connection thread drops its event receiver
//! and raises the job's cancel flag, the worker's next event send fails,
//! and it stops the stream — joining node threads and removing spill
//! temp directories — before recording final statistics.

use crate::catalog::QueryCatalog;
use crate::json::{self, Obj};
use crate::registry::{QueryRecord, QueryRegistry, QueryStatus};
use crossbeam::channel::{self, RecvTimeoutError, TrySendError};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use wake_core::graph::QueryGraph;
use wake_engine::{EngineConfig, GlobalGovernor, RunStats};
use wake_obs::ObsLevel;

/// Default per-request deadline when the client does not send
/// `deadline_ms`: generous enough to be "no timeout" for interactive
/// use, finite so an abandoned query can never run forever.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(3600);

/// Socket read poll interval: how often blocked connection threads check
/// the shutdown flag and client liveness.
const POLL: Duration = Duration::from_millis(25);

/// One admitted query travelling from a connection thread to a worker.
struct Job {
    id: u64,
    graph: QueryGraph,
    watch: Option<String>,
    deadline: Duration,
    /// Pre-rendered JSON event lines flow back through this; the bound
    /// gives slow clients backpressure, and a dropped receiver (client
    /// gone) turns the worker's next send into the stop signal.
    events: channel::Sender<String>,
    /// Raised by the connection thread on disconnect; checked by the
    /// worker before execution so a query cancelled while still queued
    /// never builds a stream (and never takes a governor lease).
    cancelled: Arc<AtomicBool>,
}

struct Shared {
    engine: EngineConfig,
    catalog: QueryCatalog,
    registry: Arc<QueryRegistry>,
    /// `None` once shutdown has begun (no further admissions).
    jobs: Mutex<Option<channel::Sender<Job>>>,
    shutdown: AtomicBool,
    next_id: AtomicU64,
    global: Option<Arc<GlobalGovernor>>,
}

/// A running server; dropping (or calling [`ServerHandle::shutdown`])
/// stops the listener, connection threads, and workers, joining them all.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    workers: Vec<JoinHandle<()>>,
}

/// Lock a mutex, recovering the data if a previous holder panicked.
/// Every critical section in this module leaves the shared state
/// consistent before any fallible operation, so a poisoned lock means a
/// dead thread, not corrupt data — the server stays available.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Start a server on the config's [`EngineConfig::serve_addr`]. The
/// returned handle owns every thread the server spawns; queries execute
/// with `config`'s engine settings (observability is raised to at least
/// `Stats` so wire telemetry and profiles are populated), under one
/// process-wide memory ledger when a global budget is configured.
pub fn serve(config: EngineConfig, catalog: QueryCatalog) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(config.serve_addr())?;
    let addr = listener.local_addr()?;
    let max_concurrent = config.serve_max_concurrent();
    let max_queued = config.serve_max_queued();

    let global = config.serve_global_budget().map(GlobalGovernor::new);
    let mut engine = config;
    if let Some(global) = &global {
        engine = engine.with_global_governor(global);
    }
    if engine.obs_level() == ObsLevel::Off {
        engine = engine.with_obs(ObsLevel::Stats);
    }

    let (jobs_tx, jobs_rx) = channel::bounded::<Job>(max_queued);
    let registry = Arc::new(QueryRegistry::new());
    let shared = Arc::new(Shared {
        engine,
        catalog,
        registry: registry.clone(),
        jobs: Mutex::new(Some(jobs_tx)),
        shutdown: AtomicBool::new(false),
        next_id: AtomicU64::new(1),
        global,
    });

    // Worker pool: the receiver is single-consumer, so workers take
    // turns holding it; a worker blocked in recv under the lock releases
    // it as soon as a job (or disconnect) arrives.
    let jobs_rx = Arc::new(Mutex::new(jobs_rx));
    let workers = (0..max_concurrent)
        .map(|i| {
            let rx = jobs_rx.clone();
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("wake-serve-worker-{i}"))
                .spawn(move || worker_loop(rx, shared))
        })
        .collect::<io::Result<Vec<_>>>()?;

    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let listener_handle = {
        let shared = shared.clone();
        let conns = conns.clone();
        std::thread::Builder::new()
            .name("wake-serve-listener".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = shared.clone();
                    // A failed spawn (thread exhaustion) drops the
                    // stream, refusing the connection instead of
                    // killing the accept loop.
                    let spawned = std::thread::Builder::new()
                        .name("wake-serve-conn".into())
                        .spawn(move || {
                            let _ = handle_connection(stream, &shared);
                        });
                    if let Ok(handle) = spawned {
                        lock_recover(&conns).push(handle);
                    }
                }
            })?
    };

    Ok(ServerHandle {
        addr,
        shared,
        listener: Some(listener_handle),
        conns,
        workers,
    })
}

impl ServerHandle {
    /// The bound address (resolves the `:0` ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served-query registry (ids, statuses, stats, profiles).
    pub fn registry(&self) -> Arc<QueryRegistry> {
        self.shared.registry.clone()
    }

    /// The process-wide memory ledger, when a global budget is set.
    /// Tests assert [`GlobalGovernor::is_idle`] here between requests.
    pub fn global_governor(&self) -> Option<Arc<GlobalGovernor>> {
        self.shared.global.clone()
    }

    /// Stop accepting, cancel in-flight work, join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // No further admissions, and workers see EOF once the last
        // connection thread drops its sender clone.
        *lock_recover(&self.shared.jobs) = None;
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        // Connection threads observe the flag within one poll interval.
        let conns: Vec<_> = lock_recover(&self.conns).drain(..).collect();
        for h in conns {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

// ---------------------------------------------------------------------
// Worker side: execute admitted queries, stream events back.
// ---------------------------------------------------------------------

fn worker_loop(rx: Arc<Mutex<channel::Receiver<Job>>>, shared: Arc<Shared>) {
    loop {
        let job = {
            let rx = lock_recover(&rx);
            match rx.recv() {
                Ok(job) => job,
                Err(_) => break, // all senders gone: shutdown
            }
        };
        run_job(job, &shared);
    }
}

fn run_job(job: Job, shared: &Shared) {
    if job.cancelled.load(Ordering::Acquire) {
        // Cancelled while queued: the record stays readable and reports
        // zero work — no stream, no governor lease.
        shared
            .registry
            .update(job.id, |r| r.status = QueryStatus::Cancelled);
        let _ = job.events.try_send(done_line(
            job.id,
            QueryStatus::Cancelled,
            &RunStats::default(),
            false,
        ));
        return;
    }
    shared
        .registry
        .update(job.id, |r| r.status = QueryStatus::Running);

    let stream = match shared.engine.start(job.graph) {
        Ok(stream) => stream,
        Err(e) => {
            let msg = e.to_string();
            shared.registry.update(job.id, |r| {
                r.status = QueryStatus::Failed;
                r.error = Some(msg.clone());
            });
            let _ = job
                .events
                .try_send(error_line(Some(job.id), "query_failed", &msg));
            return;
        }
    };
    let cancel = stream.cancel_handle();
    let mut stop = stream.until_deadline(job.deadline);

    let mut error: Option<String> = None;
    let mut client_gone = false;
    while let Some(item) = stop.next() {
        if job.cancelled.load(Ordering::Acquire) {
            client_gone = true;
            cancel.cancel();
            stop.stop();
            break;
        }
        match item {
            Ok(est) => {
                let degraded = stop.stats().degraded;
                let line = estimate_line(job.id, &est, job.watch.as_deref(), degraded);
                if job.events.send(line).is_err() {
                    // Client disconnected mid-stream: cancel through the
                    // drop-cancel contract (the flag unblocks a
                    // backpressured pipeline before the join).
                    client_gone = true;
                    cancel.cancel();
                    stop.stop();
                    break;
                }
            }
            Err(e) => {
                error = Some(e.to_string());
                break;
            }
        }
    }
    stop.stop(); // idempotent; captures final stats + profile

    let stats = stop.stats();
    let stopped_early = stop.stopped_early();
    let status = if let Some(msg) = &error {
        let msg = msg.clone();
        shared.registry.update(job.id, |r| r.error = Some(msg));
        QueryStatus::Failed
    } else if client_gone {
        QueryStatus::Cancelled
    } else {
        QueryStatus::Completed
    };
    let profile_json = stop.profile().map(|p| p.to_json());
    {
        let stats = stats.clone();
        shared.registry.update(job.id, |r| {
            r.status = status;
            r.stats = stats;
            r.profile_json = profile_json;
            r.stopped_early = stopped_early;
        });
    }
    if let Some(msg) = error {
        let _ = job
            .events
            .try_send(error_line(Some(job.id), "query_failed", &msg));
    }
    let _ = job
        .events
        .try_send(done_line(job.id, status, &stats, stopped_early));
}

fn estimate_line(
    id: u64,
    est: &wake_engine::Estimate,
    watch: Option<&str>,
    degraded: bool,
) -> String {
    let mut obj = Obj::new()
        .str("type", "estimate")
        .u64("id", id)
        .u64("seq", est.seq as u64)
        .f64("t", est.t)
        .bool("is_final", est.is_final)
        .u64("rows", est.frame.num_rows() as u64)
        .u64("rows_processed", est.rows_processed)
        .f64("elapsed_ms", est.elapsed.as_secs_f64() * 1e3)
        .u64("spill_bytes", est.spill_bytes)
        .u64("scan_bytes", est.scan_bytes)
        .bool("degraded", degraded);
    if let Some(watch) = watch {
        if let Some(value) = watch_sum(est, watch) {
            obj = obj.f64("value", value);
        }
        if let Ok(hw) = est.max_rel_half_width(watch, wake_engine::DEFAULT_CONFIDENCE) {
            if hw.is_finite() {
                obj = obj.f64("ci_rel_half_width", hw);
            }
        }
    }
    obj.build()
}

/// Sum of the watch column over the estimate's output rows — an
/// order-independent scalar summary (exact for single-group aggregates,
/// a stable roll-up for grouped ones).
fn watch_sum(est: &wake_engine::Estimate, watch: &str) -> Option<f64> {
    let col = est.frame.column(watch).ok()?;
    let mut sum = 0.0;
    for i in 0..col.len() {
        sum += col.f64_at(i)?;
    }
    Some(sum)
}

fn done_line(id: u64, status: QueryStatus, stats: &RunStats, stopped_early: bool) -> String {
    Obj::new()
        .str("type", "done")
        .u64("id", id)
        .str("status", status.as_str())
        .bool("stopped_early", stopped_early)
        .bool("degraded", stats.degraded)
        .u64("peak_state_bytes", stats.peak_state_bytes as u64)
        .u64("spill_bytes", stats.spill.spilled_bytes as u64)
        .u64("evictions", stats.spill.evictions as u64)
        .u64("scan_bytes", stats.scan.decompressed_bytes)
        .build()
}

fn error_line(id: Option<u64>, code: &str, message: &str) -> String {
    let mut obj = Obj::new().str("type", "error").str("code", code);
    if let Some(id) = id {
        obj = obj.u64("id", id);
    }
    obj.str("message", message).build()
}

fn record_line(rec: &QueryRecord) -> String {
    let mut obj = Obj::new()
        .u64("id", rec.id)
        .str("name", &rec.name)
        .str("status", rec.status.as_str())
        .bool("stopped_early", rec.stopped_early)
        .bool("degraded", rec.stats.degraded)
        .u64("peak_state_bytes", rec.stats.peak_state_bytes as u64)
        .u64("spill_bytes", rec.stats.spill.spilled_bytes as u64);
    if let Some(err) = &rec.error {
        obj = obj.str("error", err);
    }
    obj.build()
}

// ---------------------------------------------------------------------
// Connection side: protocol sniffing, request handling, event pumping.
// ---------------------------------------------------------------------

/// Outcome of submitting one query request for admission.
enum Admission {
    Admitted {
        id: u64,
        events: channel::Receiver<String>,
        cancelled: Arc<AtomicBool>,
    },
    Overloaded,
    UnknownQuery,
    ShuttingDown,
}

fn admit(shared: &Shared, name: &str, deadline: Duration) -> Admission {
    let Some(entry) = shared.catalog.get(name) else {
        return Admission::UnknownQuery;
    };
    let tx = match lock_recover(&shared.jobs).as_ref() {
        Some(tx) => tx.clone(),
        None => return Admission::ShuttingDown,
    };
    // relaxed: ID allocation needs only the RMW's atomicity, not ordering
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let (events_tx, events_rx) = channel::bounded::<String>(32);
    let cancelled = Arc::new(AtomicBool::new(false));
    // Admit into the registry first so an immediately-scheduled job finds
    // its record; roll back if the queue refuses it.
    shared.registry.admit(id, name);
    let job = Job {
        id,
        graph: entry.graph.clone(),
        watch: entry.watch.clone(),
        deadline,
        events: events_tx,
        cancelled: cancelled.clone(),
    };
    match tx.try_send(job) {
        Ok(()) => Admission::Admitted {
            id,
            events: events_rx,
            cancelled,
        },
        Err(TrySendError::Full(_)) => {
            shared.registry.update(id, |r| {
                r.status = QueryStatus::Failed;
                r.error = Some("rejected: admission queue full".into());
            });
            Admission::Overloaded
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.registry.update(id, |r| {
                r.status = QueryStatus::Failed;
                r.error = Some("rejected: server shutting down".into());
            });
            Admission::ShuttingDown
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let Some(first) = read_line_polled(&mut reader, shared)? else {
        return Ok(());
    };
    if first.starts_with("GET ") || first.starts_with("POST ") || first.starts_with("HEAD ") {
        handle_http(stream, reader, first, shared)
    } else {
        handle_tcp_line(stream, reader, first, shared)
    }
}

/// Read one line, polling the shutdown flag across read timeouts.
/// `Ok(None)` = clean EOF or shutdown.
fn read_line_polled(
    reader: &mut BufReader<TcpStream>,
    shared: &Shared,
) -> io::Result<Option<String>> {
    let mut line = String::new();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return Ok(None);
        }
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(None),
            Ok(_) => {
                if line.ends_with('\n') || !line.is_empty() {
                    return Ok(Some(line.trim_end_matches(['\r', '\n']).to_string()));
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Partial line stays buffered in `line`; keep polling.
                if !line.is_empty() {
                    continue;
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Pump event lines from a worker to the client via `write`. Returns
/// `Ok(true)` if the query ran to its done event, `Ok(false)` if the
/// client vanished or the server shut down (the job is cancelled either
/// way).
fn pump_events(
    events: &channel::Receiver<String>,
    cancelled: &AtomicBool,
    peek: &TcpStream,
    shared: &Shared,
    mut write: impl FnMut(&str) -> io::Result<()>,
) -> io::Result<bool> {
    let mut buf = [0u8; 1];
    loop {
        match events.recv_timeout(POLL) {
            Ok(line) => {
                if write(&line).is_err() {
                    cancelled.store(true, Ordering::Release);
                    return Ok(false);
                }
                if json::field_str(&line, "type").as_deref() == Some("done") {
                    return Ok(true);
                }
            }
            Err(RecvTimeoutError::Disconnected) => return Ok(true),
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    cancelled.store(true, Ordering::Release);
                    return Ok(false);
                }
                // Liveness probe: EOF from peek means the client hung up
                // (e.g. while the query is still queued and no events
                // flow that would surface the broken pipe).
                match peek.peek(&mut buf) {
                    Ok(0) => {
                        cancelled.store(true, Ordering::Release);
                        return Ok(false);
                    }
                    _ => continue,
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Line-JSON TCP protocol.
// ---------------------------------------------------------------------

fn handle_tcp_line(
    stream: TcpStream,
    mut reader: BufReader<TcpStream>,
    first: String,
    shared: &Shared,
) -> io::Result<()> {
    let mut out = stream.try_clone()?;
    let mut request = Some(first);
    loop {
        let Some(line) = request.take() else {
            match read_line_polled(&mut reader, shared)? {
                Some(line) => request = Some(line),
                None => return Ok(()),
            }
            continue;
        };
        if line.trim().is_empty() {
            continue;
        }
        match json::field_str(&line, "op").as_deref() {
            Some("query") => {
                let Some(name) = json::field_str(&line, "name") else {
                    send_line(&mut out, &error_line(None, "bad_request", "missing name"))?;
                    continue;
                };
                let deadline = json::field_u64(&line, "deadline_ms")
                    .map(Duration::from_millis)
                    .unwrap_or(DEFAULT_DEADLINE);
                match admit(shared, &name, deadline) {
                    Admission::Admitted {
                        id,
                        events,
                        cancelled,
                    } => {
                        send_line(
                            &mut out,
                            &Obj::new()
                                .str("type", "admitted")
                                .u64("id", id)
                                .str("name", &name)
                                .build(),
                        )?;
                        let clean = pump_events(&events, &cancelled, &stream, shared, |l| {
                            send_line(&mut out, l)
                        })?;
                        if !clean {
                            return Ok(());
                        }
                    }
                    Admission::Overloaded => {
                        send_line(
                            &mut out,
                            &error_line(None, "overloaded", "server at capacity; retry later"),
                        )?;
                    }
                    Admission::UnknownQuery => {
                        send_line(
                            &mut out,
                            &error_line(None, "unknown_query", &format!("no query named {name:?}")),
                        )?;
                    }
                    Admission::ShuttingDown => {
                        send_line(
                            &mut out,
                            &error_line(None, "shutting_down", "server stopping"),
                        )?;
                        return Ok(());
                    }
                }
            }
            Some("explain") => {
                let resp = match json::field_u64(&line, "id").and_then(|id| shared.registry.get(id))
                {
                    Some(rec) => match &rec.profile_json {
                        Some(profile) => Obj::new()
                            .str("type", "profile")
                            .u64("id", rec.id)
                            .str("status", rec.status.as_str())
                            .raw("profile", profile)
                            .build(),
                        None => error_line(
                            Some(rec.id),
                            "no_profile",
                            "query has not finished executing (or never ran)",
                        ),
                    },
                    None => error_line(None, "not_found", "no such query id"),
                };
                send_line(&mut out, &resp)?;
            }
            Some("list") => {
                let records: Vec<String> = shared.registry.list().iter().map(record_line).collect();
                let catalog: Vec<String> = shared
                    .catalog
                    .names()
                    .iter()
                    .map(|n| format!("\"{}\"", json::escape(n)))
                    .collect();
                send_line(
                    &mut out,
                    &Obj::new()
                        .str("type", "queries")
                        .raw("catalog", &format!("[{}]", catalog.join(",")))
                        .raw("queries", &format!("[{}]", records.join(",")))
                        .build(),
                )?;
            }
            _ => {
                send_line(
                    &mut out,
                    &error_line(None, "bad_request", "unknown or missing op"),
                )?;
            }
        }
    }
}

fn send_line(out: &mut TcpStream, line: &str) -> io::Result<()> {
    out.write_all(line.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}

// ---------------------------------------------------------------------
// Minimal HTTP/1.1 with chunked transfer encoding.
// ---------------------------------------------------------------------

fn handle_http(
    stream: TcpStream,
    mut reader: BufReader<TcpStream>,
    request_line: String,
    shared: &Shared,
) -> io::Result<()> {
    // Drain headers (ignored; the protocol needs only the request line).
    while let Some(line) = read_line_polled(&mut reader, shared)? {
        if line.is_empty() {
            break;
        }
    }
    let mut out = stream.try_clone()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("/");
    if method != "GET" {
        return http_simple(
            &mut out,
            405,
            "Method Not Allowed",
            &error_line(None, "method_not_allowed", "only GET is supported"),
        );
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };

    if let Some(name) = path.strip_prefix("/query/") {
        let deadline = query
            .and_then(|q| {
                q.split('&')
                    .find_map(|kv| kv.strip_prefix("deadline_ms="))
                    .and_then(|v| v.parse::<u64>().ok())
            })
            .map(Duration::from_millis)
            .unwrap_or(DEFAULT_DEADLINE);
        match admit(shared, name, deadline) {
            Admission::Admitted {
                id,
                events,
                cancelled,
            } => {
                out.write_all(
                    b"HTTP/1.1 200 OK\r\n\
                      Content-Type: application/x-ndjson\r\n\
                      Transfer-Encoding: chunked\r\n\
                      Connection: close\r\n\r\n",
                )?;
                let admitted = Obj::new()
                    .str("type", "admitted")
                    .u64("id", id)
                    .str("name", name)
                    .build();
                if write_chunk(&mut out, &admitted).is_err() {
                    cancelled.store(true, Ordering::Release);
                    return Ok(());
                }
                let clean = pump_events(&events, &cancelled, &stream, shared, |l| {
                    write_chunk(&mut out, l)
                })?;
                if clean {
                    let _ = out.write_all(b"0\r\n\r\n");
                    let _ = out.flush();
                }
                Ok(())
            }
            Admission::Overloaded => http_simple(
                &mut out,
                429,
                "Too Many Requests",
                &error_line(None, "overloaded", "server at capacity; retry later"),
            ),
            Admission::UnknownQuery => http_simple(
                &mut out,
                404,
                "Not Found",
                &error_line(None, "unknown_query", &format!("no query named {name:?}")),
            ),
            Admission::ShuttingDown => http_simple(
                &mut out,
                503,
                "Service Unavailable",
                &error_line(None, "shutting_down", "server stopping"),
            ),
        }
    } else if let Some(id) = path.strip_prefix("/explain/") {
        match id
            .parse::<u64>()
            .ok()
            .and_then(|id| shared.registry.get(id))
        {
            Some(rec) => match &rec.profile_json {
                Some(profile) => {
                    let body = Obj::new()
                        .u64("id", rec.id)
                        .str("status", rec.status.as_str())
                        .raw("profile", profile)
                        .build();
                    http_simple(&mut out, 200, "OK", &body)
                }
                None => http_simple(
                    &mut out,
                    409,
                    "Conflict",
                    &error_line(
                        Some(rec.id),
                        "no_profile",
                        "query has not finished executing",
                    ),
                ),
            },
            None => http_simple(
                &mut out,
                404,
                "Not Found",
                &error_line(None, "not_found", "no such query id"),
            ),
        }
    } else if path == "/queries" {
        let records: Vec<String> = shared.registry.list().iter().map(record_line).collect();
        let catalog: Vec<String> = shared
            .catalog
            .names()
            .iter()
            .map(|n| format!("\"{}\"", json::escape(n)))
            .collect();
        let body = Obj::new()
            .raw("catalog", &format!("[{}]", catalog.join(",")))
            .raw("queries", &format!("[{}]", records.join(",")))
            .build();
        http_simple(&mut out, 200, "OK", &body)
    } else {
        http_simple(
            &mut out,
            404,
            "Not Found",
            &error_line(None, "not_found", "unknown path"),
        )
    }
}

/// One ndjson event line as an HTTP chunk (the newline travels inside
/// the chunk so consumers can split on it).
fn write_chunk(out: &mut TcpStream, line: &str) -> io::Result<()> {
    write!(out, "{:x}\r\n", line.len() + 1)?;
    out.write_all(line.as_bytes())?;
    out.write_all(b"\n\r\n")?;
    out.flush()
}

fn http_simple(out: &mut TcpStream, status: u16, reason: &str, body: &str) -> io::Result<()> {
    write!(
        out,
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: application/json\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    )?;
    out.flush()
}

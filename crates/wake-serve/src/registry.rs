//! The served-query registry: per-query lifecycle records.
//!
//! Every admitted query gets a record tracking its status, final
//! [`RunStats`], and (once finished) its rendered
//! [`wake_obs::QueryProfile`] JSON — the backing store for the protocols'
//! `EXPLAIN ANALYZE` and `list` requests. Records survive the query (the
//! whole point: profiles are for *completed/cancelled* queries), bounded
//! by a ring of [`MAX_RECORDS`] so a long-lived server doesn't grow
//! without limit.
//!
//! A query cancelled while still queued never executes, but its record
//! stays readable and reports **zero work** (`RunStats::default()`): no
//! stream was built, so no governor lease ever existed for it.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;
use wake_engine::RunStats;

/// Retained records; the oldest finished record is evicted past this.
pub const MAX_RECORDS: usize = 256;

/// Where a served query is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// Admitted, waiting for a worker.
    Queued,
    /// Executing on a worker.
    Running,
    /// Ran to its exact final estimate, or stopped at its deadline with
    /// the best available estimate (`stopped_early` distinguishes).
    Completed,
    /// Cancelled — client disconnect, or cancelled while still queued.
    Cancelled,
    /// The query surfaced an execution error.
    Failed,
}

impl QueryStatus {
    pub fn as_str(self) -> &'static str {
        match self {
            QueryStatus::Queued => "queued",
            QueryStatus::Running => "running",
            QueryStatus::Completed => "completed",
            QueryStatus::Cancelled => "cancelled",
            QueryStatus::Failed => "failed",
        }
    }
}

/// One served query's lifecycle record.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    pub id: u64,
    pub name: String,
    pub status: QueryStatus,
    /// Final run statistics (zero for a queued-then-cancelled query).
    pub stats: RunStats,
    /// Rendered `QueryProfile::to_json()` captured at finish; `None`
    /// while queued/running or when the query never built a stream.
    pub profile_json: Option<String>,
    /// The query stopped at its deadline rather than completing.
    pub stopped_early: bool,
    pub error: Option<String>,
}

/// Thread-safe id → record map with FIFO eviction of finished records.
#[derive(Default)]
pub struct QueryRegistry {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    records: HashMap<u64, QueryRecord>,
    order: VecDeque<u64>,
}

impl QueryRegistry {
    pub fn new() -> QueryRegistry {
        QueryRegistry::default()
    }

    /// Record an admitted query (status [`QueryStatus::Queued`]).
    pub fn admit(&self, id: u64, name: &str) {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.records.insert(
            id,
            QueryRecord {
                id,
                name: name.to_string(),
                status: QueryStatus::Queued,
                stats: RunStats::default(),
                profile_json: None,
                stopped_early: false,
                error: None,
            },
        );
        inner.order.push_back(id);
        while inner.order.len() > MAX_RECORDS {
            // Evict the oldest *finished* record; never a live query.
            let Some(pos) = inner.order.iter().position(|id| {
                !matches!(
                    inner.records.get(id).map(|r| r.status),
                    Some(QueryStatus::Queued) | Some(QueryStatus::Running)
                )
            }) else {
                break;
            };
            let evicted = inner.order.remove(pos).expect("position in range");
            inner.records.remove(&evicted);
        }
    }

    /// Mutate the record for `id`, if present.
    pub fn update(&self, id: u64, f: impl FnOnce(&mut QueryRecord)) {
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(rec) = inner.records.get_mut(&id) {
            f(rec);
        }
    }

    pub fn get(&self, id: u64) -> Option<QueryRecord> {
        self.inner
            .lock()
            .expect("registry lock")
            .records
            .get(&id)
            .cloned()
    }

    /// All retained records in admission order.
    pub fn list(&self) -> Vec<QueryRecord> {
        let inner = self.inner.lock().expect("registry lock");
        inner
            .order
            .iter()
            .filter_map(|id| inner.records.get(id).cloned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_eviction() {
        let reg = QueryRegistry::new();
        reg.admit(1, "q");
        assert_eq!(reg.get(1).unwrap().status, QueryStatus::Queued);
        reg.update(1, |r| r.status = QueryStatus::Running);
        reg.update(1, |r| {
            r.status = QueryStatus::Completed;
            r.profile_json = Some("{}".into());
        });
        let rec = reg.get(1).unwrap();
        assert_eq!(rec.status, QueryStatus::Completed);
        assert_eq!(rec.profile_json.as_deref(), Some("{}"));

        // Ring eviction removes finished records oldest-first, never live
        // ones.
        for id in 2..(MAX_RECORDS as u64 + 3) {
            reg.admit(id, "q");
            reg.update(id, |r| r.status = QueryStatus::Completed);
        }
        assert!(reg.get(1).is_none(), "oldest finished record evicted");
        assert_eq!(reg.list().len(), MAX_RECORDS);
    }

    #[test]
    fn queued_then_cancelled_reports_zero_work() {
        let reg = QueryRegistry::new();
        reg.admit(7, "never-ran");
        reg.update(7, |r| r.status = QueryStatus::Cancelled);
        let rec = reg.get(7).unwrap();
        assert_eq!(rec.status, QueryStatus::Cancelled);
        assert_eq!(rec.stats.peak_state_bytes, 0);
        assert_eq!(rec.stats.spill.spilled_bytes, 0);
        assert!(rec.profile_json.is_none());
    }
}

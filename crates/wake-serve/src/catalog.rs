//! The server's query catalog: named, pre-planned query graphs.
//!
//! Clients name queries rather than shipping plans — the protocol stays
//! data-free and the server controls exactly what can run. Each entry is
//! a [`QueryGraph`] template (cloned per execution; graphs are cheap
//! shared-pointer clones) plus an optional **watch column**: the
//! aggregate output column the server summarises into each wire
//! estimate's `value` and confidence-interval fields.

use std::collections::HashMap;
use wake_core::graph::QueryGraph;

/// One runnable catalog entry.
#[derive(Clone)]
pub struct CatalogEntry {
    pub graph: QueryGraph,
    /// Aggregate output column surfaced as the wire `value` (summed over
    /// the estimate's output rows) and, when the query carries a
    /// `{watch}__var` CI column, as `ci_rel_half_width`.
    pub watch: Option<String>,
}

/// Name → query template map, built before the server starts and
/// immutable afterwards (shared read-only across connection threads).
#[derive(Default)]
pub struct QueryCatalog {
    entries: HashMap<String, CatalogEntry>,
}

impl QueryCatalog {
    pub fn new() -> QueryCatalog {
        QueryCatalog::default()
    }

    /// Register `graph` under `name` (replacing any previous entry).
    pub fn register(&mut self, name: impl Into<String>, graph: QueryGraph) {
        self.entries
            .insert(name.into(), CatalogEntry { graph, watch: None });
    }

    /// [`Self::register`] with a watch column for wire-value telemetry.
    pub fn register_watch(
        &mut self,
        name: impl Into<String>,
        graph: QueryGraph,
        watch: impl Into<String>,
    ) {
        self.entries.insert(
            name.into(),
            CatalogEntry {
                graph,
                watch: Some(watch.into()),
            },
        );
    }

    pub fn get(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.get(name)
    }

    /// Registered names, sorted (for the `list` response).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.keys().cloned().collect();
        names.sort();
        names
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

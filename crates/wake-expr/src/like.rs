//! SQL `LIKE` pattern matching: `%` matches any run of characters
//! (including empty), `_` matches exactly one character. No escape syntax —
//! TPC-H patterns never need one.

/// Return whether `text` matches `pattern` under SQL LIKE semantics.
pub fn like_match(text: &str, pattern: &str) -> bool {
    // Iterative two-pointer algorithm with backtracking to the last `%`.
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut ti, mut pi) = (0usize, 0usize);
    let mut star: Option<usize> = None; // position of last '%' in pattern
    let mut star_t = 0usize; // text position matched to that '%'
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            star_t = ti;
            pi += 1;
        } else if let Some(sp) = star {
            // Grow the run matched by the last '%'.
            pi = sp + 1;
            star_t += 1;
            ti = star_t;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_wildcards() {
        assert!(like_match("hello", "hello"));
        assert!(!like_match("hello", "hell"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%o"));
        assert!(like_match("hello", "%ell%"));
        assert!(like_match("hello", "h_llo"));
        assert!(!like_match("hello", "h_lo"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
    }

    #[test]
    fn tpch_patterns() {
        // Q14: p_type like 'PROMO%'
        assert!(like_match("PROMO BURNISHED COPPER", "PROMO%"));
        assert!(!like_match("STANDARD BURNISHED COPPER", "PROMO%"));
        // Q2: p_type like '%BRASS'
        assert!(like_match("LARGE POLISHED BRASS", "%BRASS"));
        // Q9: p_name like '%green%'
        assert!(like_match("spring green yellow purple", "%green%"));
        assert!(!like_match("spring blue yellow purple", "%green%"));
        // Q13: o_comment not like '%special%requests%'
        assert!(like_match(
            "is special handling requests now",
            "%special%requests%"
        ));
        assert!(!like_match(
            "is special handling only",
            "%special%requests%"
        ));
        // Q16: p_type not like 'MEDIUM POLISHED%'
        assert!(like_match("MEDIUM POLISHED TIN", "MEDIUM POLISHED%"));
    }

    #[test]
    fn backtracking_cases() {
        assert!(like_match("aab", "%ab"));
        assert!(like_match("aaab", "a%ab"));
        assert!(like_match("abcabc", "%abc"));
        assert!(!like_match("abcabd", "%abc"));
        assert!(like_match("mississippi", "%iss%ppi"));
        assert!(like_match("abc", "%%%"));
        assert!(like_match("a", "_%"));
        assert!(!like_match("a", "__%"));
    }

    #[test]
    fn unicode_is_char_based() {
        assert!(like_match("héllo", "h_llo"));
        assert!(like_match("日本語", "日__"));
        assert!(like_match("日本語", "%語"));
    }
}

//! # wake-expr
//!
//! Expression AST and vectorized evaluation for Wake's `map` and `filter`
//! operations (§3.2). Expressions are evaluated column-at-a-time over a
//! [`wake_data::DataFrame`] partition, which is how Wake applies user
//! functions to one or more partitions at once rather than row-by-row.
//!
//! Null semantics follow SQL: arithmetic with NULL yields NULL, comparisons
//! with NULL yield NULL, and a NULL predicate result excludes the row
//! (three-valued logic collapses to `false` at the filter boundary).

mod eval;
mod like;
pub mod pushdown;

pub use eval::{eval, eval_cow, eval_mask, eval_selection, infer_type};
pub use like::like_match;
pub use pushdown::extract_predicates;

use std::fmt;
use std::sync::Arc;
use wake_data::{DataType, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    pub fn is_arithmetic(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        f.write_str(s)
    }
}

/// Scalar functions beyond operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// `year(date) -> Int64`.
    Year,
    /// `substr(str, start_1_based, len) -> Utf8`.
    Substr,
    /// `abs(x)`.
    Abs,
}

/// An expression tree over the columns of one frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by name.
    Col(Arc<str>),
    /// Literal scalar.
    Lit(Value),
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Not(Box<Expr>),
    Neg(Box<Expr>),
    IsNull(Box<Expr>),
    /// SQL LIKE with `%` (any run) and `_` (any char).
    Like {
        expr: Box<Expr>,
        pattern: Arc<str>,
        negated: bool,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Value>,
        negated: bool,
    },
    /// `expr BETWEEN low AND high` (inclusive both ends).
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
    },
    /// `CASE WHEN c1 THEN v1 ... ELSE otherwise END`.
    Case {
        branches: Vec<(Expr, Expr)>,
        otherwise: Box<Expr>,
    },
    Func {
        func: Func,
        args: Vec<Expr>,
    },
    Cast {
        expr: Box<Expr>,
        to: DataType,
    },
}

/// Column reference.
pub fn col(name: &str) -> Expr {
    Expr::Col(Arc::from(name))
}

/// Literal from any [`Value`]-convertible scalar.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Lit(v.into())
}

/// Integer literal.
pub fn lit_i64(v: i64) -> Expr {
    Expr::Lit(Value::Int(v))
}

/// Float literal.
pub fn lit_f64(v: f64) -> Expr {
    Expr::Lit(Value::Float(v))
}

/// String literal.
pub fn lit_str(v: &str) -> Expr {
    Expr::Lit(Value::str(v))
}

/// Date literal from `(year, month, day)`.
pub fn lit_date(year: i64, month: u32, day: u32) -> Expr {
    Expr::Lit(Value::Date(wake_data::value::date_to_days(
        year, month, day,
    )))
}

// The fluent builder methods intentionally mirror SQL/dataframe DSLs
// (`a.add(b)`, `a.not()`), like polars/datafusion; they are not operator
// trait impls because they build AST nodes, not values.
#[allow(clippy::should_implement_trait)]
impl Expr {
    fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(self),
            right: Box::new(rhs),
        }
    }

    pub fn add(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Add, rhs)
    }

    pub fn sub(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Sub, rhs)
    }

    pub fn mul(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Mul, rhs)
    }

    pub fn div(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Div, rhs)
    }

    pub fn eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Eq, rhs)
    }

    pub fn ne(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ne, rhs)
    }

    pub fn lt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Lt, rhs)
    }

    pub fn le(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Le, rhs)
    }

    pub fn gt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Gt, rhs)
    }

    pub fn ge(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ge, rhs)
    }

    pub fn and(self, rhs: Expr) -> Expr {
        self.bin(BinOp::And, rhs)
    }

    pub fn or(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Or, rhs)
    }

    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    pub fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }

    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    pub fn like(self, pattern: &str) -> Expr {
        Expr::Like {
            expr: Box::new(self),
            pattern: Arc::from(pattern),
            negated: false,
        }
    }

    pub fn not_like(self, pattern: &str) -> Expr {
        Expr::Like {
            expr: Box::new(self),
            pattern: Arc::from(pattern),
            negated: true,
        }
    }

    pub fn in_list(self, list: Vec<Value>) -> Expr {
        Expr::InList {
            expr: Box::new(self),
            list,
            negated: false,
        }
    }

    pub fn not_in_list(self, list: Vec<Value>) -> Expr {
        Expr::InList {
            expr: Box::new(self),
            list,
            negated: true,
        }
    }

    pub fn between(self, low: Expr, high: Expr) -> Expr {
        Expr::Between {
            expr: Box::new(self),
            low: Box::new(low),
            high: Box::new(high),
        }
    }

    pub fn year(self) -> Expr {
        Expr::Func {
            func: Func::Year,
            args: vec![self],
        }
    }

    pub fn substr(self, start: i64, len: i64) -> Expr {
        Expr::Func {
            func: Func::Substr,
            args: vec![self, lit_i64(start), lit_i64(len)],
        }
    }

    pub fn abs(self) -> Expr {
        Expr::Func {
            func: Func::Abs,
            args: vec![self],
        }
    }

    pub fn cast(self, to: DataType) -> Expr {
        Expr::Cast {
            expr: Box::new(self),
            to,
        }
    }

    /// Names of all columns referenced by this expression (sorted, unique).
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit_cols(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn visit_cols<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Col(name) => out.push(name),
            Expr::Lit(_) => {}
            Expr::Binary { left, right, .. } => {
                left.visit_cols(out);
                right.visit_cols(out);
            }
            Expr::Not(e) | Expr::Neg(e) | Expr::IsNull(e) | Expr::Cast { expr: e, .. } => {
                e.visit_cols(out)
            }
            Expr::Like { expr, .. } => expr.visit_cols(out),
            Expr::InList { expr, .. } => expr.visit_cols(out),
            Expr::Between { expr, low, high } => {
                expr.visit_cols(out);
                low.visit_cols(out);
                high.visit_cols(out);
            }
            Expr::Case {
                branches,
                otherwise,
            } => {
                for (c, v) in branches {
                    c.visit_cols(out);
                    v.visit_cols(out);
                }
                otherwise.visit_cols(out);
            }
            Expr::Func { args, .. } => args.iter().for_each(|a| a.visit_cols(out)),
        }
    }
}

/// Multi-branch CASE expression.
pub fn case_when(branches: Vec<(Expr, Expr)>, otherwise: Expr) -> Expr {
    Expr::Case {
        branches,
        otherwise: Box::new(otherwise),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(n) => write!(f, "{n}"),
            Expr::Lit(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::Not(e) => write!(f, "NOT {e}"),
            Expr::Neg(e) => write!(f, "-{e}"),
            Expr::IsNull(e) => write!(f, "{e} IS NULL"),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                write!(
                    f,
                    "{expr} {}LIKE '{pattern}'",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Expr::Between { expr, low, high } => {
                write!(f, "{expr} BETWEEN {low} AND {high}")
            }
            Expr::Case {
                branches,
                otherwise,
            } => {
                write!(f, "CASE")?;
                for (c, v) in branches {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                write!(f, " ELSE {otherwise} END")
            }
            Expr::Func { func, args } => {
                write!(f, "{func:?}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Cast { expr, to } => write!(f, "CAST({expr} AS {to})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let e = col("a").add(lit_i64(1)).mul(col("b")).gt(lit_f64(3.5));
        assert_eq!(e.referenced_columns(), vec!["a", "b"]);
        assert_eq!(e.to_string(), "(((a + 1) * b) > 3.5)");
    }

    #[test]
    fn display_covers_variants() {
        let e = case_when(vec![(col("x").like("%a%"), lit_i64(1))], lit_i64(0));
        assert!(e.to_string().contains("CASE WHEN"));
        let e = col("p").in_list(vec![Value::Int(1), Value::Int(2)]).not();
        assert!(e.to_string().contains("IN"));
        assert!(col("d")
            .between(lit_i64(0), lit_i64(1))
            .to_string()
            .contains("BETWEEN"));
        assert!(col("s").substr(1, 2).to_string().contains("Substr"));
        assert!(col("x").is_null().to_string().contains("IS NULL"));
        assert!(col("x")
            .cast(DataType::Float64)
            .to_string()
            .contains("CAST"));
    }

    #[test]
    fn referenced_columns_dedup() {
        let e = col("a").add(col("a")).sub(col("b"));
        assert_eq!(e.referenced_columns(), vec!["a", "b"]);
    }

    #[test]
    fn lit_accepts_native_scalars() {
        assert_eq!(lit(3i64), lit_i64(3));
        assert_eq!(lit(2.5f64), lit_f64(2.5));
        assert_eq!(lit("x"), lit_str("x"));
    }
}

//! Vectorized expression evaluation over a [`DataFrame`].

use crate::like::like_match;
use crate::{BinOp, Expr, Func};
use wake_data::column::ColumnData;
use wake_data::value::days_to_date;
use wake_data::{Column, DataError, DataFrame, DataType, Schema, Value};

type Result<T> = std::result::Result<T, DataError>;

/// Static result type of `expr` against `schema`.
pub fn infer_type(expr: &Expr, schema: &Schema) -> Result<DataType> {
    match expr {
        Expr::Col(name) => Ok(schema.field(name)?.dtype),
        Expr::Lit(v) => v
            .data_type()
            .ok_or_else(|| DataError::Invalid("untyped NULL literal".into())),
        Expr::Binary { op, left, right } => {
            let lt = infer_type(left, schema)?;
            let rt = infer_type(right, schema)?;
            if op.is_arithmetic() {
                arith_result_type(*op, lt, rt)
            } else {
                Ok(DataType::Bool)
            }
        }
        Expr::Not(e) | Expr::IsNull(e) => {
            infer_type(e, schema)?;
            Ok(DataType::Bool)
        }
        Expr::Like { expr, .. } | Expr::InList { expr, .. } => {
            infer_type(expr, schema)?;
            Ok(DataType::Bool)
        }
        Expr::Between { expr, low, high } => {
            infer_type(expr, schema)?;
            infer_type(low, schema)?;
            infer_type(high, schema)?;
            Ok(DataType::Bool)
        }
        Expr::Neg(e) => infer_type(e, schema),
        Expr::Case {
            branches,
            otherwise,
        } => {
            let t = match branches.first() {
                Some((_, v)) => infer_type(v, schema)?,
                None => infer_type(otherwise, schema)?,
            };
            Ok(t)
        }
        Expr::Func { func, args } => match func {
            Func::Year => Ok(DataType::Int64),
            Func::Substr => Ok(DataType::Utf8),
            Func::Abs => infer_type(&args[0], schema),
        },
        Expr::Cast { to, .. } => Ok(*to),
    }
}

fn arith_result_type(op: BinOp, lt: DataType, rt: DataType) -> Result<DataType> {
    use DataType::*;
    let out = match (lt, rt) {
        (Date, Int64) | (Int64, Date) if matches!(op, BinOp::Add | BinOp::Sub) => Date,
        (Date, Date) if op == BinOp::Sub => Int64,
        (Int64, Int64) => {
            if op == BinOp::Div {
                Float64
            } else {
                Int64
            }
        }
        (a, b) if a.is_numeric() && b.is_numeric() => Float64,
        (a, b) => {
            return Err(DataError::TypeMismatch {
                expected: "numeric operands".into(),
                found: format!("{a} {op} {b}"),
            })
        }
    };
    Ok(out)
}

/// Evaluate `expr` over `df` without copying when the expression is a bare
/// column reference — the common case for aggregate inputs and key
/// extraction, where [`eval`]'s `Column` clone would deep-copy the payload
/// on every partition.
pub fn eval_cow<'a>(expr: &Expr, df: &'a DataFrame) -> Result<std::borrow::Cow<'a, Column>> {
    match expr {
        Expr::Col(name) => Ok(std::borrow::Cow::Borrowed(df.column(name)?)),
        other => Ok(std::borrow::Cow::Owned(eval(other, df)?)),
    }
}

/// Evaluate `expr` over every row of `df`, producing one column.
pub fn eval(expr: &Expr, df: &DataFrame) -> Result<Column> {
    let n = df.num_rows();
    match expr {
        Expr::Col(name) => Ok(df.column(name)?.clone()),
        Expr::Lit(v) => {
            let dtype = v
                .data_type()
                .ok_or_else(|| DataError::Invalid("untyped NULL literal".into()))?;
            Column::from_values(dtype, &vec![v.clone(); n])
        }
        Expr::Binary { op, left, right } => {
            let l = eval(left, df)?;
            let r = eval(right, df)?;
            eval_binary(*op, &l, &r, df.schema())
        }
        Expr::Not(e) => {
            let c = eval(e, df)?;
            let vals: Vec<Value> = c
                .iter()
                .map(|v| match v {
                    Value::Null => Value::Null,
                    Value::Bool(b) => Value::Bool(!b),
                    other => other, // surfaced as type error below
                })
                .collect();
            require_bool(&c)?;
            Column::from_values(DataType::Bool, &vals)
        }
        Expr::Neg(e) => {
            let c = eval(e, df)?;
            let vals: Vec<Value> = c
                .iter()
                .map(|v| match v {
                    Value::Null => Value::Null,
                    Value::Int(i) => Value::Int(-i),
                    Value::Float(f) => Value::Float(-f),
                    other => other,
                })
                .collect();
            Column::from_values(c.data_type(), &vals)
        }
        Expr::IsNull(e) => {
            let c = eval(e, df)?;
            Ok(Column::from_bool((0..n).map(|i| !c.is_valid(i)).collect()))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let c = eval(expr, df)?;
            let strs = c.as_str_slice().ok_or_else(|| DataError::TypeMismatch {
                expected: "Utf8 for LIKE".into(),
                found: c.data_type().to_string(),
            })?;
            let vals: Vec<Value> = (0..n)
                .map(|i| {
                    if !c.is_valid(i) {
                        Value::Null
                    } else {
                        Value::Bool(like_match(&strs[i], pattern) != *negated)
                    }
                })
                .collect();
            Column::from_values(DataType::Bool, &vals)
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let c = eval(expr, df)?;
            let vals: Vec<Value> = (0..n)
                .map(|i| {
                    if !c.is_valid(i) {
                        Value::Null
                    } else {
                        Value::Bool(list.contains(&c.value(i)) != *negated)
                    }
                })
                .collect();
            Column::from_values(DataType::Bool, &vals)
        }
        Expr::Between { expr, low, high } => {
            let ge = Expr::Binary {
                op: BinOp::Ge,
                left: expr.clone(),
                right: low.clone(),
            };
            let le = Expr::Binary {
                op: BinOp::Le,
                left: expr.clone(),
                right: high.clone(),
            };
            eval(&ge.and(le), df)
        }
        Expr::Case {
            branches,
            otherwise,
        } => {
            let out_type = infer_type(expr, df.schema())?;
            let conds: Vec<Column> = branches
                .iter()
                .map(|(c, _)| eval(c, df))
                .collect::<Result<_>>()?;
            let thens: Vec<Column> = branches
                .iter()
                .map(|(_, v)| eval(v, df))
                .collect::<Result<_>>()?;
            let other = eval(otherwise, df)?;
            let mut vals = Vec::with_capacity(n);
            for i in 0..n {
                let mut chosen: Option<Value> = None;
                for (cnd, thn) in conds.iter().zip(&thens) {
                    if cnd.is_valid(i) && cnd.value(i) == Value::Bool(true) {
                        chosen = Some(thn.value(i));
                        break;
                    }
                }
                vals.push(chosen.unwrap_or_else(|| other.value(i)));
            }
            Column::from_values(out_type, &vals)
        }
        Expr::Func { func, args } => eval_func(*func, args, df),
        Expr::Cast { expr, to } => {
            let c = eval(expr, df)?;
            cast_column(&c, *to)
        }
    }
}

/// Evaluate a predicate into a keep-mask: NULL collapses to `false`.
pub fn eval_mask(expr: &Expr, df: &DataFrame) -> Result<Vec<bool>> {
    // Conjunctions split here, not in the fused kernel: three-valued AND
    // collapses to plain mask-AND at the filter boundary (NULL∧x and
    // x∧NULL can never survive to `true`), so each conjunct independently
    // takes its own fast or generic path — a fusable comparison next to a
    // LIKE is never evaluated twice.
    if let Expr::Binary { op, left, right } = expr {
        if *op == BinOp::And {
            let mut l = eval_mask(left, df)?;
            let r = eval_mask(right, df)?;
            for (a, b) in l.iter_mut().zip(&r) {
                *a = *a && *b;
            }
            return Ok(l);
        }
    }
    if let Some(mask) = fused_cmp_mask(expr, df)? {
        return Ok(mask);
    }
    let c = eval(expr, df)?;
    require_bool(&c)?;
    let bools = c.as_bool_slice().expect("checked bool");
    Ok((0..df.num_rows())
        .map(|i| c.is_valid(i) && bools[i])
        .collect())
}

/// Evaluate a predicate into a `u32` selection vector of the kept rows —
/// the representation [`wake_data::DataFrame::select`] and the partition
/// scatter consume. Comparisons of dense `Int64`/`Float64`/`Date` columns
/// against literals (including conjunctions of such comparisons) run a
/// fused compare+collect kernel that never materialises a `Value` or an
/// intermediate `Bool` column; every other predicate falls back to
/// [`eval_mask`].
pub fn eval_selection(expr: &Expr, df: &DataFrame) -> Result<Vec<u32>> {
    let mask = eval_mask(expr, df)?;
    Ok(wake_data::column::mask_to_selection(&mask))
}

/// Fused comparison kernel: `col <cmp> numeric-literal` over a dense
/// numeric column, producing the keep-mask in one typed pass with no
/// intermediate `Value`s (AND-chains are split by [`eval_mask`] so every
/// conjunct reaches here individually). Returns `Ok(None)` when the
/// expression shape or column types are outside the fast path.
fn fused_cmp_mask(expr: &Expr, df: &DataFrame) -> Result<Option<Vec<bool>>> {
    match expr {
        Expr::Binary { op, left, right } if !op.is_arithmetic() && *op != BinOp::Or => {
            let (Expr::Col(name), Expr::Lit(lit)) = (left.as_ref(), right.as_ref()) else {
                return Ok(None);
            };
            let Ok(col) = df.column(name) else {
                return Ok(None);
            };
            if col.validity().is_some() {
                return Ok(None); // nulls take the generic three-valued path
            }
            // Value semantics compare all numerics through f64 (NaN sorts
            // after everything, equal to itself); a NaN literal is left to
            // the generic path rather than special-cased here.
            let Some(k) = lit.as_f64() else {
                return Ok(None);
            };
            if k.is_nan() {
                return Ok(None);
            }
            let mask = match col.data() {
                ColumnData::Int64(v) | ColumnData::Date(v) => {
                    cmp_mask_f64(*op, v, |x| *x as f64, k)
                }
                ColumnData::Float64(v) => cmp_mask_f64(*op, v, |x| *x, k),
                _ => return Ok(None),
            };
            Ok(Some(mask))
        }
        _ => Ok(None),
    }
}

/// One comparison of a dense numeric slice against a non-NaN literal. The
/// body is an unrolled per-lane test over `chunks_exact(8)` so the compiler
/// can keep it branch-free and vectorise. NaN cells sort after everything
/// (`Value::cmp` semantics), hence the extra `is_nan` term on `Gt`/`Ge`.
fn cmp_mask_f64<T: Copy>(op: BinOp, v: &[T], f: impl Fn(&T) -> f64 + Copy, k: f64) -> Vec<bool> {
    macro_rules! kernel {
        ($test:expr) => {{
            let mut out = Vec::with_capacity(v.len());
            let mut chunks = v.chunks_exact(8);
            for c in &mut chunks {
                out.extend([
                    $test(f(&c[0])),
                    $test(f(&c[1])),
                    $test(f(&c[2])),
                    $test(f(&c[3])),
                    $test(f(&c[4])),
                    $test(f(&c[5])),
                    $test(f(&c[6])),
                    $test(f(&c[7])),
                ]);
            }
            out.extend(chunks.remainder().iter().map(|x| $test(f(x))));
            out
        }};
    }
    match op {
        BinOp::Eq => kernel!(|x: f64| x == k),
        BinOp::Ne => kernel!(|x: f64| x != k),
        BinOp::Lt => kernel!(|x: f64| x < k),
        BinOp::Le => kernel!(|x: f64| x <= k),
        BinOp::Gt => kernel!(|x: f64| x > k || x.is_nan()),
        BinOp::Ge => kernel!(|x: f64| x >= k || x.is_nan()),
        _ => unreachable!("fused_cmp_mask only forwards comparisons"),
    }
}

fn require_bool(c: &Column) -> Result<()> {
    if c.data_type() != DataType::Bool {
        return Err(DataError::TypeMismatch {
            expected: "Bool".into(),
            found: c.data_type().to_string(),
        });
    }
    Ok(())
}

fn eval_binary(op: BinOp, l: &Column, r: &Column, _schema: &Schema) -> Result<Column> {
    let n = l.len();
    if r.len() != n {
        return Err(DataError::ShapeMismatch(format!(
            "binary operands differ in length: {n} vs {}",
            r.len()
        )));
    }
    if op.is_arithmetic() {
        let out_type = arith_result_type(op, l.data_type(), r.data_type())?;
        // Fast path: dense numeric inputs.
        if l.validity().is_none() && r.validity().is_none() {
            if out_type == DataType::Int64 || out_type == DataType::Date {
                if let (Some(a), Some(b)) = (l.as_i64_slice(), r.as_i64_slice()) {
                    let out: Vec<i64> = (0..n)
                        .map(|i| match op {
                            BinOp::Add => a[i] + b[i],
                            BinOp::Sub => a[i] - b[i],
                            BinOp::Mul => a[i] * b[i],
                            _ => unreachable!("int div widens to float"),
                        })
                        .collect();
                    return Ok(Column::new(if out_type == DataType::Date {
                        ColumnData::Date(out)
                    } else {
                        ColumnData::Int64(out)
                    }));
                }
            } else if out_type == DataType::Float64 {
                let fa: Option<Vec<f64>> = dense_f64(l);
                let fb: Option<Vec<f64>> = dense_f64(r);
                if let (Some(a), Some(b)) = (fa, fb) {
                    let out: Vec<f64> = (0..n)
                        .map(|i| match op {
                            BinOp::Add => a[i] + b[i],
                            BinOp::Sub => a[i] - b[i],
                            BinOp::Mul => a[i] * b[i],
                            BinOp::Div => a[i] / b[i],
                            _ => unreachable!(),
                        })
                        .collect();
                    return Ok(Column::from_f64(out));
                }
            }
        }
        // Generic path with null propagation.
        let mut vals = Vec::with_capacity(n);
        for i in 0..n {
            let (a, b) = (l.value(i), r.value(i));
            vals.push(scalar_arith(op, &a, &b, out_type)?);
        }
        return Column::from_values(out_type, &vals);
    }
    match op {
        BinOp::And | BinOp::Or => {
            require_bool(l)?;
            require_bool(r)?;
            let la = l.as_bool_slice().expect("bool");
            let rb = r.as_bool_slice().expect("bool");
            let mut vals = Vec::with_capacity(n);
            for i in 0..n {
                let a = if l.is_valid(i) { Some(la[i]) } else { None };
                let b = if r.is_valid(i) { Some(rb[i]) } else { None };
                let v = match op {
                    BinOp::And => match (a, b) {
                        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                        (Some(true), Some(true)) => Value::Bool(true),
                        _ => Value::Null,
                    },
                    BinOp::Or => match (a, b) {
                        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                        (Some(false), Some(false)) => Value::Bool(false),
                        _ => Value::Null,
                    },
                    _ => unreachable!(),
                };
                vals.push(v);
            }
            Column::from_values(DataType::Bool, &vals)
        }
        _ => {
            // Comparison with null propagation; Value's Ord handles numeric
            // cross-type comparison.
            let mut vals = Vec::with_capacity(n);
            for i in 0..n {
                let (a, b) = (l.value(i), r.value(i));
                if a.is_null() || b.is_null() {
                    vals.push(Value::Null);
                    continue;
                }
                let ord = a.cmp(&b);
                let res = match op {
                    BinOp::Eq => ord.is_eq(),
                    BinOp::Ne => !ord.is_eq(),
                    BinOp::Lt => ord.is_lt(),
                    BinOp::Le => ord.is_le(),
                    BinOp::Gt => ord.is_gt(),
                    BinOp::Ge => ord.is_ge(),
                    _ => unreachable!(),
                };
                vals.push(Value::Bool(res));
            }
            Column::from_values(DataType::Bool, &vals)
        }
    }
}

fn dense_f64(c: &Column) -> Option<Vec<f64>> {
    if let Some(f) = c.as_f64_slice() {
        return Some(f.to_vec());
    }
    c.as_i64_slice()
        .map(|v| v.iter().map(|&x| x as f64).collect())
}

fn scalar_arith(op: BinOp, a: &Value, b: &Value, out: DataType) -> Result<Value> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    let (x, y) = match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => (x, y),
        _ => {
            return Err(DataError::TypeMismatch {
                expected: "numeric operands".into(),
                found: format!("{a:?} {op} {b:?}"),
            })
        }
    };
    let f = match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        _ => unreachable!(),
    };
    Ok(match out {
        DataType::Int64 => Value::Int(f as i64),
        DataType::Date => Value::Date(f as i64),
        _ => Value::Float(f),
    })
}

fn eval_func(func: Func, args: &[Expr], df: &DataFrame) -> Result<Column> {
    let n = df.num_rows();
    match func {
        Func::Year => {
            let c = eval(&args[0], df)?;
            if c.data_type() != DataType::Date {
                return Err(DataError::TypeMismatch {
                    expected: "Date for year()".into(),
                    found: c.data_type().to_string(),
                });
            }
            let days = c.as_i64_slice().expect("date storage");
            let vals: Vec<Value> = (0..n)
                .map(|i| {
                    if c.is_valid(i) {
                        Value::Int(days_to_date(days[i]).0)
                    } else {
                        Value::Null
                    }
                })
                .collect();
            Column::from_values(DataType::Int64, &vals)
        }
        Func::Substr => {
            let c = eval(&args[0], df)?;
            let start = match &args[1] {
                Expr::Lit(Value::Int(s)) => *s,
                _ => {
                    return Err(DataError::Invalid(
                        "substr start must be an int literal".into(),
                    ))
                }
            };
            let len = match &args[2] {
                Expr::Lit(Value::Int(l)) => *l,
                _ => {
                    return Err(DataError::Invalid(
                        "substr len must be an int literal".into(),
                    ))
                }
            };
            if start < 1 || len < 0 {
                return Err(DataError::Invalid(
                    "substr start is 1-based, len >= 0".into(),
                ));
            }
            let strs = c.as_str_slice().ok_or_else(|| DataError::TypeMismatch {
                expected: "Utf8 for substr()".into(),
                found: c.data_type().to_string(),
            })?;
            let vals: Vec<Value> = (0..n)
                .map(|i| {
                    if !c.is_valid(i) {
                        return Value::Null;
                    }
                    let s: String = strs[i]
                        .chars()
                        .skip((start - 1) as usize)
                        .take(len as usize)
                        .collect();
                    Value::str(s)
                })
                .collect();
            Column::from_values(DataType::Utf8, &vals)
        }
        Func::Abs => {
            let c = eval(&args[0], df)?;
            let vals: Vec<Value> = c
                .iter()
                .map(|v| match v {
                    Value::Int(i) => Value::Int(i.abs()),
                    Value::Float(f) => Value::Float(f.abs()),
                    Value::Null => Value::Null,
                    other => other,
                })
                .collect();
            Column::from_values(c.data_type(), &vals)
        }
    }
}

fn cast_column(c: &Column, to: DataType) -> Result<Column> {
    if c.data_type() == to {
        return Ok(c.clone());
    }
    let vals: Vec<Value> = c
        .iter()
        .map(|v| {
            if v.is_null() {
                return Ok(Value::Null);
            }
            let out = match to {
                DataType::Float64 => Value::Float(v.as_f64().ok_or_else(err_cast)?),
                DataType::Int64 => match &v {
                    Value::Float(f) => Value::Int(*f as i64),
                    _ => Value::Int(v.as_i64().ok_or_else(err_cast)?),
                },
                DataType::Utf8 => Value::str(v.to_string()),
                DataType::Bool => Value::Bool(v.as_bool().ok_or_else(err_cast)?),
                DataType::Date => Value::Date(v.as_i64().ok_or_else(err_cast)?),
            };
            Ok(out)
        })
        .collect::<Result<_>>()?;
    Column::from_values(to, &vals)
}

fn err_cast() -> DataError {
    DataError::Invalid("unsupported cast".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{case_when, col, lit_date, lit_f64, lit_i64, lit_str};
    use std::sync::Arc;
    use wake_data::{Field, Schema};

    fn df() -> DataFrame {
        let schema = Arc::new(Schema::new(vec![
            Field::new("i", DataType::Int64),
            Field::new("f", DataType::Float64),
            Field::new("s", DataType::Utf8),
            Field::new("d", DataType::Date),
        ]));
        DataFrame::new(
            schema,
            vec![
                Column::from_i64(vec![1, 2, 3, 4]),
                Column::from_f64(vec![0.5, 1.5, 2.5, 3.5]),
                Column::from_str_iter(["alpha", "beta", "PROMO X", "gamma"]),
                Column::from_dates(vec![0, 100, 200, 10_000]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn arithmetic_types_and_values() {
        let d = df();
        let c = eval(&col("i").add(lit_i64(10)), &d).unwrap();
        assert_eq!(c.data_type(), DataType::Int64);
        assert_eq!(c.value(2), Value::Int(13));

        let c = eval(&col("i").mul(col("f")), &d).unwrap();
        assert_eq!(c.data_type(), DataType::Float64);
        assert_eq!(c.value(1), Value::Float(3.0));

        // Integer division widens to float.
        let c = eval(&col("i").div(lit_i64(2)), &d).unwrap();
        assert_eq!(c.data_type(), DataType::Float64);
        assert_eq!(c.value(0), Value::Float(0.5));
    }

    #[test]
    fn date_arithmetic() {
        let d = df();
        let c = eval(&col("d").add(lit_i64(5)), &d).unwrap();
        assert_eq!(c.data_type(), DataType::Date);
        assert_eq!(c.value(0), Value::Date(5));
        let c = eval(&col("d").sub(col("d")), &d).unwrap();
        assert_eq!(c.data_type(), DataType::Int64);
        assert_eq!(c.value(3), Value::Int(0));
    }

    #[test]
    fn comparisons_and_mask() {
        let d = df();
        let mask = eval_mask(&col("f").gt(lit_f64(1.0)).and(col("i").lt(lit_i64(4))), &d).unwrap();
        assert_eq!(mask, vec![false, true, true, false]);
        let mask = eval_mask(&col("s").like("PROMO%"), &d).unwrap();
        assert_eq!(mask, vec![false, false, true, false]);
        let mask = eval_mask(
            &col("s").in_list(vec![Value::str("alpha"), Value::str("gamma")]),
            &d,
        )
        .unwrap();
        assert_eq!(mask, vec![true, false, false, true]);
        let mask = eval_mask(&col("i").between(lit_i64(2), lit_i64(3)), &d).unwrap();
        assert_eq!(mask, vec![false, true, true, false]);
    }

    #[test]
    fn null_propagation() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let d = DataFrame::from_rows(
            schema,
            &[vec![Value::Int(1)], vec![Value::Null], vec![Value::Int(3)]],
        )
        .unwrap();
        let c = eval(&col("x").add(lit_i64(1)), &d).unwrap();
        assert_eq!(c.value(1), Value::Null);
        // NULL comparison excludes the row in a mask.
        let mask = eval_mask(&col("x").gt(lit_i64(0)), &d).unwrap();
        assert_eq!(mask, vec![true, false, true]);
        // IS NULL
        let mask = eval_mask(&col("x").is_null(), &d).unwrap();
        assert_eq!(mask, vec![false, true, false]);
        // three-valued OR: NULL OR TRUE = TRUE
        let mask = eval_mask(&col("x").gt(lit_i64(0)).or(col("x").is_null()), &d).unwrap();
        assert_eq!(mask, vec![true, true, true]);
    }

    #[test]
    fn case_year_substr() {
        let d = df();
        let e = case_when(vec![(col("s").like("PROMO%"), col("f"))], lit_f64(0.0));
        let c = eval(&e, &d).unwrap();
        assert_eq!(c.value(2), Value::Float(2.5));
        assert_eq!(c.value(0), Value::Float(0.0));

        let y = eval(&col("d").year(), &d).unwrap();
        assert_eq!(y.value(0), Value::Int(1970));
        assert_eq!(y.value(3), Value::Int(1997));

        let s = eval(&col("s").substr(1, 4), &d).unwrap();
        assert_eq!(s.value(1), Value::str("beta"));
        assert_eq!(s.value(2), Value::str("PROM"));
    }

    #[test]
    fn cast_and_errors() {
        let d = df();
        let c = eval(&col("i").cast(DataType::Float64), &d).unwrap();
        assert_eq!(c.value(0), Value::Float(1.0));
        let c = eval(&col("f").cast(DataType::Int64), &d).unwrap();
        assert_eq!(c.value(3), Value::Int(3));
        assert!(eval(&col("s").add(lit_i64(1)), &d).is_err());
        assert!(eval(&col("missing"), &d).is_err());
        assert!(eval(&col("i").like("%x"), &d).is_err());
    }

    #[test]
    fn fused_selection_matches_generic_mask() {
        // The fused compare+collect kernels must agree with the generic
        // Value-semantics path on dense data — including NaN cells (sort
        // after everything), huge ints (compare through f64), and AND
        // fusion; nullable columns must fall back (and still agree).
        let schema = Arc::new(Schema::new(vec![
            Field::new("i", DataType::Int64),
            Field::new("f", DataType::Float64),
            Field::new("d", DataType::Date),
        ]));
        let d = DataFrame::new(
            schema.clone(),
            vec![
                Column::from_i64(vec![1, -5, i64::MAX, 1 << 60, 0, 7, 8, 9, 10]),
                Column::from_f64(vec![
                    0.5,
                    f64::NAN,
                    -0.0,
                    3.5,
                    f64::INFINITY,
                    -1.0,
                    2.0,
                    2.0,
                    9.9,
                ]),
                Column::from_dates(vec![0, 100, 200, 300, 400, 500, 600, 700, 800]),
            ],
        )
        .unwrap();
        let exprs = [
            col("i").gt(lit_i64(2)),
            col("i").le(lit_i64(0)),
            col("i").eq(lit_i64(i64::MAX)),
            col("f").gt(lit_f64(1.0)),
            col("f").ge(lit_f64(0.0)),
            col("f").lt(lit_f64(2.0)),
            col("f").ne(lit_f64(2.0)),
            col("f").eq(lit_i64(2)),
            col("d").ge(lit_i64(300)),
            col("i").gt(lit_i64(2)).and(col("f").lt(lit_f64(5.0))),
        ];
        for e in exprs {
            // Generic path: force it by evaluating the boolean column.
            let c = eval(&e, &d).unwrap();
            let generic: Vec<bool> = (0..d.num_rows())
                .map(|i| c.is_valid(i) && c.value(i) == Value::Bool(true))
                .collect();
            assert_eq!(eval_mask(&e, &d).unwrap(), generic, "expr: {e}");
            let sel = eval_selection(&e, &d).unwrap();
            let expect: Vec<u32> = generic
                .iter()
                .enumerate()
                .filter(|(_, &k)| k)
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(sel, expect, "expr: {e}");
        }
        // Nullable column: fallback path, null collapses to false.
        let nd = DataFrame::from_rows(
            Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)])),
            &[vec![Value::Int(1)], vec![Value::Null], vec![Value::Int(3)]],
        )
        .unwrap();
        assert_eq!(
            eval_selection(&col("x").gt(lit_i64(0)), &nd).unwrap(),
            vec![0, 2]
        );
    }

    #[test]
    fn infer_type_matches_eval() {
        let d = df();
        let schema = d.schema();
        for e in [
            col("i").add(col("i")),
            col("i").div(col("i")),
            col("f").mul(lit_i64(2)),
            col("d").sub(col("d")),
            col("s").like("%"),
            col("d").year(),
            col("s").substr(1, 1),
            lit_str("k"),
            lit_date(1995, 1, 1),
        ] {
            let t = infer_type(&e, schema).unwrap();
            let c = eval(&e, &d).unwrap();
            assert_eq!(t, c.data_type(), "expr: {e}");
        }
    }
}

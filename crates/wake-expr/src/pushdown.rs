//! Predicate pushdown extraction: turn the prunable part of a filter
//! expression into [`ColPredicate`]s for the zone pruner.
//!
//! Only conjuncts of the shape `col <cmp> literal` (either orientation) or
//! `col BETWEEN lit AND lit` are extracted — exactly the forms zone-map
//! min/max statistics can decide. Everything else (disjunctions, `Ne`,
//! LIKE, arithmetic over columns, …) is skipped *conservatively*: the
//! filter itself always stays in the plan, so an unextractable conjunct
//! merely forfeits pruning, never correctness.

use crate::{BinOp, Expr};
use wake_data::scan::{ColPredicate, PredOp};
use wake_data::Value;

fn cmp_op(op: BinOp) -> Option<PredOp> {
    Some(match op {
        BinOp::Lt => PredOp::Lt,
        BinOp::Le => PredOp::Le,
        BinOp::Gt => PredOp::Gt,
        BinOp::Ge => PredOp::Ge,
        BinOp::Eq => PredOp::Eq,
        // `Ne` prunes only single-value zones — not worth the footgun.
        _ => return None,
    })
}

fn flip(op: PredOp) -> PredOp {
    match op {
        PredOp::Lt => PredOp::Gt,
        PredOp::Le => PredOp::Ge,
        PredOp::Gt => PredOp::Lt,
        PredOp::Ge => PredOp::Le,
        PredOp::Eq => PredOp::Eq,
    }
}

fn as_col_lit(left: &Expr, right: &Expr) -> Option<(String, Value, bool)> {
    match (left, right) {
        (Expr::Col(c), Expr::Lit(v)) => Some((c.to_string(), v.clone(), false)),
        (Expr::Lit(v), Expr::Col(c)) => Some((c.to_string(), v.clone(), true)),
        _ => None,
    }
}

fn collect(expr: &Expr, out: &mut Vec<ColPredicate>) {
    match expr {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            collect(left, out);
            collect(right, out);
        }
        Expr::Binary { op, left, right } => {
            let (Some(op), Some((column, value, flipped))) = (cmp_op(*op), as_col_lit(left, right))
            else {
                return;
            };
            let op = if flipped { flip(op) } else { op };
            out.push(ColPredicate { column, op, value });
        }
        Expr::Between { expr, low, high } => {
            if let (Expr::Col(c), Expr::Lit(lo), Expr::Lit(hi)) =
                (expr.as_ref(), low.as_ref(), high.as_ref())
            {
                out.push(ColPredicate {
                    column: c.to_string(),
                    op: PredOp::Ge,
                    value: lo.clone(),
                });
                out.push(ColPredicate {
                    column: c.to_string(),
                    op: PredOp::Le,
                    value: hi.clone(),
                });
            }
        }
        // Any other node (Or, Not, Like, InList, …) contributes nothing.
        _ => {}
    }
}

/// Extract the zone-prunable conjuncts of `expr`. The result may be empty;
/// it is always a *superset-safe* weakening of the filter (every row the
/// filter keeps satisfies every extracted predicate).
pub fn extract_predicates(expr: &Expr) -> Vec<ColPredicate> {
    let mut out = Vec::new();
    collect(expr, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{col, lit_f64, lit_i64, lit_str};

    #[test]
    fn extracts_conjunctive_range_and_equality() {
        // A Q6-shaped filter: date range + BETWEEN + strict upper bound.
        let e = col("ship")
            .ge(lit_i64(100))
            .and(col("ship").lt(lit_i64(200)))
            .and(col("disc").between(lit_f64(0.05), lit_f64(0.07)))
            .and(col("qty").lt(lit_i64(24)));
        let preds = extract_predicates(&e);
        assert_eq!(preds.len(), 5);
        assert_eq!(preds[0].to_string(), "ship >= 100");
        assert_eq!(preds[1].to_string(), "ship < 200");
        assert_eq!(preds[2].to_string(), "disc >= 0.05");
        assert_eq!(preds[3].to_string(), "disc <= 0.07");
        assert_eq!(preds[4].to_string(), "qty < 24");
    }

    #[test]
    fn flipped_operands_normalise() {
        let e = lit_i64(5).lt(col("x")).and(lit_str("a").eq(col("s")));
        let preds = extract_predicates(&e);
        assert_eq!(preds[0].to_string(), "x > 5");
        assert_eq!(preds[1].to_string(), "s = a");
    }

    #[test]
    fn non_prunable_shapes_are_skipped_not_broken() {
        // OR poisons neither side's siblings outside the OR.
        let e = col("a")
            .gt(lit_i64(1))
            .or(col("b").lt(lit_i64(2)))
            .and(col("c").eq(lit_i64(3)));
        let preds = extract_predicates(&e);
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0].to_string(), "c = 3");
        // Ne, col-col comparisons, arithmetic, LIKE: nothing extracted.
        for e in [
            col("a").ne(lit_i64(1)),
            col("a").lt(col("b")),
            col("a").add(lit_i64(1)).lt(lit_i64(3)),
            col("s").like("%x%"),
            col("a").gt(lit_i64(1)).not(),
        ] {
            assert!(extract_predicates(&e).is_empty(), "{e}");
        }
        // BETWEEN over non-literal bounds is skipped.
        assert!(extract_predicates(&col("a").between(col("lo"), lit_i64(9))).is_empty());
    }
}

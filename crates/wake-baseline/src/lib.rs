//! # wake-baseline
//!
//! The comparator systems from the paper's evaluation (§8.1), rebuilt at
//! laptop scale (see DESIGN.md "Substitutions"):
//!
//! - [`naive`]: an independent, all-at-once exact query engine (hash joins
//!   over `BTreeMap`s, single-pass group-by). It stands in for the exact
//!   systems of Fig 7 (Polars/Presto/Postgres/...) *and* serves as an
//!   implementation-independent ground truth for cross-checking Wake's
//!   final answers.
//! - [`progressive`]: a ProgressiveDB-style middleware aggregator —
//!   single-table, partition-progressive, linear `1/t` scaling, no growth
//!   model, no nesting (Fig 9a's opponent).
//! - [`wanderjoin`]: a WanderJoin-style random-walk join sampler with
//!   per-path Horvitz–Thompson weighting — fast early estimates that
//!   plateau around a sampling floor instead of converging to the exact
//!   answer (Fig 9b's opponent).

pub mod naive;
pub mod progressive;
pub mod wanderjoin;

pub use naive::Table;
pub use progressive::ProgressiveAgg;
pub use wanderjoin::{WalkStep, WanderJoin};

pub type Result<T> = std::result::Result<T, wake_data::DataError>;

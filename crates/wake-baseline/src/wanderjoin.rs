//! A WanderJoin-style OLA baseline (Li et al., SIGMOD'16) for Fig 9b.
//!
//! WanderJoin estimates multi-join aggregates by random walks over index
//! lookups: sample a row from the first table, follow the join key to a
//! uniformly-chosen matching row in the next table, and so on; each
//! complete path contributes `value(path) × Π fanout` (Horvitz–Thompson
//! weighting). Estimates improve like `1/√samples` but — as the paper
//! observes (§8.4) — never converge to the exact answer, unlike Wake.

use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::{Duration, Instant};
use wake_data::{DataError, DataFrame, Row, Value};
use wake_expr::{eval, eval_mask, Expr};

/// One hop of a walk: from a column on the current path to a keyed table.
pub struct WalkStep {
    /// Column (of the *path so far*) holding the join value.
    pub from_col: &'static str,
    /// Target table.
    pub table: DataFrame,
    /// Key column in the target table (indexed).
    pub key: &'static str,
    /// Optional predicate rows of the target table must satisfy.
    pub predicate: Option<Expr>,
}

/// A random-walk join estimator for `SUM(value_expr)` group-by queries.
pub struct WanderJoin {
    start: DataFrame,
    steps: Vec<PreparedStep>,
    /// Group key column (on the start table or any joined table), or None
    /// for a global aggregate.
    group_col: Option<&'static str>,
    value_expr: Expr,
    rng: StdRng,
    /// Per-group running totals of weighted samples.
    sums: HashMap<Row, (f64, u64)>,
    global: (f64, u64),
    samples: u64,
}

struct PreparedStep {
    from_col: &'static str,
    table: DataFrame,
    index: HashMap<Value, Vec<usize>>,
}

impl WanderJoin {
    /// Prepare indexes (WanderJoin requires indexes on all join keys).
    pub fn new(
        start: DataFrame,
        start_predicate: Option<Expr>,
        steps: Vec<WalkStep>,
        group_col: Option<&'static str>,
        value_expr: Expr,
        seed: u64,
    ) -> Result<Self> {
        let start = match start_predicate {
            Some(p) => {
                let mask = eval_mask(&p, &start)?;
                start.filter(&mask)?
            }
            None => start,
        };
        if start.num_rows() == 0 {
            return Err(DataError::Invalid("wander join: empty start table".into()));
        }
        let mut prepared = Vec::with_capacity(steps.len());
        for s in steps {
            let table = match &s.predicate {
                Some(p) => {
                    let mask = eval_mask(p, &s.table)?;
                    s.table.filter(&mask)?
                }
                None => s.table,
            };
            let key_idx = table.schema().index_of(s.key)?;
            let mut index: HashMap<Value, Vec<usize>> = HashMap::new();
            for i in 0..table.num_rows() {
                let v = table.column_at(key_idx).value(i);
                if !v.is_null() {
                    index.entry(v).or_default().push(i);
                }
            }
            prepared.push(PreparedStep {
                from_col: s.from_col,
                table,
                index,
            });
        }
        Ok(WanderJoin {
            start,
            steps: prepared,
            group_col,
            value_expr,
            rng: StdRng::seed_from_u64(seed),
            sums: HashMap::new(),
            global: (0.0, 0),
            samples: 0,
        })
    }

    /// Perform one random walk; returns whether it completed.
    fn walk(&mut self) -> Result<bool> {
        self.samples += 1;
        let n0 = self.start.num_rows();
        let r0 = self.rng.gen_range(0..n0);
        // Assemble the path as (column name -> value) over all hops.
        let mut path: HashMap<&str, Value> = HashMap::new();
        for (ci, field) in self.start.schema().fields().iter().enumerate() {
            path.insert(field.name.as_str(), self.start.column_at(ci).value(r0));
        }
        let mut weight = n0 as f64;
        // Borrow juggling: take steps out while walking.
        let steps = std::mem::take(&mut self.steps);
        let mut completed = true;
        for step in &steps {
            let Some(from) = path.get(step.from_col).cloned() else {
                completed = false;
                break;
            };
            let Some(matches) = step.index.get(&from) else {
                completed = false;
                break;
            };
            let pick = matches[self.rng.gen_range(0..matches.len())];
            weight *= matches.len() as f64;
            for (ci, field) in step.table.schema().fields().iter().enumerate() {
                path.insert(field.name.as_str(), step.table.column_at(ci).value(pick));
            }
            if !completed {
                break;
            }
        }
        let contribution = if completed {
            // Evaluate the value expression over the 1-row path frame.
            let row = self.path_value(&path)?;
            Some(row)
        } else {
            None
        };
        let group = self.group_col.and_then(|c| path.get(c).cloned());
        self.steps = steps;
        let weighted = contribution.map(|v| v * weight).unwrap_or(0.0);
        match (self.group_col, group) {
            (Some(_), Some(gv)) if contribution.is_some() => {
                let e = self.sums.entry(Row::new(vec![gv])).or_insert((0.0, 0));
                e.0 += weighted;
            }
            _ => {}
        }
        self.global.0 += weighted;
        self.global.1 += 1;
        Ok(contribution.is_some())
    }

    fn path_value(&self, path: &HashMap<&str, Value>) -> Result<f64> {
        // Evaluate value_expr by resolving referenced columns from the path.
        eval_scalar(&self.value_expr, path)
    }

    /// Run `n` walks, recording an estimate snapshot every `every` walks.
    /// Each estimate is the HT estimator `(Σ weighted) / samples`.
    pub fn run(&mut self, n: u64, every: u64) -> Result<Vec<WanderEstimate>> {
        let start = Instant::now();
        let mut out = Vec::new();
        for i in 1..=n {
            self.walk()?;
            if i % every == 0 || i == n {
                out.push(WanderEstimate {
                    global: self.global.0 / self.samples as f64,
                    groups: self
                        .sums
                        .iter()
                        .map(|(k, (s, _))| (k.clone(), *s / self.samples as f64))
                        .collect(),
                    samples: self.samples,
                    elapsed: start.elapsed(),
                });
            }
        }
        Ok(out)
    }
}

/// A point-in-time WanderJoin estimate.
#[derive(Debug, Clone)]
pub struct WanderEstimate {
    /// Estimated global SUM.
    pub global: f64,
    /// Per-group estimated SUMs (when a group column was given).
    pub groups: Vec<(Row, f64)>,
    pub samples: u64,
    pub elapsed: Duration,
}

/// Evaluate an expression against a single-row environment.
fn eval_scalar(expr: &Expr, env: &HashMap<&str, Value>) -> Result<f64> {
    use std::sync::Arc;
    use wake_data::{Column, Field, Schema};
    // Build a one-row frame containing exactly the referenced columns.
    let cols = expr.referenced_columns();
    let mut fields = Vec::with_capacity(cols.len());
    let mut columns = Vec::with_capacity(cols.len());
    for c in cols {
        let v = env
            .get(c)
            .cloned()
            .ok_or_else(|| DataError::ColumnNotFound(c.to_string()))?;
        let dtype = v.data_type().unwrap_or(wake_data::DataType::Float64);
        fields.push(Field::new(c, dtype));
        columns.push(Column::from_values(dtype, &[v])?);
    }
    let frame = DataFrame::new(Arc::new(Schema::new(fields)), columns)?;
    let out = eval(expr, &frame)?;
    Ok(out.value(0).as_f64().unwrap_or(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wake_data::{Column, DataType, Field, Schema};
    use wake_expr::col;

    fn table(names: &[(&str, Vec<i64>)]) -> DataFrame {
        let fields = names
            .iter()
            .map(|(n, _)| Field::new(*n, DataType::Int64))
            .collect();
        let cols = names
            .iter()
            .map(|(_, v)| Column::from_i64(v.clone()))
            .collect();
        DataFrame::new(Arc::new(Schema::new(fields)), cols).unwrap()
    }

    #[test]
    fn unbiased_single_join_sum() {
        // fact(k, v) join dim(k, w): exact SUM(v*w) computable by hand.
        let fact = table(&[("k", vec![1, 1, 2, 3]), ("v", vec![10, 20, 30, 40])]);
        let dim = table(&[("dk", vec![1, 2, 2, 3]), ("w", vec![2, 3, 5, 7])]);
        // Exact: k=1 rows match w=2 → (10+20)*2; k=2 matches w=3 and w=5 →
        // 30*8; k=3 matches w=7 → 40*7. Total = 60 + 240 + 280 = 580.
        let mut wj = WanderJoin::new(
            fact,
            None,
            vec![WalkStep {
                from_col: "k",
                table: dim,
                key: "dk",
                predicate: None,
            }],
            None,
            col("v").mul(col("w")),
            7,
        )
        .unwrap();
        let est = wj.run(60_000, 60_000).unwrap();
        let got = est.last().unwrap().global;
        assert!(
            (got - 580.0).abs() / 580.0 < 0.05,
            "HT estimate {got} too far from 580"
        );
    }

    #[test]
    fn error_shrinks_with_samples_but_not_to_zero() {
        let fact = table(&[
            ("k", (0..200).map(|i| i % 10).collect()),
            ("v", (0..200).map(|i| i % 13).collect()),
        ]);
        let dim = table(&[
            ("dk", (0..10).collect()),
            ("w", (0..10).map(|i| i + 1).collect()),
        ]);
        let exact: f64 = (0..200).map(|i| ((i % 13) * ((i % 10) + 1)) as f64).sum();
        let mut wj = WanderJoin::new(
            fact,
            None,
            vec![WalkStep {
                from_col: "k",
                table: dim,
                key: "dk",
                predicate: None,
            }],
            None,
            col("v").mul(col("w")),
            42,
        )
        .unwrap();
        let series = wj.run(40_000, 2_000).unwrap();
        let early = ((series[0].global - exact) / exact).abs();
        let late = ((series.last().unwrap().global - exact) / exact).abs();
        assert!(late <= early + 0.05, "error should tend to shrink");
        // But it does NOT hit exactly zero (random-walk floor).
        assert!(late > 0.0);
    }

    #[test]
    fn failed_walks_count_toward_denominator() {
        // Half the fact rows have no match: estimates stay unbiased.
        let fact = table(&[("k", vec![1, 9]), ("v", vec![100, 100])]);
        let dim = table(&[("dk", vec![1]), ("w", vec![1])]);
        let mut wj = WanderJoin::new(
            fact,
            None,
            vec![WalkStep {
                from_col: "k",
                table: dim,
                key: "dk",
                predicate: None,
            }],
            None,
            col("v").mul(col("w")),
            5,
        )
        .unwrap();
        let est = wj.run(20_000, 20_000).unwrap();
        let got = est.last().unwrap().global;
        assert!((got - 100.0).abs() / 100.0 < 0.1, "got {got}");
    }

    #[test]
    fn group_estimates_and_predicates() {
        let fact = table(&[("k", vec![1, 1, 2, 2]), ("v", vec![5, 5, 9, 9])]);
        let dim = table(&[("dk", vec![1, 2]), ("w", vec![1, 1]), ("flag", vec![1, 1])]);
        let mut wj = WanderJoin::new(
            fact,
            Some(col("v").gt(wake_expr::lit_i64(0))),
            vec![WalkStep {
                from_col: "k",
                table: dim,
                key: "dk",
                predicate: Some(col("flag").eq(wake_expr::lit_i64(1))),
            }],
            Some("k"),
            col("v"),
            11,
        )
        .unwrap();
        let est = wj.run(10_000, 10_000).unwrap();
        let last = est.last().unwrap();
        assert_eq!(last.groups.len(), 2);
        let total: f64 = last.groups.iter().map(|(_, v)| v).sum();
        assert!((total - 28.0).abs() / 28.0 < 0.15);
        assert!(wj.run(0, 1).unwrap().is_empty());
    }

    #[test]
    fn empty_start_is_error() {
        let fact = table(&[("k", vec![]), ("v", vec![])]);
        let dim = table(&[("dk", vec![1]), ("w", vec![1])]);
        assert!(WanderJoin::new(
            fact,
            None,
            vec![WalkStep {
                from_col: "k",
                table: dim,
                key: "dk",
                predicate: None
            }],
            None,
            col("v"),
            1
        )
        .is_err());
    }
}

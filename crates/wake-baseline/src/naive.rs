//! An independent all-at-once exact engine.
//!
//! Deliberately written with different algorithms and data structures from
//! `wake-core`'s operators (BTreeMap group-by, build-probe hash join over
//! owned rows) so that agreement between the two engines is meaningful
//! evidence of correctness, not self-confirmation. It doubles as the
//! "conventional exact system" baseline of Fig 7.

use crate::Result;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use wake_data::{Column, DataError, DataFrame, DataType, Field, Row, Schema, Value};
use wake_expr::{eval, eval_mask, infer_type, Expr};

/// Aggregate functions supported by the naive engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NaiveAgg {
    Count,
    CountStar,
    Sum,
    Avg,
    Min,
    Max,
    CountDistinct,
}

/// Join kinds (mirrors the relational semantics of `wake-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NaiveJoin {
    Inner,
    Left,
    Semi,
    Anti,
}

/// An eagerly-evaluated table.
#[derive(Debug, Clone)]
pub struct Table {
    frame: DataFrame,
}

impl Table {
    pub fn new(frame: DataFrame) -> Self {
        Table { frame }
    }

    pub fn frame(&self) -> &DataFrame {
        &self.frame
    }

    pub fn into_frame(self) -> DataFrame {
        self.frame
    }

    pub fn num_rows(&self) -> usize {
        self.frame.num_rows()
    }

    pub fn filter(&self, predicate: &Expr) -> Result<Table> {
        let mask = eval_mask(predicate, &self.frame)?;
        Ok(Table::new(self.frame.filter(&mask)?))
    }

    pub fn map(&self, exprs: &[(Expr, &str)]) -> Result<Table> {
        let mut fields = Vec::with_capacity(exprs.len());
        let mut cols = Vec::with_capacity(exprs.len());
        for (e, name) in exprs {
            let dtype = infer_type(e, self.frame.schema())?;
            fields.push(Field::new(*name, dtype));
            cols.push(eval(e, &self.frame)?);
        }
        Ok(Table::new(DataFrame::new(
            Arc::new(Schema::new(fields)),
            cols,
        )?))
    }

    /// Build-probe hash join (right side is the build side).
    pub fn join(
        &self,
        right: &Table,
        left_on: &[&str],
        right_on: &[&str],
        kind: NaiveJoin,
    ) -> Result<Table> {
        if left_on.len() != right_on.len() || left_on.is_empty() {
            return Err(DataError::Invalid("bad join keys".into()));
        }
        let l_idx = self.frame.key_indices(left_on)?;
        let r_idx = right.frame.key_indices(right_on)?;
        let mut build: HashMap<Row, Vec<usize>> = HashMap::new();
        for i in 0..right.frame.num_rows() {
            let key = right.frame.key_at(i, &r_idx);
            if !key.has_null() {
                build.entry(key).or_default().push(i);
            }
        }
        match kind {
            NaiveJoin::Semi | NaiveJoin::Anti => {
                let mut keep_rows = Vec::new();
                for i in 0..self.frame.num_rows() {
                    let key = self.frame.key_at(i, &l_idx);
                    let hit = !key.has_null() && build.contains_key(&key);
                    if hit == (kind == NaiveJoin::Semi) {
                        keep_rows.push(i);
                    }
                }
                Ok(Table::new(self.frame.take(&keep_rows)))
            }
            NaiveJoin::Inner | NaiveJoin::Left => {
                let out_schema = Arc::new(self.frame.schema().join(right.frame.schema()));
                let mut rows: Vec<Vec<Value>> = Vec::new();
                let r_cols = right.frame.num_columns();
                for i in 0..self.frame.num_rows() {
                    let key = self.frame.key_at(i, &l_idx);
                    let matches = if key.has_null() {
                        None
                    } else {
                        build.get(&key)
                    };
                    match matches {
                        Some(ms) => {
                            for &m in ms {
                                let mut row = self.frame.row(i);
                                row.extend(right.frame.row(m));
                                rows.push(row);
                            }
                        }
                        None if kind == NaiveJoin::Left => {
                            let mut row = self.frame.row(i);
                            row.extend(std::iter::repeat_n(Value::Null, r_cols));
                            rows.push(row);
                        }
                        None => {}
                    }
                }
                Ok(Table::new(DataFrame::from_rows(out_schema, &rows)?))
            }
        }
    }

    /// Single-pass group-by with BTreeMap ordering (deterministic output).
    pub fn group_by(&self, keys: &[&str], aggs: &[(NaiveAgg, Expr, &str)]) -> Result<Table> {
        let key_idx = self.frame.key_indices(keys)?;
        let value_cols: Vec<Column> = aggs
            .iter()
            .map(|(_, e, _)| eval(e, &self.frame))
            .collect::<Result<_>>()?;

        #[derive(Default)]
        struct Acc {
            count: f64,
            nonnull: f64,
            sum: f64,
            min: Option<Value>,
            max: Option<Value>,
            distinct: HashSet<Value>,
        }
        let mut groups: BTreeMap<Row, Vec<Acc>> = BTreeMap::new();
        for i in 0..self.frame.num_rows() {
            let key = self.frame.key_at(i, &key_idx);
            let accs = groups
                .entry(key)
                .or_insert_with(|| (0..aggs.len()).map(|_| Acc::default()).collect());
            for (ai, acc) in accs.iter_mut().enumerate() {
                let v = value_cols[ai].value(i);
                acc.count += 1.0;
                if v.is_null() {
                    continue;
                }
                acc.nonnull += 1.0;
                if let Some(x) = v.as_f64() {
                    acc.sum += x;
                }
                if acc.min.as_ref().is_none_or(|m| v < *m) {
                    acc.min = Some(v.clone());
                }
                if acc.max.as_ref().is_none_or(|m| v > *m) {
                    acc.max = Some(v.clone());
                }
                if aggs[ai].0 == NaiveAgg::CountDistinct {
                    acc.distinct.insert(v);
                }
            }
        }
        // Output schema: keys + agg columns.
        let mut fields = Vec::with_capacity(keys.len() + aggs.len());
        for k in keys {
            fields.push(Field::new(*k, self.frame.schema().field(k)?.dtype));
        }
        for (func, e, alias) in aggs {
            let in_type = infer_type(e, self.frame.schema())?;
            let dtype = match func {
                NaiveAgg::Min | NaiveAgg::Max => in_type,
                _ => DataType::Float64,
            };
            fields.push(Field::mutable(*alias, dtype));
        }
        let schema = Arc::new(Schema::new(fields));
        let mut rows: Vec<Vec<Value>> = Vec::with_capacity(groups.len());
        for (key, accs) in groups {
            let mut row = key.into_values();
            for ((func, _, _), acc) in aggs.iter().zip(accs) {
                let v = match func {
                    NaiveAgg::CountStar => Value::Float(acc.count),
                    NaiveAgg::Count => Value::Float(acc.nonnull),
                    NaiveAgg::Sum => Value::Float(acc.sum),
                    NaiveAgg::Avg => {
                        if acc.nonnull > 0.0 {
                            Value::Float(acc.sum / acc.nonnull)
                        } else {
                            Value::Null
                        }
                    }
                    NaiveAgg::Min => acc.min.unwrap_or(Value::Null),
                    NaiveAgg::Max => acc.max.unwrap_or(Value::Null),
                    NaiveAgg::CountDistinct => Value::Float(acc.distinct.len() as f64),
                };
                row.push(v);
            }
            rows.push(row);
        }
        Ok(Table::new(DataFrame::from_rows(schema, &rows)?))
    }

    pub fn sort(&self, by: &[&str], descending: &[bool]) -> Result<Table> {
        Ok(Table::new(self.frame.sort_by(by, descending)?))
    }

    pub fn head(&self, n: usize) -> Table {
        Table::new(self.frame.head(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wake_expr::{col, lit_f64};

    fn t(ks: Vec<i64>, vs: Vec<f64>) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Float64),
        ]));
        Table::new(
            DataFrame::new(schema, vec![Column::from_i64(ks), Column::from_f64(vs)]).unwrap(),
        )
    }

    #[test]
    fn filter_map_sort() {
        let tab = t(vec![1, 2, 3], vec![1.0, 2.0, 3.0]);
        let f = tab.filter(&col("v").gt(lit_f64(1.5))).unwrap();
        assert_eq!(f.num_rows(), 2);
        let m = f.map(&[(col("v").mul(lit_f64(2.0)), "v2")]).unwrap();
        assert_eq!(m.frame().value(0, "v2").unwrap(), Value::Float(4.0));
        let s = tab.sort(&["v"], &[true]).unwrap();
        assert_eq!(s.frame().value(0, "v").unwrap(), Value::Float(3.0));
        assert_eq!(tab.head(1).num_rows(), 1);
    }

    #[test]
    fn joins_all_kinds() {
        let left = t(vec![1, 2, 3], vec![10.0, 20.0, 30.0]);
        let right = t(vec![2, 3, 3], vec![0.2, 0.3, 0.33]);
        let inner = left.join(&right, &["k"], &["k"], NaiveJoin::Inner).unwrap();
        assert_eq!(inner.num_rows(), 3); // 2 matches once, 3 matches twice
        let lj = left.join(&right, &["k"], &["k"], NaiveJoin::Left).unwrap();
        assert_eq!(lj.num_rows(), 4);
        assert!(lj.frame().value(0, "v_right").unwrap().is_null());
        let semi = left.join(&right, &["k"], &["k"], NaiveJoin::Semi).unwrap();
        assert_eq!(semi.num_rows(), 2);
        let anti = left.join(&right, &["k"], &["k"], NaiveJoin::Anti).unwrap();
        assert_eq!(anti.num_rows(), 1);
        assert_eq!(anti.frame().value(0, "k").unwrap(), Value::Int(1));
    }

    #[test]
    fn group_by_aggregates() {
        let tab = t(vec![1, 1, 2, 2, 2], vec![1.0, 3.0, 5.0, 5.0, 7.0]);
        let gb = tab
            .group_by(
                &["k"],
                &[
                    (NaiveAgg::Sum, col("v"), "s"),
                    (NaiveAgg::Avg, col("v"), "a"),
                    (NaiveAgg::Min, col("v"), "mn"),
                    (NaiveAgg::Max, col("v"), "mx"),
                    (NaiveAgg::CountStar, col("v"), "n"),
                    (NaiveAgg::CountDistinct, col("v"), "d"),
                ],
            )
            .unwrap();
        assert_eq!(gb.num_rows(), 2);
        let f = gb.frame();
        assert_eq!(f.value(0, "s").unwrap(), Value::Float(4.0));
        assert_eq!(f.value(1, "a").unwrap(), Value::Float(17.0 / 3.0));
        assert_eq!(f.value(1, "mn").unwrap(), Value::Float(5.0));
        assert_eq!(f.value(1, "mx").unwrap(), Value::Float(7.0));
        assert_eq!(f.value(1, "n").unwrap(), Value::Float(3.0));
        assert_eq!(f.value(1, "d").unwrap(), Value::Float(2.0));
    }

    #[test]
    fn global_group_by() {
        let tab = t(vec![1, 2], vec![4.0, 6.0]);
        let gb = tab
            .group_by(&[], &[(NaiveAgg::Sum, col("v"), "s")])
            .unwrap();
        assert_eq!(gb.num_rows(), 1);
        assert_eq!(gb.frame().value(0, "s").unwrap(), Value::Float(10.0));
    }
}

//! A ProgressiveDB-style OLA baseline (Berg et al., VLDB'19) as used in
//! the paper's Fig 9a comparison.
//!
//! ProgressiveDB is a middleware over a conventional DBMS: it splits a
//! *single table* into chunks, runs the (join-free) aggregation per chunk,
//! and scales partial results linearly by `1/t`. It has no growth model
//! (always assumes linear cardinality growth), no nested queries, and no
//! pipelined operators — which is exactly the gap Wake's Deep OLA fills.

use crate::naive::{NaiveAgg, Table};
use crate::Result;
use std::time::{Duration, Instant};
use wake_data::{DataFrame, TableSource};
use wake_expr::Expr;

/// One progressive estimate.
#[derive(Debug, Clone)]
pub struct ProgressiveEstimate {
    pub frame: DataFrame,
    pub t: f64,
    pub elapsed: Duration,
}

/// Single-table progressive aggregation with linear scaling.
pub struct ProgressiveAgg<'a> {
    pub source: &'a dyn TableSource,
    /// Optional row filter applied per chunk.
    pub predicate: Option<Expr>,
    /// Pre-aggregation projections (computed columns used by the aggs).
    pub projections: Vec<(Expr, &'static str)>,
    pub group_keys: Vec<&'static str>,
    pub aggs: Vec<(NaiveAgg, Expr, &'static str)>,
}

impl ProgressiveAgg<'_> {
    /// Run chunk-by-chunk, emitting one linearly-scaled estimate per chunk.
    pub fn run(&self) -> Result<Vec<ProgressiveEstimate>> {
        let start = Instant::now();
        let meta = self.source.meta();
        let total = meta.total_rows() as f64;
        let mut seen_rows = 0f64;
        let mut acc: Option<Table> = None;
        let mut out = Vec::new();
        for p in 0..meta.num_partitions() {
            let chunk = self.source.partition(p)?;
            seen_rows += chunk.num_rows() as f64;
            let mut table = Table::new(chunk);
            if let Some(pred) = &self.predicate {
                table = table.filter(pred)?;
            }
            if !self.projections.is_empty() {
                table = table.map(&self.projections)?;
            }
            // Accumulate raw rows; re-aggregate per chunk (ProgressiveDB
            // issues progressive SELECTs against the union of chunks).
            let merged = match acc {
                Some(prev) => Table::new(DataFrame::concat(&[prev.frame(), table.frame()])?),
                None => table,
            };
            acc = Some(merged.clone());
            let grouped = merged.group_by(&self.group_keys, &self.aggs)?;
            let t = (seen_rows / total.max(1.0)).clamp(0.0, 1.0);
            let scaled = scale_linear(&grouped, &self.aggs, t)?;
            out.push(ProgressiveEstimate {
                frame: scaled,
                t,
                elapsed: start.elapsed(),
            });
        }
        Ok(out)
    }
}

/// Linear `1/t` scaling of sum/count aggregates (avg/min/max untouched) —
/// ProgressiveDB's only estimator.
fn scale_linear(
    grouped: &Table,
    aggs: &[(NaiveAgg, Expr, &'static str)],
    t: f64,
) -> Result<DataFrame> {
    if t >= 1.0 || t <= 0.0 {
        return Ok(grouped.frame().clone());
    }
    let factor = 1.0 / t;
    let frame = grouped.frame();
    let mut exprs: Vec<(Expr, &str)> = Vec::new();
    for field in frame.schema().fields() {
        let is_scaled = aggs.iter().any(|(func, _, alias)| {
            *alias == field.name
                && matches!(func, NaiveAgg::Sum | NaiveAgg::Count | NaiveAgg::CountStar)
        });
        let e = if is_scaled {
            wake_expr::col(&field.name).mul(wake_expr::lit_f64(factor))
        } else {
            wake_expr::col(&field.name)
        };
        // Names owned by the schema outlive this call; leak tiny strings to
        // satisfy the `&'static str` map API used across the baselines.
        let name: &'static str = Box::leak(field.name.clone().into_boxed_str());
        exprs.push((e, name));
    }
    Ok(Table::new(frame.clone()).map(&exprs)?.into_frame())
}

/// Convenience for tests/benches: final exact answer of the same pipeline.
pub fn exact_answer(
    source: &dyn TableSource,
    predicate: Option<&Expr>,
    projections: &[(Expr, &'static str)],
    group_keys: &[&'static str],
    aggs: &[(NaiveAgg, Expr, &'static str)],
) -> Result<DataFrame> {
    let meta = source.meta();
    let mut frames = Vec::new();
    for p in 0..meta.num_partitions() {
        frames.push(source.partition(p)?);
    }
    let refs: Vec<&DataFrame> = frames.iter().collect();
    let mut table = Table::new(DataFrame::concat(&refs)?);
    if let Some(pred) = predicate {
        table = table.filter(pred)?;
    }
    if !projections.is_empty() {
        table = table.map(projections)?;
    }
    Ok(table.group_by(group_keys, aggs)?.into_frame())
}

/// Absolute relative error of the first value column, used by Fig 9 plots.
pub fn relative_error(estimate: &DataFrame, truth: &DataFrame, value_col: &str) -> f64 {
    // Match single-group (global) results directly.
    let (Ok(e), Ok(t)) = (estimate.value(0, value_col), truth.value(0, value_col)) else {
        return f64::NAN;
    };
    match (e.as_f64(), t.as_f64()) {
        (Some(e), Some(t)) if t != 0.0 => ((e - t) / t).abs(),
        _ => f64::NAN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wake_data::{Column, DataType, Field, MemorySource, Schema};
    use wake_expr::{col, lit_f64};

    fn source(n: usize, parts: usize) -> MemorySource {
        let schema = Arc::new(Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::new("v", DataType::Float64),
        ]));
        let df = DataFrame::new(
            schema,
            vec![
                Column::from_i64((0..n as i64).map(|i| i % 3).collect()),
                Column::from_f64((0..n).map(|i| (i % 10) as f64).collect()),
            ],
        )
        .unwrap();
        MemorySource::from_frame("t", &df, n.div_ceil(parts), vec![], None).unwrap()
    }

    #[test]
    fn estimates_scale_and_converge() {
        let src = source(300, 10);
        let agg = ProgressiveAgg {
            source: &src,
            predicate: None,
            projections: vec![],
            group_keys: vec!["g"],
            aggs: vec![(NaiveAgg::Sum, col("v"), "s")],
        };
        let series = agg.run().unwrap();
        assert_eq!(series.len(), 10);
        // Uniform data: every linearly-scaled estimate is near-exact.
        let truth =
            exact_answer(&src, None, &[], &["g"], &[(NaiveAgg::Sum, col("v"), "s")]).unwrap();
        for est in &series {
            for r in 0..est.frame.num_rows() {
                let e = est.frame.value(r, "s").unwrap().as_f64().unwrap();
                let t = truth.value(r, "s").unwrap().as_f64().unwrap();
                assert!((e - t).abs() / t < 0.2, "estimate {e} vs {t}");
            }
        }
        // Final estimate is exact (t = 1, no scaling).
        let last = &series.last().unwrap().frame;
        assert_eq!(last, &truth);
    }

    #[test]
    fn predicate_and_projection_paths() {
        let src = source(100, 4);
        let agg = ProgressiveAgg {
            source: &src,
            predicate: Some(col("v").gt(lit_f64(2.0))),
            projections: vec![(col("v").mul(lit_f64(2.0)), "v2"), (col("g"), "g")],
            group_keys: vec![],
            aggs: vec![(NaiveAgg::Sum, col("v2"), "s")],
        };
        let series = agg.run().unwrap();
        assert!(
            series
                .last()
                .unwrap()
                .frame
                .value(0, "s")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
        assert!((series.last().unwrap().t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relative_error_helper() {
        let schema = Arc::new(Schema::new(vec![Field::mutable("x", DataType::Float64)]));
        let e = DataFrame::new(schema.clone(), vec![Column::from_f64(vec![110.0])]).unwrap();
        let t = DataFrame::new(schema, vec![Column::from_f64(vec![100.0])]).unwrap();
        assert!((relative_error(&e, &t, "x") - 0.1).abs() < 1e-12);
        assert!(relative_error(&e, &t, "missing").is_nan());
    }
}

//! Aggregate specifications and mergeable intrinsic states (§4.2–§4.3,
//! Table 2) plus the aggregate estimators of §5.3.
//!
//! Each aggregate keeps an **intrinsic representation** that merges with a
//! key-based `⊕` (count/sum: addition; min/max: extremum; count-distinct:
//! the exact value set, per the paper's footnote 3; avg/var: `(count, sum,
//! sum-of-squares)`), and a **finalizer** that turns raw partials into
//! unbiased extrinsic estimates via growth-based scaling.

use crate::Result;
use std::collections::HashSet;
use std::sync::Arc;
use wake_data::column::ColumnData;
use wake_data::hash::canonical_f64_bits;
use wake_data::{Column, DataError, DataType, Value};
use wake_expr::{lit_i64, Expr};
use wake_stats::distinct::{distinct_variance, estimate_distinct};
use wake_stats::Moments;

/// Supported aggregation functions (§3.1 `agg := sum | count | avg | ...`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `count(*)` — rows per group.
    CountStar,
    /// `count(expr)` — non-null values per group.
    Count,
    Sum,
    Avg,
    /// `sum(value·weight)/sum(weight)` — the paper's weighted average
    /// (Eq. 5); covers ratio-of-sums queries like TPC-H Q14.
    WeightedAvg,
    Min,
    Max,
    CountDistinct,
    Var,
    Stddev,
    /// `quantile(expr, q)` — k-th order statistic (§5.3 "Order Statistics:
    /// min, max, median, quantiles"); `q` lives in [`AggSpec::quantile`].
    Quantile,
}

/// One aggregate column: function, input expression(s), output name.
#[derive(Debug, Clone)]
pub struct AggSpec {
    pub func: AggFunc,
    /// Input expression (ignored for `CountStar`).
    pub expr: Expr,
    /// Weight expression for `WeightedAvg`.
    pub weight: Option<Expr>,
    /// Quantile rank in [0, 1] for `Quantile` (0.5 = median).
    pub quantile: Option<f64>,
    pub alias: String,
}

impl AggSpec {
    pub fn count_star(alias: &str) -> Self {
        AggSpec {
            func: AggFunc::CountStar,
            expr: lit_i64(1),
            weight: None,
            quantile: None,
            alias: alias.into(),
        }
    }

    pub fn count(expr: Expr, alias: &str) -> Self {
        AggSpec {
            func: AggFunc::Count,
            expr,
            weight: None,
            quantile: None,
            alias: alias.into(),
        }
    }

    pub fn sum(expr: Expr, alias: &str) -> Self {
        AggSpec {
            func: AggFunc::Sum,
            expr,
            weight: None,
            quantile: None,
            alias: alias.into(),
        }
    }

    pub fn avg(expr: Expr, alias: &str) -> Self {
        AggSpec {
            func: AggFunc::Avg,
            expr,
            weight: None,
            quantile: None,
            alias: alias.into(),
        }
    }

    pub fn weighted_avg(value: Expr, weight: Expr, alias: &str) -> Self {
        AggSpec {
            func: AggFunc::WeightedAvg,
            expr: value,
            weight: Some(weight),
            quantile: None,
            alias: alias.into(),
        }
    }

    pub fn min(expr: Expr, alias: &str) -> Self {
        AggSpec {
            func: AggFunc::Min,
            expr,
            weight: None,
            quantile: None,
            alias: alias.into(),
        }
    }

    pub fn max(expr: Expr, alias: &str) -> Self {
        AggSpec {
            func: AggFunc::Max,
            expr,
            weight: None,
            quantile: None,
            alias: alias.into(),
        }
    }

    pub fn count_distinct(expr: Expr, alias: &str) -> Self {
        AggSpec {
            func: AggFunc::CountDistinct,
            expr,
            weight: None,
            quantile: None,
            alias: alias.into(),
        }
    }

    pub fn var(expr: Expr, alias: &str) -> Self {
        AggSpec {
            func: AggFunc::Var,
            expr,
            weight: None,
            quantile: None,
            alias: alias.into(),
        }
    }

    pub fn stddev(expr: Expr, alias: &str) -> Self {
        AggSpec {
            func: AggFunc::Stddev,
            expr,
            weight: None,
            quantile: None,
            alias: alias.into(),
        }
    }

    /// `q`-th sample quantile, `q` in [0, 1].
    pub fn quantile(expr: Expr, q: f64, alias: &str) -> Self {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        AggSpec {
            func: AggFunc::Quantile,
            expr,
            weight: None,
            quantile: Some(q),
            alias: alias.into(),
        }
    }

    /// Median (the 0.5 quantile).
    pub fn median(expr: Expr, alias: &str) -> Self {
        Self::quantile(expr, 0.5, alias)
    }

    /// Output type of the aggregate column. Estimates of counts/sums can be
    /// fractional mid-query, so everything numeric is `Float64`; min/max
    /// keep the input type.
    pub fn output_type(&self, input_type: DataType) -> DataType {
        match self.func {
            AggFunc::Min | AggFunc::Max => input_type,
            _ => DataType::Float64,
        }
    }

    /// Build the empty intrinsic state for this aggregate.
    pub fn new_state(&self) -> AggState {
        match self.func {
            AggFunc::CountStar | AggFunc::Count => AggState::Count { n: 0.0 },
            AggFunc::Sum => AggState::Sum { m: Moments::new() },
            AggFunc::Avg => AggState::Avg { m: Moments::new() },
            AggFunc::WeightedAvg => AggState::WeightedAvg {
                m_wv: Moments::new(),
                m_w: Moments::new(),
            },
            AggFunc::Min => AggState::Extreme {
                best: None,
                second: None,
                is_min: true,
            },
            AggFunc::Max => AggState::Extreme {
                best: None,
                second: None,
                is_min: false,
            },
            AggFunc::CountDistinct => AggState::Distinct {
                set: DistinctSet::default(),
                n: 0.0,
            },
            AggFunc::Var => AggState::Dispersion {
                m: Moments::new(),
                stddev: false,
            },
            AggFunc::Stddev => AggState::Dispersion {
                m: Moments::new(),
                stddev: true,
            },
            AggFunc::Quantile => AggState::Sample {
                values: Vec::new(),
                q: self.quantile.expect("quantile spec carries q"),
            },
        }
    }
}

/// Growth context passed to finalizers: the shared scale `t^{-w}` plus the
/// terms needed for variance propagation (§6).
#[derive(Debug, Clone, Copy)]
pub struct ScaleContext {
    /// `t^{-w}`; 1.0 once the input is complete.
    pub scale: f64,
    /// Current progress `t`.
    pub t: f64,
    /// Variance of the fitted growth power `w`.
    pub w_variance: f64,
}

impl ScaleContext {
    /// No-scaling context (complete inputs / exact mode).
    pub fn exact() -> Self {
        ScaleContext {
            scale: 1.0,
            t: 1.0,
            w_variance: 0.0,
        }
    }

    /// `Var(x̂)` for a group with extrapolated cardinality `xhat` (Eq. 10's
    /// inner term): `(x̂ · ln(1/t))² · Var(w)`.
    pub fn cardinality_variance(&self, xhat: f64) -> f64 {
        if self.t >= 1.0 || self.t <= 0.0 {
            return 0.0;
        }
        let ln_inv_t = (1.0 / self.t).ln();
        (xhat * ln_inv_t).powi(2) * self.w_variance
    }
}

/// Typed storage for count-distinct's exact value set.
///
/// The old representation was a `HashSet<Value>` — one boxed `Value`
/// (with its enum tag and potential `Arc` bump) per distinct cell, and
/// the one aggregate state without a columnar observation kernel. The
/// typed variants store the *equivalence class* each `Value` hashes to:
/// numerics by their canonical `f64` bit pattern (so `Int(3)`,
/// `Float(3.0)`, and `Date(3)` coalesce exactly as `Value` equality
/// does), strings by their `Arc<str>`, booleans as two bits. `Mixed` is
/// the semantic backstop for heterogeneous inputs (unreachable through
/// typed columns, which fix one dtype per expression) and keeps the set
/// `Value`-faithful even then.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum DistinctSet {
    #[default]
    Empty,
    /// Canonical f64 bit patterns (`-0.0` → `0.0`, all NaNs unify).
    Num(HashSet<u64>),
    Str(HashSet<Arc<str>>),
    Bool {
        seen_true: bool,
        seen_false: bool,
    },
    /// Mixed-type fallback with exact `Value` semantics.
    Mixed(HashSet<Value>),
}

impl DistinctSet {
    pub fn len(&self) -> usize {
        match self {
            DistinctSet::Empty => 0,
            DistinctSet::Num(s) => s.len(),
            DistinctSet::Str(s) => s.len(),
            DistinctSet::Bool {
                seen_true,
                seen_false,
            } => *seen_true as usize + *seen_false as usize,
            DistinctSet::Mixed(s) => s.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a numeric observation (already widened to f64).
    #[inline]
    pub fn insert_num(&mut self, x: f64) {
        match self {
            DistinctSet::Empty => {
                let mut s = HashSet::new();
                s.insert(canonical_f64_bits(x));
                *self = DistinctSet::Num(s);
            }
            DistinctSet::Num(s) => {
                s.insert(canonical_f64_bits(x));
            }
            _ => self.insert_mixed(Value::Float(x)),
        }
    }

    #[inline]
    pub fn insert_str(&mut self, s: &Arc<str>) {
        match self {
            DistinctSet::Empty => {
                let mut set = HashSet::new();
                set.insert(s.clone());
                *self = DistinctSet::Str(set);
            }
            DistinctSet::Str(set) => {
                set.insert(s.clone());
            }
            _ => self.insert_mixed(Value::Str(s.clone())),
        }
    }

    #[inline]
    pub fn insert_bool(&mut self, b: bool) {
        match self {
            DistinctSet::Empty => {
                *self = DistinctSet::Bool {
                    seen_true: b,
                    seen_false: !b,
                }
            }
            DistinctSet::Bool {
                seen_true,
                seen_false,
            } => {
                *seen_true |= b;
                *seen_false |= !b;
            }
            _ => self.insert_mixed(Value::Bool(b)),
        }
    }

    /// Dynamic-value insert (the non-columnar path). Nulls are skipped by
    /// the caller.
    pub fn insert_value(&mut self, v: &Value) {
        match v {
            Value::Null => {}
            Value::Int(x) => self.insert_num(*x as f64),
            Value::Float(x) => self.insert_num(*x),
            Value::Date(x) => self.insert_num(*x as f64),
            Value::Bool(b) => self.insert_bool(*b),
            Value::Str(s) => self.insert_str(s),
        }
    }

    /// Demote to the `Mixed` representation and insert `v`. Re-materialises
    /// numerics as `Float` values — the same `Value` equivalence class, so
    /// the set's cardinality is unchanged.
    fn insert_mixed(&mut self, v: Value) {
        let mut set: HashSet<Value> = match std::mem::take(self) {
            DistinctSet::Empty => HashSet::new(),
            DistinctSet::Num(s) => s
                .into_iter()
                .map(|b| Value::Float(f64::from_bits(b)))
                .collect(),
            DistinctSet::Str(s) => s.into_iter().map(Value::Str).collect(),
            DistinctSet::Bool {
                seen_true,
                seen_false,
            } => {
                let mut m = HashSet::new();
                if seen_true {
                    m.insert(Value::Bool(true));
                }
                if seen_false {
                    m.insert(Value::Bool(false));
                }
                m
            }
            DistinctSet::Mixed(s) => s,
        };
        set.insert(v);
        *self = DistinctSet::Mixed(set);
    }

    /// Set union (the `⊕` merge of count-distinct partials).
    pub fn merge(&mut self, other: &DistinctSet) {
        match (&mut *self, other) {
            (_, DistinctSet::Empty) => {}
            (DistinctSet::Empty, o) => *self = o.clone(),
            (DistinctSet::Num(a), DistinctSet::Num(b)) => a.extend(b.iter().copied()),
            (DistinctSet::Str(a), DistinctSet::Str(b)) => a.extend(b.iter().cloned()),
            (
                DistinctSet::Bool {
                    seen_true,
                    seen_false,
                },
                DistinctSet::Bool {
                    seen_true: ot,
                    seen_false: of,
                },
            ) => {
                *seen_true |= ot;
                *seen_false |= of;
            }
            (_, o) => {
                for v in o.values() {
                    self.insert_mixed(v);
                }
            }
        }
    }

    /// The set's contents as `Value`s (serde and the mixed fallback).
    pub fn values(&self) -> Vec<Value> {
        match self {
            DistinctSet::Empty => Vec::new(),
            DistinctSet::Num(s) => s.iter().map(|&b| Value::Float(f64::from_bits(b))).collect(),
            DistinctSet::Str(s) => s.iter().cloned().map(Value::Str).collect(),
            DistinctSet::Bool {
                seen_true,
                seen_false,
            } => [
                seen_true.then_some(Value::Bool(true)),
                seen_false.then_some(Value::Bool(false)),
            ]
            .into_iter()
            .flatten()
            .collect(),
            DistinctSet::Mixed(s) => s.iter().cloned().collect(),
        }
    }

    /// Approximate heap bytes (peak-memory accounting).
    pub fn byte_size(&self) -> usize {
        match self {
            DistinctSet::Empty => 0,
            DistinctSet::Num(s) => s.len() * 16,
            DistinctSet::Str(s) => s.iter().map(|v| v.len() + 32).sum(),
            DistinctSet::Bool { .. } => 2,
            DistinctSet::Mixed(s) => s.len() * 48,
        }
    }
}

/// A finalized aggregate cell: point estimate plus (optional) variance.
#[derive(Debug, Clone, PartialEq)]
pub struct AggOutput {
    pub value: Value,
    /// Variance of the estimator (None when not meaningful, e.g. strings).
    pub variance: Option<f64>,
}

/// Mergeable per-group intrinsic state (Table 2 "intrinsic repr.").
#[derive(Debug, Clone)]
pub enum AggState {
    /// count / count(*): a scalar count, merged by addition.
    Count { n: f64 },
    /// sum: `(count, sum, sum-of-squares)` so CIs get a CLT variance.
    Sum { m: Moments },
    /// avg: sum/count by key (Table 2), stored as moments.
    Avg { m: Moments },
    /// weighted avg: moments of `w·v` and of `w`.
    WeightedAvg { m_wv: Moments, m_w: Moments },
    /// min/max: the current extremum plus runner-up (runner-up feeds a
    /// spacing-based variance heuristic; the paper fits a GEV — we use the
    /// extreme-value spacing as a cheap stand-in and document it).
    Extreme {
        best: Option<Value>,
        second: Option<Value>,
        is_min: bool,
    },
    /// count-distinct: the exact value set (paper §2.3 footnote 3: exact
    /// sets, not sketches) plus the non-null observation count. The set is
    /// typed ([`DistinctSet`]), so observation is columnar and the state
    /// is spillable like every other aggregate.
    Distinct { set: DistinctSet, n: f64 },
    /// var/stddev: `(count, sum, sum-of-squares)`.
    Dispersion { m: Moments, stddev: bool },
    /// quantiles/median: the exact sample, merged by concatenation (the
    /// same exact-state policy as count-distinct; §5.5 explains why
    /// KDE/eCDF reconstructions are rejected as too costly — holding the
    /// sample and reading one order statistic is the cheap alternative).
    Sample { values: Vec<f64>, q: f64 },
}

/// Min/max update shared by the per-`Value` and columnar observation paths:
/// track the extremum plus the runner-up (the runner-up feeds the spacing
/// variance heuristic).
#[inline]
pub(crate) fn observe_extreme(
    best: &mut Option<Value>,
    second: &mut Option<Value>,
    is_min: bool,
    value: &Value,
) {
    if value.is_null() {
        return;
    }
    let better = |a: &Value, b: &Value| if is_min { a < b } else { a > b };
    match best {
        None => *best = Some(value.clone()),
        Some(b) if better(value, b) => {
            *second = best.take();
            *best = Some(value.clone());
        }
        Some(_) => match second {
            None => *second = Some(value.clone()),
            Some(s) if better(value, s) => *second = Some(value.clone()),
            _ => {}
        },
    }
}

/// Borrowed numeric payload of a column: the typed view the columnar
/// observation kernels iterate, with `Int64`/`Date` sharing storage.
#[derive(Clone, Copy)]
pub(crate) enum NumView<'a> {
    Int(&'a [i64]),
    Float(&'a [f64]),
}

impl<'a> NumView<'a> {
    /// Numeric view plus the column's declared type (needed to rebuild
    /// exact typed `Value`s for min/max). `None` for Bool/Utf8 columns.
    pub(crate) fn of(col: &'a Column) -> Option<(NumView<'a>, DataType)> {
        match col.data() {
            ColumnData::Int64(v) => Some((NumView::Int(v), DataType::Int64)),
            ColumnData::Date(v) => Some((NumView::Int(v), DataType::Date)),
            ColumnData::Float64(v) => Some((NumView::Float(v), DataType::Float64)),
            _ => None,
        }
    }

    #[inline]
    pub(crate) fn get(self, i: usize) -> f64 {
        match self {
            NumView::Int(v) => v[i] as f64,
            NumView::Float(v) => v[i],
        }
    }

    /// Exact typed cell (no i64 → f64 round-trip for integers).
    #[inline]
    pub(crate) fn value(self, i: usize, dtype: DataType) -> Value {
        match (self, dtype) {
            (NumView::Int(v), DataType::Date) => Value::Date(v[i]),
            (NumView::Int(v), _) => Value::Int(v[i]),
            (NumView::Float(v), _) => Value::Float(v[i]),
        }
    }
}

impl AggState {
    /// Fold one input cell into the state. `value` is the evaluated
    /// aggregate expression; `weight` only applies to `WeightedAvg`.
    pub fn observe(&mut self, value: &Value, weight: Option<&Value>) {
        match self {
            AggState::Count { n } => {
                if !value.is_null() {
                    *n += 1.0;
                }
            }
            AggState::Sum { m } | AggState::Avg { m } | AggState::Dispersion { m, .. } => {
                if let Some(x) = value.as_f64() {
                    m.observe(x);
                }
            }
            AggState::WeightedAvg { m_wv, m_w } => {
                let w = weight.and_then(Value::as_f64);
                if let (Some(v), Some(w)) = (value.as_f64(), w) {
                    m_wv.observe(w * v);
                    m_w.observe(w);
                }
            }
            AggState::Extreme {
                best,
                second,
                is_min,
            } => observe_extreme(best, second, *is_min, value),
            AggState::Distinct { set, n } => {
                if !value.is_null() {
                    set.insert_value(value);
                    *n += 1.0;
                }
            }
            AggState::Sample { values, .. } => {
                if let Some(x) = value.as_f64() {
                    values.push(x);
                }
            }
        }
    }

    /// Columnar observation (vectorized `observe`): fold *every* row of
    /// `col` into this one state with a per-type kernel over the raw
    /// `ColumnData` slice and validity mask — no `Value` is materialised
    /// for count/sum/mean/var/quantile kernels, and min/max build one only
    /// per candidate row. Semantically identical to calling
    /// [`observe`](Self::observe) per row in row order (same float
    /// accumulation order).
    ///
    /// Returns `false` when no kernel covers this state/column pairing
    /// (non-numeric inputs, count-distinct's exact value set) — the caller
    /// must then fall back to the per-row path.
    pub fn observe_column(&mut self, col: &Column, weight: Option<&Column>) -> bool {
        // Count-distinct observes through the typed set, which covers
        // every column type (including Bool/Utf8, where NumView bails).
        if let AggState::Distinct { set, n } = self {
            observe_distinct_column(set, n, col);
            return true;
        }
        let Some((view, dtype)) = NumView::of(col) else {
            return false;
        };
        let valid = col.validity();
        let n = col.len();
        macro_rules! each {
            (|$i:ident| $body:expr) => {
                match valid {
                    None => {
                        for $i in 0..n {
                            $body
                        }
                    }
                    Some(mask) => {
                        for $i in 0..n {
                            if mask[$i] {
                                $body
                            }
                        }
                    }
                }
            };
        }
        match self {
            AggState::Count { n: count } => {
                // Adding 1.0 per valid row is exact; bulk-add the count.
                *count += match valid {
                    None => n as f64,
                    Some(mask) => mask.iter().filter(|&&b| b).count() as f64,
                };
            }
            AggState::Sum { m } | AggState::Avg { m } | AggState::Dispersion { m, .. } => {
                each!(|i| m.observe(view.get(i)))
            }
            AggState::Sample { values, .. } => each!(|i| values.push(view.get(i))),
            AggState::Extreme {
                best,
                second,
                is_min,
            } => {
                let is_min = *is_min;
                each!(|i| observe_extreme(best, second, is_min, &view.value(i, dtype)))
            }
            AggState::WeightedAvg { m_wv, m_w } => {
                let Some((wview, _)) = weight.and_then(NumView::of) else {
                    return false;
                };
                let wvalid = weight.expect("checked above").validity();
                for i in 0..n {
                    let ok = valid.is_none_or(|m| m[i]) && wvalid.is_none_or(|m| m[i]);
                    if ok {
                        let w = wview.get(i);
                        m_wv.observe(w * view.get(i));
                        m_w.observe(w);
                    }
                }
            }
            AggState::Distinct { .. } => unreachable!("handled above"),
        }
        true
    }

    /// Key-based merge `⊕` (§2.2): combine another partial for the same key.
    pub fn merge(&mut self, other: &AggState) -> Result<()> {
        match (self, other) {
            (AggState::Count { n }, AggState::Count { n: o }) => *n += o,
            (AggState::Sum { m }, AggState::Sum { m: o })
            | (AggState::Avg { m }, AggState::Avg { m: o })
            | (AggState::Dispersion { m, .. }, AggState::Dispersion { m: o, .. }) => m.merge(o),
            (AggState::WeightedAvg { m_wv, m_w }, AggState::WeightedAvg { m_wv: owv, m_w: ow }) => {
                m_wv.merge(owv);
                m_w.merge(ow);
            }
            (
                AggState::Extreme {
                    best,
                    second,
                    is_min,
                },
                AggState::Extreme {
                    best: ob,
                    second: os,
                    ..
                },
            ) => {
                let is_min = *is_min;
                for v in [ob, os].into_iter().flatten() {
                    // Re-observe the other side's extremes.
                    let mut tmp = AggState::Extreme {
                        best: best.take(),
                        second: second.take(),
                        is_min,
                    };
                    tmp.observe(v, None);
                    if let AggState::Extreme {
                        best: nb,
                        second: ns,
                        ..
                    } = tmp
                    {
                        *best = nb;
                        *second = ns;
                    }
                }
            }
            (AggState::Distinct { set, n }, AggState::Distinct { set: os, n: on }) => {
                set.merge(os);
                *n += on;
            }
            (AggState::Sample { values, .. }, AggState::Sample { values: ov, .. }) => {
                values.extend_from_slice(ov);
            }
            (a, b) => {
                return Err(DataError::Invalid(format!(
                    "cannot merge mismatched aggregate states {a:?} vs {b:?}"
                )))
            }
        }
        Ok(())
    }

    /// Produce the extrinsic estimate (§5.3). `group_rows` is the group
    /// cardinality `xᵢ,ₜ`; `ctx` carries the shared growth scale.
    ///
    /// Once the input is complete (`t = 1`) the estimate is the exact
    /// finite-population answer, so the reported variance collapses to 0 —
    /// the convergence property extends to the uncertainty itself.
    pub fn finalize(&self, group_rows: f64, ctx: &ScaleContext) -> AggOutput {
        let mut out = self.finalize_inner(group_rows, ctx);
        if ctx.t >= 1.0 {
            out.variance = out.variance.map(|_| 0.0);
        }
        out
    }

    fn finalize_inner(&self, group_rows: f64, ctx: &ScaleContext) -> AggOutput {
        match self {
            AggState::Count { n } => {
                // f_count: scale the raw count by t^{-w} (x̂ = x / t^w).
                let est = n * ctx.scale;
                AggOutput {
                    value: Value::Float(est),
                    variance: Some(ctx.cardinality_variance(est)),
                }
            }
            AggState::Sum { m } => {
                // f_sum = (y / x) · x̂ = y · t^{-w}  (Eq. against §5.3).
                let est = m.sum * ctx.scale;
                // Eq. 11: Var = (Var(y)·x̂² + Var(x̂)·y²) / x².
                let variance = if m.count > 0.0 {
                    let xhat = m.count * ctx.scale;
                    let var_y = m.variance_of_sum();
                    let var_xhat = ctx.cardinality_variance(xhat);
                    Some((var_y * xhat * xhat + var_xhat * m.sum * m.sum) / (m.count * m.count))
                } else {
                    Some(0.0)
                };
                AggOutput {
                    value: Value::Float(est),
                    variance,
                }
            }
            AggState::Avg { m } => {
                // Eq. 5: scaling cancels; the estimator is the identity.
                if m.count == 0.0 {
                    return AggOutput {
                        value: Value::Null,
                        variance: None,
                    };
                }
                AggOutput {
                    value: Value::Float(m.mean()),
                    variance: Some(m.variance_of_mean()),
                }
            }
            AggState::WeightedAvg { m_wv, m_w } => {
                if m_w.sum == 0.0 {
                    return AggOutput {
                        value: Value::Null,
                        variance: None,
                    };
                }
                let est = m_wv.sum / m_w.sum;
                // Eq. 14: relative variances of numerator and denominator.
                let n = m_wv.count.max(1.0);
                let rel_num = if m_wv.sum != 0.0 {
                    m_wv.variance_of_sum() / (m_wv.sum * m_wv.sum)
                } else {
                    0.0
                };
                let rel_den = if m_w.sum != 0.0 {
                    m_w.variance_of_sum() / (m_w.sum * m_w.sum)
                } else {
                    0.0
                };
                let _ = n;
                AggOutput {
                    value: Value::Float(est),
                    variance: Some(est * est * (rel_num + rel_den)),
                }
            }
            AggState::Extreme { best, second, .. } => {
                // f_order: latest extremum (§5.3 "Order Statistics").
                let value = best.clone().unwrap_or(Value::Null);
                // Spacing heuristic: squared gap between the two most
                // extreme observations, shrinking as the group fills in.
                let variance = match (ctx.t < 1.0, best, second) {
                    (true, Some(b), Some(s)) => match (b.as_f64(), s.as_f64()) {
                        (Some(b), Some(s)) => Some((b - s) * (b - s)),
                        _ => None,
                    },
                    _ => Some(0.0),
                };
                AggOutput { value, variance }
            }
            AggState::Distinct { set, n } => {
                let y = set.len() as f64;
                let x = *n;
                let xhat = x * ctx.scale;
                let est = estimate_distinct(y, x, xhat);
                let var_xhat = ctx.cardinality_variance(xhat);
                // Var(y) of the seen-distinct count: crude binomial bound.
                let var_y = if ctx.t < 1.0 {
                    y.max(1.0) * (1.0 - ctx.t)
                } else {
                    0.0
                };
                let variance = Some(distinct_variance(var_y, var_xhat, x, xhat, est));
                AggOutput {
                    value: Value::Float(est),
                    variance,
                }
            }
            AggState::Sample { values, q } => {
                if values.is_empty() {
                    return AggOutput {
                        value: Value::Null,
                        variance: None,
                    };
                }
                let mut sorted = values.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN quantile input"));
                let n = sorted.len();
                let rank = (q * (n - 1) as f64).round() as usize;
                let est = sorted[rank.min(n - 1)];
                // Rank-based CI half-width: the q-th sample quantile lies
                // within ±sqrt(q(1-q)n) ranks of the population quantile
                // w.h.p. (van der Vaart §21.2); map that rank band to value
                // space and report its squared half-width as the variance.
                let h = ((q * (1.0 - q) * n as f64).sqrt().ceil() as usize).max(1);
                let lo = sorted[rank.saturating_sub(h)];
                let hi = sorted[(rank + h).min(n - 1)];
                let half = (hi - lo) / 2.0;
                AggOutput {
                    value: Value::Float(est),
                    variance: Some(half * half),
                }
            }
            AggState::Dispersion { m, stddev } => {
                if m.count < 2.0 {
                    return AggOutput {
                        value: Value::Null,
                        variance: None,
                    };
                }
                let s2 = m.sample_variance();
                let value = if *stddev { s2.sqrt() } else { s2 };
                // Asymptotic Var(s²) ≈ 2σ⁴ / (n − 1) (normal approximation).
                let var_s2 = 2.0 * s2 * s2 / (m.count - 1.0);
                let variance = if *stddev {
                    // Delta method: Var(s) ≈ Var(s²) / (4 s²).
                    if s2 > 0.0 {
                        Some(var_s2 / (4.0 * s2))
                    } else {
                        Some(0.0)
                    }
                } else {
                    Some(var_s2)
                };
                AggOutput {
                    value: Value::Float(value),
                    variance,
                }
            }
        }
        .with_group(group_rows)
    }
}

impl AggOutput {
    // `group_rows` is currently only used for debug assertions; keep the
    // hook so future estimators (e.g. quantiles) can use it.
    fn with_group(self, _group_rows: f64) -> AggOutput {
        self
    }
}

/// Columnar count-distinct observation: one typed pass over the column,
/// inserting into the group's [`DistinctSet`]. Covers every column type
/// (the one aggregate `NumView` could not serve).
pub(crate) fn observe_distinct_column(set: &mut DistinctSet, n: &mut f64, col: &Column) {
    macro_rules! kernel {
        ($values:expr, $insert:expr) => {
            match col.validity() {
                None => {
                    for v in $values {
                        $insert(set, v);
                    }
                    *n += col.len() as f64;
                }
                Some(mask) => {
                    for (i, v) in $values.enumerate() {
                        if mask[i] {
                            $insert(set, v);
                            *n += 1.0;
                        }
                    }
                }
            }
        };
    }
    match col.data() {
        ColumnData::Int64(v) | ColumnData::Date(v) => {
            kernel!(v.iter(), |s: &mut DistinctSet, x: &i64| s
                .insert_num(*x as f64))
        }
        ColumnData::Float64(v) => {
            kernel!(v.iter(), |s: &mut DistinctSet, x: &f64| s.insert_num(*x))
        }
        ColumnData::Bool(v) => {
            kernel!(v.iter(), |s: &mut DistinctSet, x: &bool| s.insert_bool(*x))
        }
        ColumnData::Utf8(v) => {
            kernel!(v.iter(), |s: &mut DistinctSet, x: &Arc<str>| s
                .insert_str(x))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wake_expr::col;

    fn obs(state: &mut AggState, xs: &[f64]) {
        for &x in xs {
            state.observe(&Value::Float(x), None);
        }
    }

    #[test]
    fn sum_scaling_and_convergence() {
        let spec = AggSpec::sum(col("x"), "s");
        let mut st = spec.new_state();
        obs(&mut st, &[1.0, 2.0, 3.0]);
        // Halfway through a linear scan (w = 1): scale = 2.
        let ctx = ScaleContext {
            scale: 2.0,
            t: 0.5,
            w_variance: 0.0,
        };
        let out = st.finalize(3.0, &ctx);
        assert_eq!(out.value, Value::Float(12.0));
        // At completion the raw value is exact.
        let out = st.finalize(3.0, &ScaleContext::exact());
        assert_eq!(out.value, Value::Float(6.0));
    }

    #[test]
    fn merge_equals_single_stream_for_all_funcs() {
        let specs = [
            AggSpec::count_star("c"),
            AggSpec::count(col("x"), "c2"),
            AggSpec::sum(col("x"), "s"),
            AggSpec::avg(col("x"), "a"),
            AggSpec::min(col("x"), "mn"),
            AggSpec::max(col("x"), "mx"),
            AggSpec::count_distinct(col("x"), "cd"),
            AggSpec::var(col("x"), "v"),
            AggSpec::stddev(col("x"), "sd"),
        ];
        let xs = [5.0, 3.0, 3.0, 8.0, 1.0, 9.0, 9.0];
        for spec in specs {
            let mut whole = spec.new_state();
            obs(&mut whole, &xs);
            let mut left = spec.new_state();
            obs(&mut left, &xs[..3]);
            let mut right = spec.new_state();
            obs(&mut right, &xs[3..]);
            left.merge(&right).unwrap();
            let ctx = ScaleContext::exact();
            assert_eq!(
                left.finalize(7.0, &ctx).value,
                whole.finalize(7.0, &ctx).value,
                "func {:?}",
                spec.func
            );
        }
    }

    #[test]
    fn avg_is_scale_free() {
        let spec = AggSpec::avg(col("x"), "a");
        let mut st = spec.new_state();
        obs(&mut st, &[2.0, 4.0]);
        let scaled = st.finalize(
            2.0,
            &ScaleContext {
                scale: 4.0,
                t: 0.25,
                w_variance: 0.1,
            },
        );
        assert_eq!(scaled.value, Value::Float(3.0));
    }

    #[test]
    fn weighted_avg_matches_ratio_of_sums() {
        let spec = AggSpec::weighted_avg(col("v"), col("w"), "wa");
        let mut st = spec.new_state();
        st.observe(&Value::Float(10.0), Some(&Value::Float(1.0)));
        st.observe(&Value::Float(20.0), Some(&Value::Float(3.0)));
        let out = st.finalize(2.0, &ScaleContext::exact());
        // (10·1 + 20·3) / (1 + 3) = 17.5
        assert_eq!(out.value, Value::Float(17.5));
    }

    #[test]
    fn count_distinct_extrapolates_and_converges() {
        let spec = AggSpec::count_distinct(col("x"), "cd");
        let mut st = spec.new_state();
        // 50 observations, 10 distinct values (5 copies each seen).
        for i in 0..50 {
            st.observe(&Value::Int(i % 10), None);
        }
        // Group expected to double: estimate should be >= seen distinct.
        let ctx = ScaleContext {
            scale: 2.0,
            t: 0.5,
            w_variance: 0.0,
        };
        let est = st.finalize(50.0, &ctx);
        let v = est.value.as_f64().unwrap();
        assert!((10.0..=100.0).contains(&v));
        // Complete: exact distinct count.
        let exact = st.finalize(50.0, &ScaleContext::exact());
        assert_eq!(exact.value, Value::Float(10.0));
    }

    #[test]
    fn extreme_tracks_best_and_second() {
        let spec = AggSpec::max(col("x"), "mx");
        let mut st = spec.new_state();
        obs(&mut st, &[3.0, 9.0, 7.0]);
        let out = st.finalize(
            3.0,
            &ScaleContext {
                scale: 2.0,
                t: 0.5,
                w_variance: 0.0,
            },
        );
        assert_eq!(out.value, Value::Float(9.0));
        // Spacing heuristic: (9 − 7)².
        assert_eq!(out.variance, Some(4.0));
        // Min over strings works and reports no numeric variance.
        let mut st = AggSpec::min(col("s"), "mn").new_state();
        st.observe(&Value::str("pear"), None);
        st.observe(&Value::str("apple"), None);
        let out = st.finalize(2.0, &ScaleContext::exact());
        assert_eq!(out.value, Value::str("apple"));
    }

    #[test]
    fn nulls_are_skipped() {
        let mut st = AggSpec::count(col("x"), "c").new_state();
        st.observe(&Value::Null, None);
        st.observe(&Value::Int(1), None);
        let out = st.finalize(2.0, &ScaleContext::exact());
        assert_eq!(out.value, Value::Float(1.0));
        let mut st = AggSpec::avg(col("x"), "a").new_state();
        st.observe(&Value::Null, None);
        assert_eq!(st.finalize(1.0, &ScaleContext::exact()).value, Value::Null);
    }

    #[test]
    fn dispersion_values() {
        let mut st = AggSpec::var(col("x"), "v").new_state();
        obs(&mut st, &[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        let v = st
            .finalize(8.0, &ScaleContext::exact())
            .value
            .as_f64()
            .unwrap();
        assert!((v - 32.0 / 7.0).abs() < 1e-9);
        let mut st = AggSpec::stddev(col("x"), "sd").new_state();
        obs(&mut st, &[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        let sd = st
            .finalize(8.0, &ScaleContext::exact())
            .value
            .as_f64()
            .unwrap();
        assert!((sd - (32.0f64 / 7.0).sqrt()).abs() < 1e-9);
        // Single observation: undefined.
        let mut st = AggSpec::var(col("x"), "v").new_state();
        obs(&mut st, &[1.0]);
        assert_eq!(st.finalize(1.0, &ScaleContext::exact()).value, Value::Null);
    }

    #[test]
    fn observe_column_matches_per_row_observe() {
        // Per-type columnar kernels must agree exactly with the Value path
        // (same accumulation order), across dtypes, nulls, and weights.
        let int_col = Column::from_values(
            DataType::Int64,
            &[
                Value::Int(5),
                Value::Null,
                Value::Int(-3),
                Value::Int(i64::MAX),
                Value::Int(8),
            ],
        )
        .unwrap();
        let float_col = Column::from_f64(vec![1.5, -2.0, 0.0, 7.25, 3.0]);
        let date_col = Column::from_dates(vec![10, 20, 5, 40, 30]);
        let weight = Column::from_values(
            DataType::Float64,
            &[
                Value::Float(1.0),
                Value::Float(2.0),
                Value::Null,
                Value::Float(0.5),
                Value::Float(4.0),
            ],
        )
        .unwrap();
        let specs = [
            AggSpec::count_star("c"),
            AggSpec::count(col("x"), "c2"),
            AggSpec::sum(col("x"), "s"),
            AggSpec::avg(col("x"), "a"),
            AggSpec::min(col("x"), "mn"),
            AggSpec::max(col("x"), "mx"),
            AggSpec::var(col("x"), "v"),
            AggSpec::stddev(col("x"), "sd"),
            AggSpec::median(col("x"), "med"),
            AggSpec::weighted_avg(col("x"), col("w"), "wa"),
        ];
        for data in [&int_col, &float_col, &date_col] {
            for spec in &specs {
                let w = matches!(spec.func, AggFunc::WeightedAvg).then_some(&weight);
                let mut fast = spec.new_state();
                assert!(
                    fast.observe_column(data, w),
                    "{:?} over {:?} must have a kernel",
                    spec.func,
                    data.data_type()
                );
                let mut slow = spec.new_state();
                for i in 0..data.len() {
                    let wv = w.map(|c| c.value(i));
                    slow.observe(&data.value(i), wv.as_ref());
                }
                let ctx = ScaleContext::exact();
                assert_eq!(
                    fast.finalize(5.0, &ctx),
                    slow.finalize(5.0, &ctx),
                    "func {:?} dtype {:?}",
                    spec.func,
                    data.data_type()
                );
            }
        }
        // Exact i64 min/max: no f64 round-trip may distinguish MAX/MAX-1.
        let big = Column::from_i64(vec![i64::MAX, i64::MAX - 1]);
        let mut st = AggSpec::max(col("x"), "mx").new_state();
        assert!(st.observe_column(&big, None));
        assert_eq!(
            st.finalize(2.0, &ScaleContext::exact()).value,
            Value::Int(i64::MAX)
        );
        // Still no kernel for min/max over strings (Value path remains).
        let s = Column::from_str_iter(["a", "b"]);
        assert!(!AggSpec::min(col("x"), "m")
            .new_state()
            .observe_column(&s, None));
    }

    #[test]
    fn distinct_kernel_covers_every_column_type() {
        // The typed set gives count-distinct the columnar observation the
        // other aggregates already had; the kernel must agree with the
        // per-row Value path for every dtype, nulls included.
        let cols = [
            Column::from_values(
                DataType::Int64,
                &[
                    Value::Int(3),
                    Value::Null,
                    Value::Int(3),
                    Value::Int(-1),
                    Value::Int(3),
                ],
            )
            .unwrap(),
            Column::from_f64(vec![1.5, -0.0, 0.0, f64::NAN, 1.5]),
            Column::from_dates(vec![7, 7, 8, 9, 7]),
            Column::from_bool(vec![true, true, false, true, false]),
            Column::from_values(
                DataType::Utf8,
                &[
                    Value::str("a"),
                    Value::str(""),
                    Value::Null,
                    Value::str("a"),
                    Value::str("b"),
                ],
            )
            .unwrap(),
        ];
        for data in &cols {
            let mut fast = AggSpec::count_distinct(col("x"), "cd").new_state();
            assert!(
                fast.observe_column(data, None),
                "count-distinct must have a kernel for {:?}",
                data.data_type()
            );
            let mut slow = AggSpec::count_distinct(col("x"), "cd").new_state();
            for i in 0..data.len() {
                slow.observe(&data.value(i), None);
            }
            let ctx = ScaleContext::exact();
            assert_eq!(
                fast.finalize(5.0, &ctx),
                slow.finalize(5.0, &ctx),
                "dtype {:?}",
                data.data_type()
            );
        }
    }

    #[test]
    fn distinct_set_semantics_match_value_equality() {
        let mut s = DistinctSet::default();
        assert!(s.is_empty());
        // Int(3), Float(3.0), Date(3) are one Value-equivalence class.
        s.insert_value(&Value::Int(3));
        s.insert_value(&Value::Float(3.0));
        s.insert_value(&Value::Date(3));
        assert_eq!(s.len(), 1);
        // -0.0 == 0.0, NaN unifies.
        s.insert_num(-0.0);
        s.insert_num(0.0);
        s.insert_num(f64::NAN);
        s.insert_num(-f64::NAN);
        assert_eq!(s.len(), 3);
        // Mixed-type fallback preserves cardinality exactly.
        s.insert_value(&Value::str("x"));
        assert!(matches!(s, DistinctSet::Mixed(_)));
        assert_eq!(s.len(), 4);
        s.insert_value(&Value::Int(3)); // already present pre-demotion
        assert_eq!(s.len(), 4);
        // Merge = set union across representations.
        let mut a = DistinctSet::default();
        a.insert_str(&std::sync::Arc::from("p"));
        let mut b = DistinctSet::default();
        b.insert_str(&std::sync::Arc::from("p"));
        b.insert_str(&std::sync::Arc::from("q"));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        let mut bools = DistinctSet::default();
        bools.insert_bool(true);
        bools.insert_bool(true);
        assert_eq!(bools.len(), 1);
        bools.insert_bool(false);
        assert_eq!(bools.len(), 2);
        assert!(bools.byte_size() > 0 && a.byte_size() > 0);
    }

    #[test]
    fn merge_type_mismatch_errors() {
        let mut a = AggSpec::sum(col("x"), "s").new_state();
        let b = AggSpec::count_star("c").new_state();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn quantiles_and_median() {
        let spec = AggSpec::median(col("x"), "med");
        let mut st = spec.new_state();
        obs(&mut st, &[5.0, 1.0, 9.0, 3.0, 7.0]);
        let out = st.finalize(5.0, &ScaleContext::exact());
        assert_eq!(out.value, Value::Float(5.0));
        // p90 of 1..=10.
        let spec = AggSpec::quantile(col("x"), 0.9, "p90");
        let mut st = spec.new_state();
        obs(&mut st, &(1..=10).map(f64::from).collect::<Vec<_>>());
        let out = st.finalize(
            10.0,
            &ScaleContext {
                scale: 2.0,
                t: 0.5,
                w_variance: 0.0,
            },
        );
        let v = out.value.as_f64().unwrap();
        assert!((9.0..=10.0).contains(&v), "p90 {v}");
        assert!(out.variance.unwrap() >= 0.0);
        // Merge = concatenation: split/merge equals single stream.
        let xs: Vec<f64> = (0..21).map(|i| (i * 7 % 13) as f64).collect();
        let mut whole = AggSpec::median(col("x"), "m").new_state();
        obs(&mut whole, &xs);
        let mut a = AggSpec::median(col("x"), "m").new_state();
        obs(&mut a, &xs[..8]);
        let mut b = AggSpec::median(col("x"), "m").new_state();
        obs(&mut b, &xs[8..]);
        a.merge(&b).unwrap();
        let ctx = ScaleContext::exact();
        assert_eq!(
            a.finalize(21.0, &ctx).value,
            whole.finalize(21.0, &ctx).value
        );
        // Empty sample -> NULL.
        let st = AggSpec::median(col("x"), "m").new_state();
        assert_eq!(st.finalize(0.0, &ctx).value, Value::Null);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn quantile_rank_validated() {
        AggSpec::quantile(col("x"), 1.5, "bad");
    }

    #[test]
    fn count_variance_grows_with_w_uncertainty() {
        let mut st = AggSpec::count_star("c").new_state();
        for _ in 0..10 {
            st.observe(&Value::Int(1), None);
        }
        let lo = st
            .finalize(
                10.0,
                &ScaleContext {
                    scale: 2.0,
                    t: 0.5,
                    w_variance: 0.01,
                },
            )
            .variance
            .unwrap();
        let hi = st
            .finalize(
                10.0,
                &ScaleContext {
                    scale: 2.0,
                    t: 0.5,
                    w_variance: 0.09,
                },
            )
            .variance
            .unwrap();
        assert!(hi > lo && lo > 0.0);
        // Complete input: zero variance.
        let done = st.finalize(10.0, &ScaleContext::exact()).variance.unwrap();
        assert_eq!(done, 0.0);
    }
}

//! Logical query graphs — the paper's *Query Service* (§7.1).
//!
//! Users express a query as a DAG of nodes (reader, map, filter, join,
//! aggregate, sort/limit) connected by edges carrying edf streams; Fig 6
//! shows the graph for the running TPC-H Q18 example. Graphs are built
//! incrementally (`read`/`map`/.../`sink`) and handed to an executor from
//! `wake-engine`, which instantiates one [`crate::ops::Operator`] per node.

use crate::agg::AggSpec;
use crate::meta::EdfMeta;
pub use crate::ops::join::JoinKind;
pub use crate::ops::sharded::{ShardMode, ShardPlan};
use crate::ops::{AggOp, FilterOp, JoinOp, MapOp, Operator, SortOp};
use crate::update::UpdateKind;
use crate::Result;
use std::collections::HashMap;
use std::sync::Arc;
use wake_data::{DataError, Schema, TableSource};
use wake_expr::Expr;

/// Intra-operator partition parallelism: how many hash-range shards a
/// hash-keyed node (join, group-by) splits its state into. See
/// [`crate::ops::sharded`] for the execution model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One shard per available core (`std::thread::available_parallelism`).
    #[default]
    Auto,
    /// Exactly `n` shards; `Fixed(1)` reproduces the unsharded
    /// single-threaded operator code path byte for byte.
    Fixed(usize),
}

impl Parallelism {
    /// Resolve to a concrete shard count (≥ 1).
    pub fn shards(self) -> usize {
        match self {
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Parallelism::Fixed(n) => n.max(1),
        }
    }
}

/// Node handle within a [`QueryGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// The operation a node performs.
#[derive(Clone)]
pub enum NodeKind {
    /// Base-table reader (source node, no inputs).
    Read { source: Arc<dyn TableSource> },
    /// Projection with named expressions.
    Map { exprs: Vec<(Expr, String)> },
    /// Selection by predicate.
    Filter { predicate: Expr },
    /// Binary join (inputs: [left, right]).
    Join {
        left_on: Vec<String>,
        right_on: Vec<String>,
        kind: JoinKind,
    },
    /// Group-by aggregation; `with_variance` adds `{alias}__var` columns;
    /// `fixed_growth` pins the growth power (ablation of §5.2's fit).
    Agg {
        keys: Vec<String>,
        specs: Vec<AggSpec>,
        with_variance: bool,
        fixed_growth: Option<f64>,
    },
    /// Order-by / limit (Case 3).
    Sort {
        by: Vec<String>,
        descending: Vec<bool>,
        limit: Option<usize>,
    },
}

impl std::fmt::Debug for NodeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeKind::Read { source } => write!(f, "Read({})", source.meta().name),
            NodeKind::Map { exprs } => write!(f, "Map({} exprs)", exprs.len()),
            NodeKind::Filter { predicate } => write!(f, "Filter({predicate})"),
            NodeKind::Join {
                left_on,
                right_on,
                kind,
            } => {
                write!(f, "Join({kind:?} on {left_on:?}={right_on:?})")
            }
            NodeKind::Agg { keys, specs, .. } => {
                write!(f, "Agg(by {keys:?}, {} specs)", specs.len())
            }
            NodeKind::Sort { by, limit, .. } => write!(f, "Sort(by {by:?}, limit {limit:?})"),
        }
    }
}

/// One node: an operation plus its input edges.
#[derive(Debug, Clone)]
pub struct Node {
    pub kind: NodeKind,
    pub inputs: Vec<NodeId>,
}

/// A DAG of edf operations with one designated sink.
#[derive(Debug, Default, Clone)]
pub struct QueryGraph {
    nodes: Vec<Node>,
    sink: Option<NodeId>,
    /// Default intra-operator parallelism for hash-keyed nodes.
    parallelism: Parallelism,
    /// Per-node overrides of `parallelism`.
    node_parallelism: HashMap<usize, Parallelism>,
}

impl QueryGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the default partition parallelism for every hash-keyed node
    /// (join, group-by). Default: [`Parallelism::Auto`] (available cores).
    pub fn set_parallelism(&mut self, p: Parallelism) {
        self.parallelism = p;
    }

    /// Builder form of [`Self::set_parallelism`].
    pub fn with_parallelism(mut self, p: Parallelism) -> Self {
        self.set_parallelism(p);
        self
    }

    /// Override parallelism for one node (wins over the graph default).
    pub fn set_node_parallelism(&mut self, node: NodeId, p: Parallelism) {
        assert!(node.0 < self.nodes.len(), "node {} does not exist", node.0);
        self.node_parallelism.insert(node.0, p);
    }

    /// Resolved shard count for `node`: the per-node override or the graph
    /// default for shardable kinds (join, group-by); 1 for everything else.
    pub fn shards_for(&self, node: NodeId) -> usize {
        if !self.is_shardable(node) {
            return 1;
        }
        self.parallelism_of(node).shards()
    }

    /// The (unresolved) parallelism request for `node`: its override if
    /// set, else the graph default.
    pub fn parallelism_of(&self, node: NodeId) -> Parallelism {
        self.node_parallelism
            .get(&node.0)
            .copied()
            .unwrap_or(self.parallelism)
    }

    /// Whether `node`'s operator honours partition parallelism.
    pub fn is_shardable(&self, node: NodeId) -> bool {
        matches!(
            self.nodes[node.0].kind,
            NodeKind::Join { .. } | NodeKind::Agg { .. }
        )
    }

    /// Number of hash-keyed (shardable) nodes — executors that run all
    /// nodes concurrently divide the `Auto` core budget by this so a
    /// multi-join plan does not oversubscribe the machine.
    pub fn shardable_node_count(&self) -> usize {
        (0..self.nodes.len())
            .filter(|&i| self.is_shardable(NodeId(i)))
            .count()
    }

    fn push(&mut self, kind: NodeKind, inputs: Vec<NodeId>) -> NodeId {
        for i in &inputs {
            assert!(i.0 < self.nodes.len(), "input node {} does not exist", i.0);
        }
        self.nodes.push(Node { kind, inputs });
        NodeId(self.nodes.len() - 1)
    }

    /// Add a base-table reader.
    pub fn read(&mut self, source: impl TableSource + 'static) -> NodeId {
        self.push(
            NodeKind::Read {
                source: Arc::new(source),
            },
            Vec::new(),
        )
    }

    /// Add a reader from a shared source.
    pub fn read_arc(&mut self, source: Arc<dyn TableSource>) -> NodeId {
        self.push(NodeKind::Read { source }, Vec::new())
    }

    /// Projection.
    pub fn map(&mut self, input: NodeId, exprs: Vec<(Expr, &str)>) -> NodeId {
        let exprs = exprs.into_iter().map(|(e, n)| (e, n.to_string())).collect();
        self.push(NodeKind::Map { exprs }, vec![input])
    }

    /// Selection.
    pub fn filter(&mut self, input: NodeId, predicate: Expr) -> NodeId {
        self.push(NodeKind::Filter { predicate }, vec![input])
    }

    /// Inner join on equal column lists.
    pub fn join(
        &mut self,
        left: NodeId,
        right: NodeId,
        left_on: Vec<&str>,
        right_on: Vec<&str>,
    ) -> NodeId {
        self.join_kind(left, right, left_on, right_on, JoinKind::Inner)
    }

    /// Join with an explicit kind (inner/left/semi/anti).
    pub fn join_kind(
        &mut self,
        left: NodeId,
        right: NodeId,
        left_on: Vec<&str>,
        right_on: Vec<&str>,
        kind: JoinKind,
    ) -> NodeId {
        self.push(
            NodeKind::Join {
                left_on: left_on.into_iter().map(String::from).collect(),
                right_on: right_on.into_iter().map(String::from).collect(),
                kind,
            },
            vec![left, right],
        )
    }

    /// Group-by aggregation.
    pub fn agg(&mut self, input: NodeId, keys: Vec<&str>, specs: Vec<AggSpec>) -> NodeId {
        self.push(
            NodeKind::Agg {
                keys: keys.into_iter().map(String::from).collect(),
                specs,
                with_variance: false,
                fixed_growth: None,
            },
            vec![input],
        )
    }

    /// Aggregation that also emits `{alias}__var` variance columns (§6).
    pub fn agg_with_ci(&mut self, input: NodeId, keys: Vec<&str>, specs: Vec<AggSpec>) -> NodeId {
        self.push(
            NodeKind::Agg {
                keys: keys.into_iter().map(String::from).collect(),
                specs,
                with_variance: true,
                fixed_growth: None,
            },
            vec![input],
        )
    }

    /// Aggregation with the growth power pinned to `w` instead of fitted
    /// (ablation: `w = 1.0` reproduces linear-only scaling, §5.5).
    pub fn agg_fixed_growth(
        &mut self,
        input: NodeId,
        keys: Vec<&str>,
        specs: Vec<AggSpec>,
        w: f64,
    ) -> NodeId {
        self.push(
            NodeKind::Agg {
                keys: keys.into_iter().map(String::from).collect(),
                specs,
                with_variance: false,
                fixed_growth: Some(w),
            },
            vec![input],
        )
    }

    /// Order-by with per-key direction and optional limit.
    pub fn sort(
        &mut self,
        input: NodeId,
        by: Vec<&str>,
        descending: Vec<bool>,
        limit: Option<usize>,
    ) -> NodeId {
        self.push(
            NodeKind::Sort {
                by: by.into_iter().map(String::from).collect(),
                descending,
                limit,
            },
            vec![input],
        )
    }

    /// First `n` rows in arrival order.
    pub fn limit(&mut self, input: NodeId, n: usize) -> NodeId {
        self.push(
            NodeKind::Sort {
                by: Vec::new(),
                descending: Vec::new(),
                limit: Some(n),
            },
            vec![input],
        )
    }

    /// Swap the source of a reader node (planner passes use this to
    /// install pruned/reordered scan views). Panics if `node` is not a
    /// `Read` — planner passes only rewrite what [`Self::sources`] lists.
    pub fn replace_source(&mut self, node: NodeId, source: Arc<dyn TableSource>) {
        match &mut self.nodes[node.0].kind {
            NodeKind::Read { source: slot } => *slot = source,
            other => panic!("replace_source on non-read node {other:?}"),
        }
    }

    /// Mark the query output node.
    pub fn sink(&mut self, node: NodeId) {
        assert!(node.0 < self.nodes.len());
        self.sink = Some(node);
    }

    /// Drop every node that is not an ancestor of the sink, remapping
    /// node ids. A session's graph accumulates all edfs ever built on it,
    /// and executors instantiate — and sources scan for — every node in
    /// the graph they are handed; pruning unreachable chains keeps a
    /// query from paying I/O for tables other edfs read. No-op without a
    /// sink.
    pub fn retain_reachable(&mut self) {
        let Some(sink) = self.sink else { return };
        let mut keep = vec![false; self.nodes.len()];
        let mut stack = vec![sink.0];
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut keep[i], true) {
                continue;
            }
            stack.extend(self.nodes[i].inputs.iter().map(|n| n.0));
        }
        if keep.iter().all(|&k| k) {
            return;
        }
        let mut remap = vec![usize::MAX; self.nodes.len()];
        let mut next = 0;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                remap[i] = next;
                next += 1;
            }
        }
        self.nodes = std::mem::take(&mut self.nodes)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| keep[*i])
            .map(|(_, mut n)| {
                for input in &mut n.inputs {
                    *input = NodeId(remap[input.0]);
                }
                n
            })
            .collect();
        self.node_parallelism = std::mem::take(&mut self.node_parallelism)
            .into_iter()
            .filter(|(i, _)| keep[*i])
            .map(|(i, p)| (remap[i], p))
            .collect();
        self.sink = Some(NodeId(remap[sink.0]));
    }

    pub fn sink_id(&self) -> Option<NodeId> {
        self.sink
    }

    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// A stable human-readable label for `id` — the `NodeKind` Debug
    /// rendering (e.g. `Read(lineitem)`, `Agg(by ["k"], 2 specs)`).
    /// Observability keys per-node profiles by these; they depend only
    /// on the node's own definition, never on scheduling.
    pub fn node_label(&self, id: NodeId) -> String {
        format!("{:?}", self.nodes[id.0].kind)
    }

    /// All node labels plus input edges as plain indices — the plan
    /// skeleton observability captures before an executor consumes the
    /// graph.
    pub fn plan_skeleton(&self) -> (Vec<String>, Vec<Vec<usize>>) {
        let labels = (0..self.nodes.len())
            .map(|i| self.node_label(NodeId(i)))
            .collect();
        let inputs = self
            .nodes
            .iter()
            .map(|n| n.inputs.iter().map(|i| i.0).collect())
            .collect();
        (labels, inputs)
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of all reader nodes.
    pub fn sources(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Read { .. }))
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// Downstream consumers of each node (node -> (consumer, port)).
    pub fn consumers(&self) -> Vec<Vec<(NodeId, usize)>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for (port, input) in n.inputs.iter().enumerate() {
                out[input.0].push((NodeId(i), port));
            }
        }
        out
    }

    /// Resolve the edf metadata of every node (validating the whole graph).
    pub fn resolve_metas(&self) -> Result<Vec<EdfMeta>> {
        let mut metas: Vec<EdfMeta> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let meta = match &node.kind {
                NodeKind::Read { source } => read_meta(source.as_ref()),
                _ => {
                    let inputs: Vec<&EdfMeta> = node.inputs.iter().map(|i| &metas[i.0]).collect();
                    build_operator(&node.kind, &inputs)?.meta().clone()
                }
            };
            metas.push(meta);
        }
        Ok(metas)
    }
}

/// Metadata of the edf a reader produces: constant attributes, delta mode,
/// keys from table metadata (§4.4).
pub fn read_meta(source: &dyn TableSource) -> EdfMeta {
    let m = source.meta();
    EdfMeta::new(m.schema.clone(), m.primary_key.clone(), UpdateKind::Delta)
        .with_clustering(m.clustering_key.clone())
}

/// Instantiate the operator for a non-source node on the serial (single
/// shard) plan. See [`build_operator_with`] for partition parallelism.
pub fn build_operator(kind: &NodeKind, inputs: &[&EdfMeta]) -> Result<Box<dyn Operator>> {
    build_operator_with(kind, inputs, ShardPlan::serial())
}

/// [`build_operator_spilling`] without memory governance (unbounded).
pub fn build_operator_with(
    kind: &NodeKind,
    inputs: &[&EdfMeta],
    plan: ShardPlan,
) -> Result<Box<dyn Operator>> {
    build_operator_spilling(kind, inputs, plan, None)
}

/// Instantiate the operator for a non-source node with an explicit shard
/// plan and (optionally) a memory-governance plan. Only hash-keyed
/// operators (join, group-by) honour `plan.shards > 1` and the spill
/// plan; `ShardPlan::serial()` + `None` reproduces the unsharded,
/// unbounded code path exactly.
pub fn build_operator_spilling(
    kind: &NodeKind,
    inputs: &[&EdfMeta],
    plan: ShardPlan,
    spill: Option<&wake_store::SpillPlan>,
) -> Result<Box<dyn Operator>> {
    let need = |n: usize| -> Result<()> {
        if inputs.len() != n {
            return Err(DataError::Invalid(format!(
                "operator expects {n} inputs, got {}",
                inputs.len()
            )));
        }
        Ok(())
    };
    Ok(match kind {
        NodeKind::Read { .. } => {
            return Err(DataError::Invalid(
                "read nodes are driven by the executor".into(),
            ))
        }
        NodeKind::Map { exprs } => {
            need(1)?;
            Box::new(MapOp::new(inputs[0], exprs.clone())?)
        }
        NodeKind::Filter { predicate } => {
            need(1)?;
            Box::new(FilterOp::new(inputs[0], predicate.clone())?)
        }
        NodeKind::Join {
            left_on,
            right_on,
            kind,
        } => {
            need(2)?;
            Box::new(
                JoinOp::new(
                    inputs[0],
                    inputs[1],
                    left_on.clone(),
                    right_on.clone(),
                    *kind,
                )?
                .with_spill(spill.cloned())
                .with_shards(plan),
            )
        }
        NodeKind::Agg {
            keys,
            specs,
            with_variance,
            fixed_growth,
        } => {
            need(1)?;
            Box::new(
                AggOp::new(inputs[0], keys.clone(), specs.clone(), *with_variance)?
                    .with_fixed_growth(*fixed_growth)
                    .with_spill(spill.cloned())
                    .with_shards(plan),
            )
        }
        NodeKind::Sort {
            by,
            descending,
            limit,
        } => {
            need(1)?;
            Box::new(SortOp::new(
                inputs[0],
                by.clone(),
                descending.clone(),
                *limit,
            )?)
        }
    })
}

/// An empty schema placeholder (used by tests).
pub fn empty_schema() -> Arc<Schema> {
    Schema::empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use wake_data::{Column, DataFrame, DataType, Field, MemorySource, Value};
    use wake_expr::{col, lit_f64};

    fn source() -> MemorySource {
        let schema = StdArc::new(Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Float64),
        ]));
        let df = DataFrame::new(
            schema,
            vec![
                Column::from_i64(vec![1, 2, 3]),
                Column::from_f64(vec![1.0, 2.0, 3.0]),
            ],
        )
        .unwrap();
        MemorySource::from_frame("t", &df, 2, vec!["k".into()], Some(vec!["k".into()])).unwrap()
    }

    #[test]
    fn retain_reachable_drops_orphan_chains_and_remaps() {
        let mut g = QueryGraph::new();
        let orphan = g.read(source()); // another edf's reader — not this query
        let _orphan_filter = g.filter(orphan, col("v").gt(lit_f64(0.0)));
        let r = g.read(source());
        let f = g.filter(r, col("v").gt(lit_f64(1.0)));
        let a = g.agg(f, vec![], vec![AggSpec::sum(col("v"), "s")]);
        g.set_node_parallelism(orphan, Parallelism::Fixed(7));
        g.set_node_parallelism(a, Parallelism::Fixed(2));
        g.sink(a);
        g.retain_reachable();
        assert_eq!(g.len(), 3, "only the sink's ancestors survive");
        assert_eq!(g.sources().len(), 1, "the orphan reader is gone");
        let sink = g.sink_id().unwrap();
        assert_eq!(g.parallelism_of(sink), Parallelism::Fixed(2));
        // Remapped input edges still resolve end to end.
        g.resolve_metas().unwrap();
        // Idempotent on an already-minimal graph.
        let before = g.len();
        g.retain_reachable();
        assert_eq!(g.len(), before);
    }

    #[test]
    fn builds_and_resolves_pipeline() {
        let mut g = QueryGraph::new();
        let r = g.read(source());
        let f = g.filter(r, col("v").gt(lit_f64(1.0)));
        let a = g.agg(f, vec![], vec![AggSpec::sum(col("v"), "s")]);
        let s = g.sort(a, vec!["s"], vec![true], Some(10));
        g.sink(s);
        assert_eq!(g.len(), 4);
        assert_eq!(g.sources(), vec![r]);
        let metas = g.resolve_metas().unwrap();
        assert_eq!(metas[r.0].kind, UpdateKind::Delta);
        assert!(metas[r.0].clustered_on(&["k".into()]));
        assert_eq!(metas[f.0].kind, UpdateKind::Delta);
        assert_eq!(metas[a.0].kind, UpdateKind::Snapshot);
        assert!(metas[a.0].schema.contains("s"));
        assert_eq!(metas[s.0].kind, UpdateKind::Snapshot);
        let consumers = g.consumers();
        assert_eq!(consumers[r.0], vec![(f, 0)]);
        assert_eq!(consumers[a.0], vec![(s, 0)]);
    }

    #[test]
    fn deep_graph_is_closed_under_ops() {
        // agg -> filter -> agg: the closure property in action.
        let mut g = QueryGraph::new();
        let r = g.read(source());
        let a1 = g.agg(r, vec!["k"], vec![AggSpec::sum(col("v"), "sv")]);
        let f = g.filter(a1, col("sv").gt(lit_f64(0.0)));
        let a2 = g.agg(f, vec![], vec![AggSpec::avg(col("sv"), "avg_sv")]);
        g.sink(a2);
        let metas = g.resolve_metas().unwrap();
        // Mutable attribute from the first agg propagates to the filter...
        assert!(metas[f.0].schema.field("sv").unwrap().mutable);
        // ...and the second agg consumes a snapshot-mode edf.
        assert_eq!(metas[a2.0].kind, UpdateKind::Snapshot);
    }

    #[test]
    fn invalid_graphs_error_at_resolve() {
        let mut g = QueryGraph::new();
        let r = g.read(source());
        g.filter(r, col("missing").gt(lit_f64(0.0)));
        assert!(g.resolve_metas().is_err());
    }

    #[test]
    fn join_validation_happens_at_resolve() {
        let mut g = QueryGraph::new();
        let a = g.read(source());
        let b = g.read(source());
        g.join(a, b, vec!["k"], vec!["k"]);
        let metas = g.resolve_metas().unwrap();
        assert_eq!(
            metas[2].schema.names(),
            vec!["k", "v", "k_right", "v_right"]
        );
        let _ = Value::Int(0);
    }

    #[test]
    #[should_panic]
    fn bad_input_id_panics_at_build() {
        let mut g = QueryGraph::new();
        g.filter(NodeId(5), col("x").gt(lit_f64(0.0)));
    }
}

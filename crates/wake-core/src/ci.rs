//! Confidence-interval support for Deep OLA (§6).
//!
//! When an aggregation operator is built with `with_ci(confidence)`, its
//! output frames carry one extra `Float64` column per aggregate named
//! `{alias}__var` holding the estimator's variance. Downstream consumers
//! (or the user) derive distribution-free Chebyshev intervals from it.
//!
//! Variance propagation (Eq. 9) is applied inside the aggregate
//! finalizers (`agg.rs`: Eqs. 10, 11, 14, 19); a deep aggregation whose
//! *input* already carries `{col}__var` columns folds those variances into
//! its own sums (variance of a sum of independent estimates is the sum of
//! the variances — the diagonal of Eq. 9 for a linear map).

use wake_data::{DataError, DataFrame};
use wake_stats::ConfidenceInterval;

/// Name of the variance column that accompanies aggregate `alias`.
pub fn variance_column(alias: &str) -> String {
    format!("{alias}__var")
}

/// True if `name` is a variance column produced by [`variance_column`].
pub fn is_variance_column(name: &str) -> bool {
    name.ends_with("__var")
}

/// The aggregate alias a variance column belongs to.
pub fn variance_target(name: &str) -> Option<&str> {
    name.strip_suffix("__var")
}

/// Extract the Chebyshev CI for `alias` at `row` of a CI-enabled frame.
pub fn interval_at(
    frame: &DataFrame,
    row: usize,
    alias: &str,
    confidence: f64,
) -> crate::Result<ConfidenceInterval> {
    let est = frame
        .value(row, alias)?
        .as_f64()
        .ok_or_else(|| DataError::Invalid(format!("{alias} is not numeric")))?;
    let var = frame
        .value(row, &variance_column(alias))?
        .as_f64()
        .unwrap_or(0.0);
    Ok(ConfidenceInterval::from_variance(est, var, confidence))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wake_data::{Column, DataType, Field, Schema};

    #[test]
    fn naming_roundtrip() {
        assert_eq!(variance_column("revenue"), "revenue__var");
        assert!(is_variance_column("revenue__var"));
        assert!(!is_variance_column("revenue"));
        assert_eq!(variance_target("revenue__var"), Some("revenue"));
        assert_eq!(variance_target("revenue"), None);
    }

    #[test]
    fn interval_extraction() {
        let schema = Arc::new(Schema::new(vec![
            Field::mutable("s", DataType::Float64),
            Field::mutable("s__var", DataType::Float64),
        ]));
        let df = DataFrame::new(
            schema,
            vec![Column::from_f64(vec![10.0]), Column::from_f64(vec![4.0])],
        )
        .unwrap();
        let ci = interval_at(&df, 0, "s", 0.75).unwrap();
        assert!((ci.lower - 6.0).abs() < 1e-12);
        assert!((ci.upper - 14.0).abs() < 1e-12);
        assert!(interval_at(&df, 0, "missing", 0.75).is_err());
    }
}

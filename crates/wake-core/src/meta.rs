//! Static edf metadata: schema, keys, and stream kind.
//!
//! Every operator declares at build time what its output edf looks like:
//! the (fixed) schema — the paper's *consistency* property — the primary
//! key used for key-based merges, the clustering key if the physical row
//! order is meaningful, and whether the stream is delta- or
//! snapshot-mode (§4.3 "Primary Key" / "Clustering Key").

use crate::update::UpdateKind;
use std::sync::Arc;
use wake_data::Schema;

/// Compile-time description of one edf.
#[derive(Debug, Clone)]
pub struct EdfMeta {
    pub schema: Arc<Schema>,
    /// Constant attributes uniquely identifying tuples (§3.1). Empty for
    /// edfs without a meaningful key (e.g. pre-aggregation fact streams
    /// where the key is inherited but unused).
    pub primary_key: Vec<String>,
    /// Attributes governing physical ordering/partition placement, when the
    /// producing operator preserves one.
    pub clustering_key: Option<Vec<String>>,
    /// Whether downstream sees deltas or snapshots.
    pub kind: UpdateKind,
}

impl EdfMeta {
    pub fn new(schema: Arc<Schema>, primary_key: Vec<String>, kind: UpdateKind) -> Self {
        EdfMeta {
            schema,
            primary_key,
            clustering_key: None,
            kind,
        }
    }

    pub fn with_clustering(mut self, clustering_key: Option<Vec<String>>) -> Self {
        self.clustering_key = clustering_key;
        self
    }

    /// Whether this edf is clustered on exactly the given attribute list.
    pub fn clustered_on(&self, keys: &[String]) -> bool {
        self.clustering_key.as_deref() == Some(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wake_data::{DataType, Field};

    #[test]
    fn clustering_checks() {
        let schema = Arc::new(Schema::new(vec![Field::new("k", DataType::Int64)]));
        let meta = EdfMeta::new(schema, vec!["k".into()], UpdateKind::Delta)
            .with_clustering(Some(vec!["k".into()]));
        assert!(meta.clustered_on(&["k".into()]));
        assert!(!meta.clustered_on(&["x".into()]));
        let unclustered = EdfMeta {
            clustering_key: None,
            ..meta
        };
        assert!(!unclustered.clustered_on(&["k".into()]));
    }
}

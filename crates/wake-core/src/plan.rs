//! Planner passes over a [`QueryGraph`] — run by the engine just before
//! execution.
//!
//! Two source-rewriting passes support the persistent-table scan path:
//!
//! - [`push_down_predicates`]: for each `Filter` sitting directly on a
//!   `Read`, lift the conjunctive range/equality predicates the zone
//!   pruner can decide (via `wake_expr::extract_predicates`) and ask the
//!   source for a pruned view (`TableSource::pruned`). The `FilterOp`
//!   **always stays in the plan** — pruning only skips I/O for zones that
//!   provably contain no qualifying row, so results are unchanged and the
//!   residual filter handles straddling zones.
//! - [`reorder_scans`]: replace each source with a seeded random-order
//!   view (`TableSource::reordered`) — the paper's shuffled-input regime,
//!   which keeps early estimates representative when on-disk order is
//!   correlated with values.
//!
//! Both passes are no-ops on sources that do not implement the hooks
//! (in-memory, CSV, single-file WCF), so plans over non-segment tables are
//! untouched byte for byte.

use crate::graph::{NodeKind, QueryGraph};
use wake_expr::extract_predicates;

/// Lift prunable predicates from filters into their scans. Only rewrites a
/// `Read` whose *sole* consumer is the filter (a shared scan must serve
/// every consumer the full table). Returns the number of sources replaced.
pub fn push_down_predicates(graph: &mut QueryGraph) -> usize {
    let consumers = graph.consumers();
    let mut replacements = Vec::new();
    for node in graph.nodes() {
        let NodeKind::Filter { predicate } = &node.kind else {
            continue;
        };
        let input = node.inputs[0];
        let NodeKind::Read { source } = &graph.node(input).kind else {
            continue;
        };
        if consumers[input.0].len() != 1 {
            continue;
        }
        let preds = extract_predicates(predicate);
        if preds.is_empty() {
            continue;
        }
        if let Some(pruned) = source.pruned(&preds) {
            replacements.push((input, pruned));
        }
    }
    let n = replacements.len();
    for (id, source) in replacements {
        graph.replace_source(id, source);
    }
    n
}

/// Replace every reorder-capable source with a seeded random zone order.
/// Each source mixes its node id into the seed so two scans of the same
/// table in one plan get distinct (but still deterministic) orders.
/// Returns the number of sources replaced.
pub fn reorder_scans(graph: &mut QueryGraph, seed: u64) -> usize {
    let mut replacements = Vec::new();
    for id in graph.sources() {
        let NodeKind::Read { source } = &graph.node(id).kind else {
            continue;
        };
        let mixed = seed ^ (id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        if let Some(reordered) = source.reordered(mixed) {
            replacements.push((id, reordered));
        }
    }
    let n = replacements.len();
    for (id, source) in replacements {
        graph.replace_source(id, source);
    }
    n
}

/// Aggregate the scan metrics of every source in the graph (zeros when no
/// source tracks any).
pub fn scan_metrics(graph: &QueryGraph) -> wake_data::ScanMetrics {
    let mut total = wake_data::ScanMetrics::default();
    for id in graph.sources() {
        if let NodeKind::Read { source } = &graph.node(id).kind {
            if let Some(m) = source.scan_metrics() {
                total.merge(&m);
            }
        }
    }
    total
}

/// The sources of a graph as shared handles, for executors that need to
/// read scan metrics after the graph itself is gone (threaded streams).
pub fn source_handles(graph: &QueryGraph) -> Vec<std::sync::Arc<dyn wake_data::TableSource>> {
    graph
        .sources()
        .iter()
        .filter_map(|&id| match &graph.node(id).kind {
            NodeKind::Read { source } => Some(source.clone()),
            _ => None,
        })
        .collect()
}

/// Source handles keyed by their read node's id, for per-node scan
/// attribution in query profiles.
pub fn source_handles_by_node(
    graph: &QueryGraph,
) -> Vec<(usize, std::sync::Arc<dyn wake_data::TableSource>)> {
    graph
        .sources()
        .iter()
        .filter_map(|&id| match &graph.node(id).kind {
            NodeKind::Read { source } => Some((id.0, source.clone())),
            _ => None,
        })
        .collect()
}

/// Sum scan metrics over source handles captured by [`source_handles`].
pub fn scan_metrics_of(
    sources: &[std::sync::Arc<dyn wake_data::TableSource>],
) -> wake_data::ScanMetrics {
    let mut total = wake_data::ScanMetrics::default();
    for s in sources {
        if let Some(m) = s.scan_metrics() {
            total.merge(&m);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wake_data::scan::{ColPredicate, ScanMetrics};
    use wake_data::source::{TableMeta, TableSource};
    use wake_data::{Column, DataFrame, DataType, Field, MemorySource, Schema};
    use wake_expr::{col, lit_i64};

    fn mem_source() -> MemorySource {
        let schema = Arc::new(Schema::new(vec![Field::new("k", DataType::Int64)]));
        let df = DataFrame::new(schema, vec![Column::from_i64((0..10).collect())]).unwrap();
        MemorySource::from_frame("t", &df, 5, vec!["k".into()], None).unwrap()
    }

    /// A source that records the predicates pushed into it.
    #[derive(Debug)]
    struct Recording {
        inner: MemorySource,
        pruned_calls: std::sync::Mutex<Vec<Vec<ColPredicate>>>,
    }

    impl TableSource for Recording {
        fn meta(&self) -> &TableMeta {
            self.inner.meta()
        }
        fn partition(&self, i: usize) -> wake_data::Result<DataFrame> {
            self.inner.partition(i)
        }
        fn pruned(&self, preds: &[ColPredicate]) -> Option<Arc<dyn TableSource>> {
            self.pruned_calls.lock().unwrap().push(preds.to_vec());
            Some(Arc::new(self.inner.clone()))
        }
        fn reordered(&self, _seed: u64) -> Option<Arc<dyn TableSource>> {
            Some(Arc::new(self.inner.clone()))
        }
        fn scan_metrics(&self) -> Option<ScanMetrics> {
            Some(ScanMetrics {
                zones_total: 2,
                ..Default::default()
            })
        }
    }

    #[test]
    fn pushdown_rewrites_filter_over_read_only() {
        let rec = Arc::new(Recording {
            inner: mem_source(),
            pruned_calls: Default::default(),
        });
        let mut g = QueryGraph::new();
        let r = g.read_arc(rec.clone());
        let f = g.filter(r, col("k").lt(lit_i64(5)));
        g.sink(f);
        assert_eq!(push_down_predicates(&mut g), 1);
        let calls = rec.pruned_calls.lock().unwrap();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0][0].to_string(), "k < 5");
        drop(calls);
        // The replaced source is the plain MemorySource now; a second pass
        // finds nothing to push (MemorySource has no pruning hook).
        assert_eq!(push_down_predicates(&mut g), 0);
    }

    #[test]
    fn pushdown_skips_shared_scans_and_bare_reads() {
        let rec = Arc::new(Recording {
            inner: mem_source(),
            pruned_calls: Default::default(),
        });
        let mut g = QueryGraph::new();
        let r = g.read_arc(rec.clone());
        // Two consumers: filter + map. Pruning would starve the map.
        let f = g.filter(r, col("k").lt(lit_i64(5)));
        let m = g.map(r, vec![(col("k"), "k2")]);
        let j = g.join(f, m, vec!["k"], vec!["k2"]);
        g.sink(j);
        assert_eq!(push_down_predicates(&mut g), 0);
        assert!(rec.pruned_calls.lock().unwrap().is_empty());
        // Non-extractable predicate: no call either.
        let mut g = QueryGraph::new();
        let r = g.read_arc(rec.clone());
        let f = g.filter(r, col("k").ne(lit_i64(5)));
        g.sink(f);
        assert_eq!(push_down_predicates(&mut g), 0);
    }

    #[test]
    fn memory_sources_are_untouched() {
        let mut g = QueryGraph::new();
        let r = g.read(mem_source());
        let f = g.filter(r, col("k").lt(lit_i64(5)));
        g.sink(f);
        assert_eq!(push_down_predicates(&mut g), 0);
        assert_eq!(reorder_scans(&mut g, 42), 0);
        assert_eq!(scan_metrics(&g), wake_data::ScanMetrics::default());
    }

    #[test]
    fn reorder_and_metrics_cover_capable_sources() {
        let rec = Arc::new(Recording {
            inner: mem_source(),
            pruned_calls: Default::default(),
        });
        let mut g = QueryGraph::new();
        let r = g.read_arc(rec.clone());
        g.sink(r);
        assert_eq!(scan_metrics(&g).zones_total, 2);
        assert_eq!(reorder_scans(&mut g, 42), 1);
        let handles = source_handles(&g);
        assert_eq!(handles.len(), 1);
        // After reorder the source is a plain MemorySource: no metrics.
        assert_eq!(scan_metrics_of(&handles), wake_data::ScanMetrics::default());
    }
}

//! Approximation-error metrics (§8.1 "Metrics"): MAPE over matched groups,
//! recall (fraction of final-result groups already produced), and precision
//! (fraction of produced groups that survive to the final result).

use crate::Result;
use std::collections::HashMap;
use wake_data::{DataFrame, Row};

/// Error of one estimate frame against the exact answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorReport {
    /// Mean absolute percentage error over numeric cells of matched rows
    /// (cells with zero truth are skipped, the standard MAPE convention).
    pub mape: f64,
    /// |estimate keys ∩ truth keys| / |truth keys|.
    pub recall: f64,
    /// |estimate keys ∩ truth keys| / |estimate keys|.
    pub precision: f64,
    /// Number of cells that entered the MAPE average.
    pub cells: usize,
}

impl ErrorReport {
    /// A perfect score (used for empty-truth corner cases).
    pub fn perfect() -> Self {
        ErrorReport {
            mape: 0.0,
            recall: 1.0,
            precision: 1.0,
            cells: 0,
        }
    }
}

/// Compare `estimate` to `truth`, matching rows on `key` columns and
/// scoring `value_cols` numerically. MAPE is reported in percent.
pub fn compare(
    estimate: &DataFrame,
    truth: &DataFrame,
    key: &[&str],
    value_cols: &[&str],
) -> Result<ErrorReport> {
    if truth.num_rows() == 0 {
        return Ok(if estimate.num_rows() == 0 {
            ErrorReport::perfect()
        } else {
            ErrorReport {
                mape: 0.0,
                recall: 1.0,
                precision: 0.0,
                cells: 0,
            }
        });
    }
    let t_key = truth.key_indices(key)?;
    let e_key = estimate.key_indices(key)?;
    let mut truth_rows: HashMap<Row, usize> = HashMap::with_capacity(truth.num_rows());
    for i in 0..truth.num_rows() {
        truth_rows.insert(truth.key_at(i, &t_key), i);
    }
    let mut matched = 0usize;
    let mut abs_pct_sum = 0.0;
    let mut cells = 0usize;
    for i in 0..estimate.num_rows() {
        let k = estimate.key_at(i, &e_key);
        let Some(&ti) = truth_rows.get(&k) else {
            continue;
        };
        matched += 1;
        for vc in value_cols {
            let tv = truth.value(ti, vc)?;
            let ev = estimate.value(i, vc)?;
            let (Some(tv), Some(ev)) = (tv.as_f64(), ev.as_f64()) else {
                continue;
            };
            if tv == 0.0 {
                continue;
            }
            abs_pct_sum += ((ev - tv) / tv).abs() * 100.0;
            cells += 1;
        }
    }
    let mape = if cells > 0 {
        abs_pct_sum / cells as f64
    } else {
        0.0
    };
    let recall = matched as f64 / truth.num_rows() as f64;
    let precision = if estimate.num_rows() > 0 {
        matched as f64 / estimate.num_rows() as f64
    } else {
        0.0
    };
    Ok(ErrorReport {
        mape,
        recall,
        precision,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wake_data::{Column, DataType, Field, Schema, Value};

    fn frame(keys: Vec<i64>, vals: Vec<f64>) -> DataFrame {
        let schema = Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::mutable("v", DataType::Float64),
        ]));
        DataFrame::new(schema, vec![Column::from_i64(keys), Column::from_f64(vals)]).unwrap()
    }

    #[test]
    fn exact_match_scores_zero_error() {
        let t = frame(vec![1, 2], vec![10.0, 20.0]);
        let r = compare(&t, &t, &["k"], &["v"]).unwrap();
        assert_eq!(r.mape, 0.0);
        assert_eq!(r.recall, 1.0);
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.cells, 2);
    }

    #[test]
    fn partial_estimate() {
        let truth = frame(vec![1, 2, 3, 4], vec![10.0, 20.0, 30.0, 40.0]);
        // Estimate has 2 of 4 groups; one is 10% high.
        let est = frame(vec![1, 2], vec![11.0, 20.0]);
        let r = compare(&est, &truth, &["k"], &["v"]).unwrap();
        assert!((r.mape - 5.0).abs() < 1e-9); // (10% + 0%) / 2
        assert_eq!(r.recall, 0.5);
        assert_eq!(r.precision, 1.0);
    }

    #[test]
    fn spurious_groups_hit_precision() {
        let truth = frame(vec![1], vec![10.0]);
        let est = frame(vec![1, 99], vec![10.0, 5.0]);
        let r = compare(&est, &truth, &["k"], &["v"]).unwrap();
        assert_eq!(r.recall, 1.0);
        assert_eq!(r.precision, 0.5);
    }

    #[test]
    fn zero_truth_cells_skipped() {
        let truth = frame(vec![1, 2], vec![0.0, 10.0]);
        let est = frame(vec![1, 2], vec![5.0, 10.0]);
        let r = compare(&est, &truth, &["k"], &["v"]).unwrap();
        assert_eq!(r.cells, 1);
        assert_eq!(r.mape, 0.0);
    }

    #[test]
    fn null_estimate_cells_skipped() {
        let schema = Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::mutable("v", DataType::Float64),
        ]));
        let est =
            DataFrame::from_rows(schema.clone(), &[vec![Value::Int(1), Value::Null]]).unwrap();
        let truth = frame(vec![1], vec![10.0]);
        let r = compare(&est, &truth, &["k"], &["v"]).unwrap();
        assert_eq!(r.cells, 0);
        assert_eq!(r.recall, 1.0);
    }

    #[test]
    fn empty_truth_conventions() {
        let empty = frame(vec![], vec![]);
        let est = frame(vec![1], vec![1.0]);
        assert_eq!(
            compare(&empty, &empty, &["k"], &["v"]).unwrap(),
            ErrorReport::perfect()
        );
        let r = compare(&est, &empty, &["k"], &["v"]).unwrap();
        assert_eq!(r.precision, 0.0);
    }
}

//! # wake-core
//!
//! The evolving-data-frame (**edf**) model from *"A Step Toward Deep Online
//! Aggregation"* (SIGMOD 2023): a data/processing model **closed under
//! map / filter / join / agg**, so operations can be applied to the outputs
//! of previous OLA operations and every intermediate result is itself a
//! stream of converging estimates.
//!
//! ## Model summary
//!
//! - An edf is a function `t -> DataFrame` for progress `0 ≤ t ≤ 1` (§3.1);
//!   concretely, a stream of [`update::Update`] messages, each carrying a
//!   frame and [`progress::Progress`] metadata.
//! - Updates are either **deltas** (append-only, the paper's Case 1) or
//!   **snapshots** (complete refresh, Cases 2–3); see [`update::UpdateKind`].
//! - Operators ([`ops`]) transform the *extrinsic* states of their inputs
//!   into their own *intrinsic* states and publish new extrinsic states,
//!   applying **growth-based inference** ([`growth`], [`agg`]) to turn raw
//!   partial aggregates into unbiased estimates (§4, §5).
//! - The two closure properties (§3.1 "2Cs") hold by construction:
//!   *consistency* (fixed output schema per operator) and *convergence*
//!   (at `t = 1` every operator has consumed all input and emits the exact
//!   answer with no scaling).
//! - Optional confidence intervals ([`ci`]) propagate variances through
//!   aggregate estimators and derive Chebyshev intervals (§6).
//!
//! Queries are assembled as operator DAGs with [`graph::QueryGraph`] and run
//! by an executor from `wake-engine`.

pub mod agg;
pub mod ci;
pub mod graph;
pub mod growth;
pub mod meta;
pub mod metrics;
pub mod ops;
pub mod plan;
pub mod progress;
pub mod update;

pub use agg::{AggFunc, AggSpec};
pub use graph::{JoinKind, NodeId, QueryGraph};
pub use meta::EdfMeta;
pub use progress::Progress;
pub use update::{Update, UpdateKind};

/// Crate-wide result type (errors reuse `wake_data::DataError`).
pub type Result<T> = std::result::Result<T, wake_data::DataError>;

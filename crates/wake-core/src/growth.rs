//! Cardinality-growth modelling (§5.2).
//!
//! Wake models each aggregation's **average group cardinality** as a
//! monomial in progress, `E[x̄_t] = b · t^w`, and fits `(log b, w)` with a
//! streaming log-log regression (O(1) per observation). The fitted power
//! extrapolates every group's final cardinality as `x̂ᵢ = xᵢ,ₜ / t^w`
//! (Eq. 4; the group coefficient `cᵢ = xᵢ,ₜ / t^w` evaluated at `T = 1`).

use crate::update::UpdateKind;
use wake_stats::StreamingOls;

/// Upper clamp on the fitted power: a cross join of three linear sources is
/// cubic; anything above that is treated as a degenerate fit.
const W_MAX: f64 = 3.0;

/// Streaming fit of the growth power `w` with a mode-dependent prior.
#[derive(Debug, Clone)]
pub struct GrowthModel {
    ols: StreamingOls,
    /// Fallback power used before the fit has two distinct observations:
    /// delta-mode inputs are samples of a growing population (`w = 1`,
    /// like a base-table read), snapshot-mode inputs already carry
    /// extrapolated estimates (`w = 0`, "the currently observed set is the
    /// entire set", §2.2 Case 2).
    prior_w: f64,
    /// When set, the fit is ignored and `w` is pinned (ablation mode —
    /// `Fixed(1.0)` reproduces the linear-only scaling of prior OLA
    /// middleware, the alternative §5.5 argues against).
    fixed_w: Option<f64>,
    last_t: f64,
}

impl GrowthModel {
    /// Build with the prior implied by the input stream kind.
    pub fn for_input(kind: UpdateKind) -> Self {
        let prior_w = match kind {
            UpdateKind::Delta => 1.0,
            UpdateKind::Snapshot => 0.0,
        };
        GrowthModel {
            ols: StreamingOls::new(),
            prior_w,
            fixed_w: None,
            last_t: 0.0,
        }
    }

    /// A model pinned to a constant power (no fitting).
    pub fn fixed(w: f64) -> Self {
        GrowthModel {
            ols: StreamingOls::new(),
            prior_w: w,
            fixed_w: Some(w.clamp(0.0, W_MAX)),
            last_t: 0.0,
        }
    }

    /// Record the average group cardinality observed at progress `t`.
    /// Observations at `t <= 0`, with no groups, or regressing `t` are
    /// ignored (the log transform needs positive support and the model is
    /// over monotone progress).
    pub fn observe(&mut self, t: f64, avg_group_cardinality: f64) {
        if t <= 0.0 || t > 1.0 || avg_group_cardinality <= 0.0 || t < self.last_t {
            return;
        }
        self.last_t = t;
        self.ols.observe(t.ln(), avg_group_cardinality.ln());
    }

    /// Current estimate of the power `w`, clamped to `[0, W_MAX]`. A
    /// two-point log-log fit is numerically exact but statistically
    /// meaningless and produces wild early scale factors on join outputs,
    /// so the prior is kept until three observations are available.
    pub fn w(&self) -> f64 {
        if let Some(w) = self.fixed_w {
            return w;
        }
        if self.ols.count() < 3 {
            return self.prior_w;
        }
        match self.ols.slope() {
            Some(s) => s.clamp(0.0, W_MAX),
            None => self.prior_w,
        }
    }

    /// Variance of the fitted power (0 until enough observations), used by
    /// CI propagation (Eq. 10 needs `Var(w)`).
    pub fn w_variance(&self) -> f64 {
        if self.fixed_w.is_some() {
            return 0.0;
        }
        self.ols.slope_variance().unwrap_or(0.0)
    }

    /// Extrapolate a group's final cardinality from its current cardinality
    /// `x` at progress `t` (Eq. 4): `x̂ = x / t^w`. At `t = 1` this is the
    /// identity, preserving convergence.
    pub fn estimate_final_cardinality(&self, x: f64, t: f64) -> f64 {
        if t <= 0.0 {
            return x;
        }
        if t >= 1.0 {
            return x;
        }
        x / t.powf(self.w())
    }

    /// The scale factor `x̂ / x = t^{-w}` applied to sum-like aggregates.
    pub fn scale_factor(&self, t: f64) -> f64 {
        if t <= 0.0 || t >= 1.0 {
            return 1.0;
        }
        t.powf(-self.w())
    }

    pub fn observation_count(&self) -> u64 {
        self.ols.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priors_match_input_kind() {
        assert_eq!(GrowthModel::for_input(UpdateKind::Delta).w(), 1.0);
        assert_eq!(GrowthModel::for_input(UpdateKind::Snapshot).w(), 0.0);
    }

    #[test]
    fn fits_linear_growth() {
        let mut g = GrowthModel::for_input(UpdateKind::Delta);
        for i in 1..=10 {
            let t = i as f64 / 10.0;
            g.observe(t, 100.0 * t); // clean linear growth
        }
        assert!((g.w() - 1.0).abs() < 1e-9);
        // At t=0.25 with w=1 a group of 5 extrapolates to 20.
        assert!((g.estimate_final_cardinality(5.0, 0.25) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn fits_flat_growth_for_low_cardinality_groups() {
        let mut g = GrowthModel::for_input(UpdateKind::Delta);
        for i in 1..=10 {
            g.observe(i as f64 / 10.0, 400.0); // group count saturated early
        }
        assert!(g.w().abs() < 1e-9);
        assert_eq!(g.estimate_final_cardinality(400.0, 0.5), 400.0);
    }

    #[test]
    fn fits_quadratic_growth() {
        let mut g = GrowthModel::for_input(UpdateKind::Delta);
        for i in 1..=8 {
            let t = i as f64 / 8.0;
            g.observe(t, 50.0 * t * t);
        }
        assert!((g.w() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn clamping_and_guards() {
        let mut g = GrowthModel::for_input(UpdateKind::Delta);
        g.observe(0.0, 10.0); // ignored: t <= 0
        g.observe(0.5, 0.0); // ignored: zero cardinality
        g.observe(0.5, 10.0);
        g.observe(0.25, 20.0); // ignored: regressing t
        assert_eq!(g.observation_count(), 1);
        assert_eq!(g.w(), 1.0); // still prior
                                // Explosive synthetic growth clamps at W_MAX (after the fit has
                                // enough observations to be trusted).
        let mut g = GrowthModel::for_input(UpdateKind::Delta);
        g.observe(0.1, 1.0);
        g.observe(0.5, 1e6);
        assert_eq!(g.w(), 1.0, "prior holds until 3 observations");
        g.observe(1.0, 1e12);
        assert_eq!(g.w(), 3.0);
    }

    #[test]
    fn fixed_model_ignores_observations() {
        let mut g = GrowthModel::fixed(1.0);
        for i in 1..=10 {
            let t = i as f64 / 10.0;
            g.observe(t, 7.0 * t * t); // quadratic data
        }
        assert_eq!(g.w(), 1.0, "fixed model must not fit");
        assert_eq!(g.w_variance(), 0.0);
        // Out-of-range fixed powers are clamped.
        assert_eq!(GrowthModel::fixed(99.0).w(), 3.0);
    }

    #[test]
    fn identity_at_completion() {
        let mut g = GrowthModel::for_input(UpdateKind::Delta);
        g.observe(0.5, 5.0);
        g.observe(1.0, 10.0);
        assert_eq!(g.estimate_final_cardinality(10.0, 1.0), 10.0);
        assert_eq!(g.scale_factor(1.0), 1.0);
    }
}

//! Query progress metadata (§4.1).
//!
//! Progress `t` is the ratio of *original input tuples* processed so far to
//! the total that must be processed. Because a deep query can blend several
//! base tables, [`Progress`] tracks per-source counters and combines them at
//! multi-input operators by taking the per-source maximum (each source's
//! tuples are counted once no matter how many paths fan out from it).

/// Per-source progress counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceProgress {
    /// Stable id of the reader node that produced these tuples.
    pub source_id: u32,
    /// Tuples emitted by that reader so far.
    pub processed: u64,
    /// Total tuples the reader will emit.
    pub total: u64,
}

/// Combined progress over every source feeding an operator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Progress {
    sources: Vec<SourceProgress>,
}

impl Progress {
    pub fn new() -> Self {
        Self::default()
    }

    /// Progress of a single source.
    pub fn single(source_id: u32, processed: u64, total: u64) -> Self {
        Progress {
            sources: vec![SourceProgress {
                source_id,
                processed,
                total,
            }],
        }
    }

    pub fn sources(&self) -> &[SourceProgress] {
        &self.sources
    }

    /// Merge another progress vector in, keeping the max `processed` per
    /// source (messages from different paths may be differently stale).
    pub fn merge(&mut self, other: &Progress) {
        for sp in &other.sources {
            match self
                .sources
                .iter_mut()
                .find(|s| s.source_id == sp.source_id)
            {
                Some(mine) => {
                    mine.processed = mine.processed.max(sp.processed);
                    debug_assert_eq!(mine.total, sp.total, "source totals must agree");
                }
                None => self.sources.push(*sp),
            }
        }
        self.sources.sort_by_key(|s| s.source_id);
    }

    /// Merged copy.
    pub fn merged(&self, other: &Progress) -> Progress {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// The progress ratio `t = Σ processed / Σ total` (§4.1). Empty
    /// progress (no sources yet) reports 0; zero-row sources report 1.
    pub fn t(&self) -> f64 {
        let total: u64 = self.sources.iter().map(|s| s.total).sum();
        if self.sources.is_empty() {
            return 0.0;
        }
        if total == 0 {
            return 1.0;
        }
        let processed: u64 = self.sources.iter().map(|s| s.processed).sum();
        (processed as f64 / total as f64).clamp(0.0, 1.0)
    }

    /// Whether every source has been fully consumed.
    pub fn is_complete(&self) -> bool {
        !self.sources.is_empty() && self.sources.iter().all(|s| s.processed >= s.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_source_ratio() {
        let p = Progress::single(0, 25, 100);
        assert!((p.t() - 0.25).abs() < 1e-12);
        assert!(!p.is_complete());
        let done = Progress::single(0, 100, 100);
        assert_eq!(done.t(), 1.0);
        assert!(done.is_complete());
    }

    #[test]
    fn merge_takes_per_source_max_and_unions() {
        let mut a = Progress::single(0, 10, 100);
        a.merge(&Progress::single(0, 30, 100));
        assert_eq!(a.sources()[0].processed, 30);
        a.merge(&Progress::single(1, 50, 100));
        // t = (30 + 50) / 200
        assert!((a.t() - 0.4).abs() < 1e-12);
        assert_eq!(a.sources().len(), 2);
    }

    #[test]
    fn weighted_combination_matches_paper_definition() {
        // A big table at 10% and a tiny complete table: t dominated by big.
        let p = Progress::single(0, 100, 1000).merged(&Progress::single(1, 10, 10));
        assert!((p.t() - 110.0 / 1010.0).abs() < 1e-12);
        assert!(!p.is_complete());
    }

    #[test]
    fn empty_and_zero_row_sources() {
        assert_eq!(Progress::new().t(), 0.0);
        assert!(!Progress::new().is_complete());
        let p = Progress::single(0, 0, 0);
        assert_eq!(p.t(), 1.0);
        assert!(p.is_complete());
    }
}

//! Shared hash-index machinery for hash-keyed operators (join, group-by).
//!
//! Both `JoinOp` and `AggOp` used to key `std::collections::HashMap` with a
//! [`wake_data::Row`] — one `Vec<Value>` allocation per input row. The
//! replacements here are keyed by the precomputed `u64` row hashes from
//! [`wake_data::hash::hash_keys`]; since those hashes are already avalanche-
//! mixed, the maps use a no-op pass-through hasher. Distinct keys can share
//! a 64-bit hash, so a bucket holds *candidates*: callers confirm every
//! candidate with a typed key comparison ([`wake_data::hash::keys_equal`] /
//! [`wake_data::hash::KeyStore::eq_row`]) before treating it as a match.

use crate::ops::RowRef;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Pass-through hasher for already-mixed `u64` keys.
#[derive(Debug, Default, Clone)]
pub struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("IdentityHasher is only for u64 keys");
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

pub type BuildIdentity = BuildHasherDefault<IdentityHasher>;

/// One distinct key's rows within a bucket. `rows[0]` is the
/// representative: every later insert and every probe compares against it
/// exactly once, so duplicate keys cost O(1) comparisons regardless of how
/// many rows share them (the property `HashMap<Row, Vec<_>>` had, without
/// its per-row key allocation).
#[derive(Debug, Default, Clone)]
struct KeyGroup {
    rows: Vec<RowRef>,
}

/// Map from key hash to the buffered rows bearing that hash — the
/// build-side state of a hash join. Equal hash does **not** imply equal
/// key, so each bucket partitions its rows into [`KeyGroup`]s of typed-equal
/// keys; callers supply the typed comparison as a closure over their frame
/// stores.
#[derive(Debug, Default, Clone)]
pub struct KeyIndex {
    map: HashMap<u64, Vec<KeyGroup>, BuildIdentity>,
}

impl KeyIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `row` under `hash`; `same_key(other)` must report whether
    /// `row`'s key equals the key of the already-indexed `other` row.
    pub fn insert(&mut self, hash: u64, row: RowRef, same_key: impl Fn(RowRef) -> bool) {
        let groups = self.map.entry(hash).or_default();
        match groups.iter_mut().find(|g| same_key(g.rows[0])) {
            Some(g) => g.rows.push(row),
            None => groups.push(KeyGroup { rows: vec![row] }),
        }
    }

    /// All rows whose key equals the probe key, given the probe's `hash`
    /// and a typed comparison against a candidate row. At most one group
    /// per bucket can match, and only group representatives are compared.
    pub fn matches(&self, hash: u64, same_key: impl Fn(RowRef) -> bool) -> &[RowRef] {
        self.map
            .get(&hash)
            .and_then(|groups| groups.iter().find(|g| same_key(g.rows[0])))
            .map_or(&[], |g| g.rows.as_slice())
    }

    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Approximate heap bytes.
    pub fn byte_size(&self) -> usize {
        self.map.len() * 16
            + self
                .map
                .values()
                .flat_map(|gs| gs.iter())
                .map(|g| 24 + g.rows.len() * 8)
                .sum::<usize>()
    }
}

/// Map from key hash to the group slots bearing that hash — the state of a
/// hash aggregate. Group keys themselves live in a typed
/// [`wake_data::hash::KeyStore`] owned by the operator.
#[derive(Debug, Default, Clone)]
pub struct GroupIndex {
    map: HashMap<u64, Vec<u32>, BuildIdentity>,
}

impl GroupIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Candidate group slots for `hash` (confirm via `KeyStore::eq_row`).
    pub fn candidates(&self, hash: u64) -> &[u32] {
        self.map.get(&hash).map_or(&[], Vec::as_slice)
    }

    pub fn insert(&mut self, hash: u64, slot: u32) {
        self.map.entry(hash).or_default().push(slot);
    }

    pub fn clear(&mut self) {
        self.map.clear();
    }

    pub fn byte_size(&self) -> usize {
        self.map.len() * 16 + self.map.values().map(|v| v.len() * 4).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_index_groups_duplicates_and_separates_keys() {
        // Key identity for this test: RowRef.1 parity (even/odd).
        let same = |a: RowRef, b: RowRef| a.1 % 2 == b.1 % 2;
        let mut idx = KeyIndex::new();
        idx.insert(7, (0, 0), |o| same((0, 0), o));
        idx.insert(7, (0, 2), |o| same((0, 2), o)); // duplicate key
        idx.insert(9, (1, 0), |o| same((1, 0), o));
        assert_eq!(idx.matches(7, |o| same((0, 4), o)), &[(0, 0), (0, 2)]);
        assert_eq!(idx.matches(9, |o| same((1, 2), o)), &[(1, 0)]);
        assert!(idx.matches(8, |_| true).is_empty());
        assert!(idx.byte_size() > 0);
        idx.clear();
        assert!(idx.matches(7, |_| true).is_empty());
    }

    #[test]
    fn forced_collision_resolved_by_typed_comparison() {
        // Simulate a 64-bit hash collision: two rows with DIFFERENT keys
        // inserted under the SAME hash. They must land in different groups
        // and a probe must return only the typed-equal group — the exact
        // filter JoinOp applies via `keys_equal`.
        use std::sync::Arc;
        use wake_data::hash::keys_equal;
        use wake_data::{Column, DataFrame, DataType, Field, Schema};

        let schema = Arc::new(Schema::new(vec![Field::new("k", DataType::Int64)]));
        let build = DataFrame::new(schema.clone(), vec![Column::from_i64(vec![1, 2])]).unwrap();
        let probe = DataFrame::new(schema, vec![Column::from_i64(vec![2])]).unwrap();

        let mut idx = KeyIndex::new();
        let fake_hash = 0xdead_beef;
        let eq_build = |a: RowRef, b: RowRef| {
            keys_equal(&build, a.1 as usize, &[0], &build, b.1 as usize, &[0])
        };
        idx.insert(fake_hash, (0, 0), |o| eq_build((0, 0), o)); // key 1
        idx.insert(fake_hash, (0, 1), |o| eq_build((0, 1), o)); // key 2 — collides
        let matches = idx.matches(fake_hash, |(_, ri)| {
            keys_equal(&probe, 0, &[0], &build, ri as usize, &[0])
        });
        assert_eq!(
            matches,
            &[(0, 1)],
            "only the truly-equal key's group survives"
        );
    }

    #[test]
    fn group_index_buckets_by_hash() {
        let mut idx = GroupIndex::new();
        idx.insert(1, 0);
        idx.insert(1, 1); // hash collision: two groups, one bucket
        assert_eq!(idx.candidates(1), &[0, 1]);
        assert!(idx.candidates(2).is_empty());
        idx.clear();
        assert!(idx.candidates(1).is_empty());
    }
}

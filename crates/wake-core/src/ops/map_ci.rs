//! Variance propagation through projections (paper §6 "Variance
//! Propagation", Appendix B "Mapping and Projection").
//!
//! For a differentiable mapping `v = f(u)` with known input variances, the
//! first-order rule `Var(v) ≈ Σ_k (∂f/∂u_k)² · Var(u_k)` (the diagonal of
//! Eq. 9, inputs treated as independent) propagates uncertainty from a
//! CI-enabled aggregation through subsequent maps. The paper evaluates
//! partials by automatic differentiation; we use forward finite
//! differences on the vectorized evaluator, which handles every
//! expression the engine can run and degrades gracefully on
//! non-differentiable points (the paper marks those "unstable" — here the
//! derivative is simply taken just off the kink).

use crate::ci::variance_column;
use crate::Result;
use std::sync::Arc;
use wake_data::{Column, DataFrame, DataType, Schema, Value};
use wake_expr::{eval, Expr};

/// For one projected expression: the input columns that carry variance.
#[derive(Debug, Clone)]
pub struct VarInputs {
    /// (value column, its `{col}__var` column) pairs.
    pub inputs: Vec<(String, String)>,
}

/// Detect which projected expressions need an output variance column:
/// those referencing a numeric input column that has a `{col}__var`
/// companion in `input_schema`.
pub fn detect_var_inputs(
    exprs: &[(Expr, String)],
    input_schema: &Schema,
) -> Vec<Option<VarInputs>> {
    exprs
        .iter()
        .map(|(e, alias)| {
            // Never chain variances of variances.
            if crate::ci::is_variance_column(alias) {
                return None;
            }
            let inputs: Vec<(String, String)> = e
                .referenced_columns()
                .into_iter()
                .filter_map(|c| {
                    let vc = variance_column(c);
                    let numeric = input_schema
                        .field(c)
                        .map(|f| f.dtype.is_numeric())
                        .unwrap_or(false);
                    (numeric && input_schema.contains(&vc)).then(|| (c.to_string(), vc))
                })
                .collect();
            if inputs.is_empty() {
                None
            } else {
                Some(VarInputs { inputs })
            }
        })
        .collect()
}

/// Replace column `name` with `values` (same type) in a frame.
fn with_replaced_column(frame: &DataFrame, name: &str, values: Column) -> Result<DataFrame> {
    let idx = frame.schema().index_of(name)?;
    let mut columns = frame.columns().to_vec();
    columns[idx] = values;
    DataFrame::new(frame.schema().clone(), columns)
}

/// Propagate variance for one expression over one frame: returns the
/// per-row output variance column (Float64).
pub fn propagate_variance(
    expr: &Expr,
    frame: &DataFrame,
    var_inputs: &VarInputs,
    base: &Column,
) -> Result<Column> {
    let n = frame.num_rows();
    let mut out = vec![0.0f64; n];
    for (col_name, var_name) in &var_inputs.inputs {
        let u = frame.column(col_name)?;
        let var_u = frame.column(var_name)?;
        // Forward difference with per-row relative step.
        let mut perturbed = Vec::with_capacity(n);
        let mut steps = Vec::with_capacity(n);
        for i in 0..n {
            match u.f64_at(i) {
                Some(x) => {
                    let h = (x.abs() * 1e-6).max(1e-9);
                    perturbed.push(Value::Float(x + h));
                    steps.push(h);
                }
                None => {
                    perturbed.push(u.value(i));
                    steps.push(0.0);
                }
            }
        }
        // Keep the column's physical type when it was Int64 (a +h bump on
        // an integer column needs the float domain, so widen).
        let pert_col = Column::from_values(DataType::Float64, &perturbed)?;
        let pert_frame = with_replaced_frame_for(frame, col_name, pert_col)?;
        let f_pert = eval(expr, &pert_frame)?;
        for i in 0..n {
            if steps[i] == 0.0 {
                continue;
            }
            let (Some(f1), Some(f0)) = (f_pert.f64_at(i), base.f64_at(i)) else {
                continue;
            };
            let d = (f1 - f0) / steps[i];
            let v = var_u.f64_at(i).unwrap_or(0.0);
            out[i] += d * d * v;
        }
    }
    Ok(Column::from_f64(out))
}

/// Replace a column, widening the schema field to Float64 when needed so
/// the perturbed values type-check.
fn with_replaced_frame_for(frame: &DataFrame, name: &str, values: Column) -> Result<DataFrame> {
    let idx = frame.schema().index_of(name)?;
    if frame.schema().fields()[idx].dtype == DataType::Float64 {
        return with_replaced_column(frame, name, values);
    }
    let mut fields = frame.schema().fields().to_vec();
    fields[idx].dtype = DataType::Float64;
    let mut columns = frame.columns().to_vec();
    columns[idx] = values;
    DataFrame::new(Arc::new(Schema::new(fields)), columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wake_data::Field;
    use wake_expr::{col, lit_f64};

    fn frame_with_var(xs: Vec<f64>, vars: Vec<f64>) -> DataFrame {
        let schema = Arc::new(Schema::new(vec![
            Field::mutable("x", DataType::Float64),
            Field::mutable("x__var", DataType::Float64),
        ]));
        DataFrame::new(schema, vec![Column::from_f64(xs), Column::from_f64(vars)]).unwrap()
    }

    #[test]
    fn detection_requires_numeric_and_var_column() {
        let f = frame_with_var(vec![1.0], vec![0.1]);
        let exprs = vec![
            (col("x").mul(lit_f64(2.0)), "y".to_string()),
            (lit_f64(1.0), "c".to_string()),
            (col("x__var"), "x__var".to_string()),
        ];
        let det = detect_var_inputs(&exprs, f.schema());
        assert!(det[0].is_some());
        assert!(det[1].is_none());
        assert!(det[2].is_none(), "variance columns are never re-propagated");
    }

    #[test]
    fn linear_map_scales_variance_quadratically() {
        // y = 3x  =>  Var(y) = 9 Var(x).
        let f = frame_with_var(vec![2.0, -5.0], vec![0.5, 2.0]);
        let expr = col("x").mul(lit_f64(3.0));
        let base = eval(&expr, &f).unwrap();
        let det = detect_var_inputs(&[(expr.clone(), "y".into())], f.schema());
        let v = propagate_variance(&expr, &f, det[0].as_ref().unwrap(), &base).unwrap();
        assert!((v.f64_at(0).unwrap() - 4.5).abs() < 1e-3);
        assert!((v.f64_at(1).unwrap() - 18.0).abs() < 1e-3);
    }

    #[test]
    fn nonlinear_map_uses_local_derivative() {
        // y = x²  =>  Var(y) ≈ (2x)² Var(x).
        let f = frame_with_var(vec![3.0], vec![0.25]);
        let expr = col("x").mul(col("x"));
        let base = eval(&expr, &f).unwrap();
        let det = detect_var_inputs(&[(expr.clone(), "y".into())], f.schema());
        let v = propagate_variance(&expr, &f, det[0].as_ref().unwrap(), &base).unwrap();
        // (2·3)²·0.25 = 9.
        assert!((v.f64_at(0).unwrap() - 9.0).abs() < 1e-2);
    }

    #[test]
    fn ratio_map_matches_eq14_shape() {
        // y = a/b with independent variances.
        let schema = Arc::new(Schema::new(vec![
            Field::mutable("a", DataType::Float64),
            Field::mutable("a__var", DataType::Float64),
            Field::mutable("b", DataType::Float64),
            Field::mutable("b__var", DataType::Float64),
        ]));
        let f = DataFrame::new(
            schema,
            vec![
                Column::from_f64(vec![10.0]),
                Column::from_f64(vec![1.0]),
                Column::from_f64(vec![4.0]),
                Column::from_f64(vec![0.16]),
            ],
        )
        .unwrap();
        let expr = col("a").div(col("b"));
        let base = eval(&expr, &f).unwrap();
        let det = detect_var_inputs(&[(expr.clone(), "y".into())], f.schema());
        let v = propagate_variance(&expr, &f, det[0].as_ref().unwrap(), &base).unwrap();
        // Analytic: Var = Var(a)/b² + a²Var(b)/b⁴ = 1/16 + 100·0.16/256.
        let expect = 1.0 / 16.0 + 100.0 * 0.16 / 256.0;
        assert!((v.f64_at(0).unwrap() - expect).abs() < 1e-3);
    }

    #[test]
    fn null_inputs_contribute_zero() {
        let schema = Arc::new(Schema::new(vec![
            Field::mutable("x", DataType::Float64),
            Field::mutable("x__var", DataType::Float64),
        ]));
        let f = DataFrame::from_rows(schema, &[vec![Value::Null, Value::Float(1.0)]]).unwrap();
        let expr = col("x").mul(lit_f64(2.0));
        let base = eval(&expr, &f).unwrap();
        let det = detect_var_inputs(&[(expr.clone(), "y".into())], f.schema());
        let v = propagate_variance(&expr, &f, det[0].as_ref().unwrap(), &base).unwrap();
        assert_eq!(v.f64_at(0), Some(0.0));
    }
}

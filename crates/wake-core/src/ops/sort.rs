//! Sort / limit operator — the paper's Case 3 "shuffle without inference"
//! (§2.2): order-by and limit must consume their whole input, so every
//! update triggers a full re-sort of the current state and the output is a
//! snapshot. The paper notes these ops typically terminate a pipeline for
//! user consumption, so the redundant recompute is cheap relative to the
//! upstream work.

use crate::meta::EdfMeta;
use crate::ops::{Operator, RowStore};
use crate::progress::Progress;
use crate::update::{Update, UpdateKind};
use crate::Result;
use std::sync::Arc;
use wake_data::DataFrame;

/// Order-by (optionally descending per key) with an optional limit.
pub struct SortOp {
    by: Vec<String>,
    descending: Vec<bool>,
    limit: Option<usize>,
    input_kind: UpdateKind,
    buffer: RowStore,
    progress: Progress,
    emitted: bool,
    meta: EdfMeta,
}

impl SortOp {
    pub fn new(
        input: &EdfMeta,
        by: Vec<String>,
        descending: Vec<bool>,
        limit: Option<usize>,
    ) -> Result<Self> {
        if by.len() != descending.len() {
            return Err(wake_data::DataError::Invalid(
                "sort keys and directions must align".into(),
            ));
        }
        for k in &by {
            input.schema.index_of(k)?;
        }
        // Output is snapshot-mode; the sort keys define the physical order.
        let clustering = if by.is_empty() {
            None
        } else {
            Some(by.clone())
        };
        let meta = EdfMeta::new(
            input.schema.clone(),
            input.primary_key.clone(),
            UpdateKind::Snapshot,
        )
        .with_clustering(clustering);
        Ok(SortOp {
            by,
            descending,
            limit,
            input_kind: input.kind,
            buffer: RowStore::new(),
            progress: Progress::new(),
            emitted: false,
            meta,
        })
    }

    fn emit(&self) -> Result<Vec<Update>> {
        let all = self.buffer.concat(&self.meta.schema)?;
        let sorted = if self.by.is_empty() {
            all
        } else {
            let keys: Vec<&str> = self.by.iter().map(|s| s.as_str()).collect();
            all.sort_by(&keys, &self.descending)?
        };
        let cut = match self.limit {
            Some(n) => sorted.head(n),
            None => sorted,
        };
        Ok(vec![Update::snapshot_from_arc(
            Arc::new(cut),
            self.progress.clone(),
        )])
    }
}

impl Update {
    fn snapshot_from_arc(frame: Arc<DataFrame>, progress: Progress) -> Update {
        Update {
            frame,
            progress,
            kind: UpdateKind::Snapshot,
        }
    }
}

impl Operator for SortOp {
    fn on_update(&mut self, port: usize, update: &Update) -> Result<Vec<Update>> {
        debug_assert_eq!(port, 0);
        self.progress.merge(&update.progress);
        if self.input_kind == UpdateKind::Snapshot {
            self.buffer.clear();
        }
        self.buffer.push(update.frame.clone());
        self.emitted = true;
        self.emit()
    }

    fn on_eof(&mut self, _port: usize) -> Result<Vec<Update>> {
        // A query whose upstream produced nothing still has an answer: the
        // empty frame. Guarantee at least one (final) emission.
        if !self.emitted {
            self.emitted = true;
            return self.emit();
        }
        Ok(Vec::new())
    }

    fn meta(&self) -> &EdfMeta {
        &self.meta
    }

    fn state_bytes(&self) -> usize {
        self.buffer.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{delta, kv_frame, snapshot};
    use wake_data::Value;

    fn meta(kind: UpdateKind) -> EdfMeta {
        EdfMeta::new(
            kv_frame(vec![], vec![]).schema().clone(),
            vec!["k".into()],
            kind,
        )
    }

    #[test]
    fn accumulates_deltas_and_resorts() {
        let mut op = SortOp::new(
            &meta(UpdateKind::Delta),
            vec!["v".into()],
            vec![true],
            Some(2),
        )
        .unwrap();
        let out = op
            .on_update(0, &delta(kv_frame(vec![1, 2], vec![5.0, 9.0]), 2, 4))
            .unwrap();
        assert_eq!(out[0].frame.num_rows(), 2);
        assert_eq!(out[0].frame.value(0, "v").unwrap(), Value::Float(9.0));
        // New delta displaces one of the current top-2.
        let out = op
            .on_update(0, &delta(kv_frame(vec![3], vec![7.0]), 3, 4))
            .unwrap();
        let f = &out[0].frame;
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.value(0, "v").unwrap(), Value::Float(9.0));
        assert_eq!(f.value(1, "v").unwrap(), Value::Float(7.0));
        assert_eq!(out[0].kind, UpdateKind::Snapshot);
    }

    #[test]
    fn snapshot_input_replaces_state() {
        let mut op = SortOp::new(
            &meta(UpdateKind::Snapshot),
            vec!["v".into()],
            vec![false],
            None,
        )
        .unwrap();
        op.on_update(0, &snapshot(kv_frame(vec![1, 2], vec![5.0, 1.0]), 1, 2))
            .unwrap();
        let out = op
            .on_update(0, &snapshot(kv_frame(vec![9], vec![3.0]), 2, 2))
            .unwrap();
        assert_eq!(out[0].frame.num_rows(), 1);
        assert_eq!(out[0].frame.value(0, "k").unwrap(), Value::Int(9));
    }

    #[test]
    fn pure_limit_without_sort() {
        let mut op = SortOp::new(&meta(UpdateKind::Delta), vec![], vec![], Some(3)).unwrap();
        let out = op
            .on_update(0, &delta(kv_frame(vec![1, 2, 3, 4, 5], vec![0.0; 5]), 5, 5))
            .unwrap();
        assert_eq!(out[0].frame.num_rows(), 3);
    }

    #[test]
    fn eof_without_input_emits_empty_final_state() {
        let mut op = SortOp::new(
            &meta(UpdateKind::Delta),
            vec!["v".into()],
            vec![false],
            Some(3),
        )
        .unwrap();
        let out = op.on_eof(0).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].frame.num_rows(), 0);
        assert_eq!(out[0].kind, UpdateKind::Snapshot);
        // Only once.
        assert!(op.on_eof(0).unwrap().is_empty());
    }

    #[test]
    fn validation() {
        assert!(SortOp::new(&meta(UpdateKind::Delta), vec!["v".into()], vec![], None).is_err());
        assert!(SortOp::new(
            &meta(UpdateKind::Delta),
            vec!["nope".into()],
            vec![false],
            None
        )
        .is_err());
    }
}

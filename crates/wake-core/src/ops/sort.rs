//! Sort / limit operator — the paper's Case 3 "shuffle without inference"
//! (§2.2): order-by and limit must consume their whole input and the
//! output is a snapshot.
//!
//! The buffered input is maintained as **one sorted run** instead of
//! being fully re-sorted on every refresh: a delta is sorted on its own
//! (O(d log d)) and then binary-merged into the run (O(n + d) typed
//! comparisons), so an order-by refresh costs linear gather work instead
//! of an O(n log n) comparator sort over the whole buffer. Snapshot
//! inputs (upstream state replacement — the retraction-shaped case) fall
//! back to a full sort of the refresh, which is the whole state anyway.
//! The merge is stable with ties preferring the existing run, so every
//! emitted frame is bit-identical to `concat(all updates)` + stable sort
//! — asserted by the equivalence tests below.

use crate::meta::EdfMeta;
use crate::ops::{Operator, RowStore};
use crate::progress::Progress;
use crate::update::{Update, UpdateKind};
use crate::Result;
use std::cmp::Ordering;
use std::sync::Arc;
use wake_data::hash::cmp_rows;
use wake_data::DataFrame;

/// Order-by (optionally descending per key) with an optional limit.
pub struct SortOp {
    by: Vec<String>,
    descending: Vec<bool>,
    /// Sort-key column positions in the (fixed) input schema.
    key_idx: Vec<usize>,
    limit: Option<usize>,
    input_kind: UpdateKind,
    /// The buffered input as one run, sorted by `by`/`descending`.
    sorted: Option<Arc<DataFrame>>,
    progress: Progress,
    emitted: bool,
    meta: EdfMeta,
}

impl SortOp {
    pub fn new(
        input: &EdfMeta,
        by: Vec<String>,
        descending: Vec<bool>,
        limit: Option<usize>,
    ) -> Result<Self> {
        if by.len() != descending.len() {
            return Err(wake_data::DataError::Invalid(
                "sort keys and directions must align".into(),
            ));
        }
        let key_idx = by
            .iter()
            .map(|k| input.schema.index_of(k))
            .collect::<Result<Vec<_>>>()?;
        // Output is snapshot-mode; the sort keys define the physical order.
        let clustering = if by.is_empty() {
            None
        } else {
            Some(by.clone())
        };
        let meta = EdfMeta::new(
            input.schema.clone(),
            input.primary_key.clone(),
            UpdateKind::Snapshot,
        )
        .with_clustering(clustering);
        Ok(SortOp {
            by,
            descending,
            key_idx,
            limit,
            input_kind: input.kind,
            sorted: None,
            progress: Progress::new(),
            emitted: false,
            meta,
        })
    }

    /// `Value`-order comparison of two rows under this op's per-key sort
    /// directions (the comparator `DataFrame::sort_by` applies).
    fn cmp_keyed(&self, a: &DataFrame, ra: usize, b: &DataFrame, rb: usize) -> Ordering {
        for (k, &desc) in self.key_idx.iter().zip(&self.descending) {
            let key = std::slice::from_ref(k);
            let ord = cmp_rows(a, ra, key, b, rb, key);
            let ord = if desc { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }

    /// Sort one frame on its own (stable, like the full re-sort did).
    fn sort_frame(&self, frame: &Arc<DataFrame>) -> Result<Arc<DataFrame>> {
        if self.by.is_empty() {
            return Ok(frame.clone());
        }
        let keys: Vec<&str> = self.by.iter().map(|s| s.as_str()).collect();
        Ok(Arc::new(frame.sort_by(&keys, &self.descending)?))
    }

    /// Binary-merge a sorted delta into the sorted run. Ties take from
    /// the run first — exactly the order a stable sort of
    /// `concat(run-inputs…, delta)` produces, since the run itself is the
    /// stable-sorted prefix by induction.
    fn merge_sorted(&self, run: &Arc<DataFrame>, delta: &Arc<DataFrame>) -> Result<Arc<DataFrame>> {
        if run.num_rows() == 0 {
            return Ok(delta.clone());
        }
        if delta.num_rows() == 0 {
            return Ok(run.clone());
        }
        let (n, d) = (run.num_rows(), delta.num_rows());
        let mut refs: Vec<(u32, u32)> = Vec::with_capacity(n + d);
        let (mut i, mut j) = (0usize, 0usize);
        while i < n && j < d {
            if self.cmp_keyed(run, i, delta, j).is_le() {
                refs.push((0, i as u32));
                i += 1;
            } else {
                refs.push((1, j as u32));
                j += 1;
            }
        }
        refs.extend((i..n).map(|r| (0u32, r as u32)));
        refs.extend((j..d).map(|r| (1u32, r as u32)));
        let mut store = RowStore::new();
        store.push(run.clone());
        store.push(delta.clone());
        Ok(Arc::new(store.gather(&refs)?))
    }

    fn emit(&self) -> Result<Vec<Update>> {
        let all = match &self.sorted {
            Some(f) => f.clone(),
            None => Arc::new(DataFrame::empty(self.meta.schema.clone())),
        };
        let cut = match self.limit {
            Some(n) if n < all.num_rows() => Arc::new(all.head(n)),
            _ => all,
        };
        Ok(vec![Update::snapshot_from_arc(cut, self.progress.clone())])
    }
}

impl Update {
    fn snapshot_from_arc(frame: Arc<DataFrame>, progress: Progress) -> Update {
        Update {
            frame,
            progress,
            kind: UpdateKind::Snapshot,
        }
    }
}

impl Operator for SortOp {
    fn on_update(&mut self, port: usize, update: &Update) -> Result<Vec<Update>> {
        debug_assert_eq!(port, 0);
        self.progress.merge(&update.progress);
        let addition = self.sort_frame(&update.frame)?;
        self.sorted = match (&self.sorted, self.input_kind) {
            // Snapshot input replaces the whole state: full re-sort of
            // the refresh (there is no prior run to merge into).
            (_, UpdateKind::Snapshot) | (None, _) => Some(addition),
            // Delta input: merge the sorted delta into the sorted run.
            (Some(run), UpdateKind::Delta) => Some(self.merge_sorted(run, &addition)?),
        };
        self.emitted = true;
        self.emit()
    }

    fn on_eof(&mut self, _port: usize) -> Result<Vec<Update>> {
        // A query whose upstream produced nothing still has an answer: the
        // empty frame. Guarantee at least one (final) emission.
        if !self.emitted {
            self.emitted = true;
            return self.emit();
        }
        Ok(Vec::new())
    }

    fn meta(&self) -> &EdfMeta {
        &self.meta
    }

    fn state_bytes(&self) -> usize {
        self.sorted.as_ref().map_or(0, |f| f.byte_size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{delta, kv_frame, snapshot};
    use wake_data::Value;

    fn meta(kind: UpdateKind) -> EdfMeta {
        EdfMeta::new(
            kv_frame(vec![], vec![]).schema().clone(),
            vec!["k".into()],
            kind,
        )
    }

    #[test]
    fn accumulates_deltas_and_resorts() {
        let mut op = SortOp::new(
            &meta(UpdateKind::Delta),
            vec!["v".into()],
            vec![true],
            Some(2),
        )
        .unwrap();
        let out = op
            .on_update(0, &delta(kv_frame(vec![1, 2], vec![5.0, 9.0]), 2, 4))
            .unwrap();
        assert_eq!(out[0].frame.num_rows(), 2);
        assert_eq!(out[0].frame.value(0, "v").unwrap(), Value::Float(9.0));
        // New delta displaces one of the current top-2.
        let out = op
            .on_update(0, &delta(kv_frame(vec![3], vec![7.0]), 3, 4))
            .unwrap();
        let f = &out[0].frame;
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.value(0, "v").unwrap(), Value::Float(9.0));
        assert_eq!(f.value(1, "v").unwrap(), Value::Float(7.0));
        assert_eq!(out[0].kind, UpdateKind::Snapshot);
    }

    #[test]
    fn snapshot_input_replaces_state() {
        let mut op = SortOp::new(
            &meta(UpdateKind::Snapshot),
            vec!["v".into()],
            vec![false],
            None,
        )
        .unwrap();
        op.on_update(0, &snapshot(kv_frame(vec![1, 2], vec![5.0, 1.0]), 1, 2))
            .unwrap();
        let out = op
            .on_update(0, &snapshot(kv_frame(vec![9], vec![3.0]), 2, 2))
            .unwrap();
        assert_eq!(out[0].frame.num_rows(), 1);
        assert_eq!(out[0].frame.value(0, "k").unwrap(), Value::Int(9));
    }

    #[test]
    fn pure_limit_without_sort() {
        let mut op = SortOp::new(&meta(UpdateKind::Delta), vec![], vec![], Some(3)).unwrap();
        let out = op
            .on_update(0, &delta(kv_frame(vec![1, 2, 3, 4, 5], vec![0.0; 5]), 5, 5))
            .unwrap();
        assert_eq!(out[0].frame.num_rows(), 3);
    }

    #[test]
    fn eof_without_input_emits_empty_final_state() {
        let mut op = SortOp::new(
            &meta(UpdateKind::Delta),
            vec!["v".into()],
            vec![false],
            Some(3),
        )
        .unwrap();
        let out = op.on_eof(0).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].frame.num_rows(), 0);
        assert_eq!(out[0].kind, UpdateKind::Snapshot);
        // Only once.
        assert!(op.on_eof(0).unwrap().is_empty());
    }

    #[test]
    fn incremental_merge_matches_full_resort() {
        // The sorted-run maintenance is an optimisation, never a
        // semantics change: after every delta, the emitted snapshot must
        // be bit-identical to concat(all deltas) + stable full sort —
        // including desc keys, null keys, heavy ties, and a limit cut.
        // (No NaN cells here: frame equality is derived from `f64` ==,
        // under which a NaN never equals itself; NaN ordering agreement
        // between the merge comparator and `Value::cmp` is pinned by
        // `cmp_rows_matches_value_ordering` in wake-data.)
        use crate::ops::testutil::delta;
        use wake_data::{DataType, Field, Schema};
        let schema = Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Float64),
        ]));
        let frame = |step: i64| {
            let rows: Vec<Vec<Value>> = (0..17)
                .map(|i| {
                    let k = (i * 5 + step) % 7;
                    vec![
                        if k == 0 { Value::Null } else { Value::Int(k) },
                        Value::Float(((i * step) % 5) as f64 * 0.5 - 1.0),
                    ]
                })
                .collect();
            DataFrame::from_rows(schema.clone(), &rows).unwrap()
        };
        let input = EdfMeta::new(schema.clone(), vec![], UpdateKind::Delta);
        for (by, desc, limit) in [
            (vec!["v".to_string()], vec![true], None),
            (
                vec!["k".to_string(), "v".to_string()],
                vec![false, true],
                Some(9),
            ),
            (vec!["k".to_string()], vec![true], Some(5)),
            (vec![], vec![], Some(30)), // pure limit: concat order
        ] {
            let mut op = SortOp::new(&input, by.clone(), desc.clone(), limit).unwrap();
            let mut seen: Vec<DataFrame> = Vec::new();
            for step in 1..=5i64 {
                let f = frame(step);
                seen.push(f.clone());
                let out = op
                    .on_update(0, &delta(f.clone(), step as u64 * 17, 85))
                    .unwrap();
                // Reference: the old operator — concat everything seen,
                // stable sort, cut.
                let refs: Vec<&DataFrame> = seen.iter().collect();
                let all = DataFrame::concat(&refs).unwrap();
                let sorted = if by.is_empty() {
                    all
                } else {
                    let keys: Vec<&str> = by.iter().map(|s| s.as_str()).collect();
                    all.sort_by(&keys, &desc).unwrap()
                };
                let expect = match limit {
                    Some(n) => sorted.head(n),
                    None => sorted,
                };
                assert_eq!(
                    out[0].frame.as_ref(),
                    &expect,
                    "by={by:?} desc={desc:?} limit={limit:?} step {step}"
                );
            }
        }
    }

    #[test]
    fn validation() {
        assert!(SortOp::new(&meta(UpdateKind::Delta), vec!["v".into()], vec![], None).is_err());
        assert!(SortOp::new(
            &meta(UpdateKind::Delta),
            vec!["nope".into()],
            vec![false],
            None
        )
        .is_err());
    }
}

//! Join operator — paper §3.2 "Join".
//!
//! Two physical strategies, selected from the inputs' stream kinds:
//!
//! - **Streaming** (both inputs delta-mode): a *symmetric hash join* — each
//!   side is indexed as it arrives and probes the other side's index, so
//!   matches are emitted as deltas without blocking on either input. This
//!   plays the role of the paper's non-blocking progressive joins (its
//!   merge-join for co-clustered tables and pipelined hash joins, §3.2/§7.3),
//!   trading memory for early output exactly as Table 1 concedes ("may need
//!   more memory").
//! - **Recompute** (either input snapshot-mode): the operator buffers the
//!   latest state of both sides and re-joins in full on every refresh
//!   (Case 2/3 semantics); output is snapshot-mode.
//!
//! Inner, left, semi, and anti joins are supported; semi/anti give the
//! relational decomposition of `EXISTS` / `NOT EXISTS` sub-queries (TPC-H
//! Q4, Q21, Q22). SQL null semantics: null keys never match.
//!
//! ## Hot path and partition parallelism
//!
//! Keys are never materialised as `Row`s. Each arriving frame gets one
//! vectorized [`hash_keys`] pass over its key columns (a `Vec<u64>` of row
//! hashes plus a null mask); the per-side [`KeyIndex`] maps hash →
//! candidate rows and candidates are confirmed by typed column comparison
//! ([`keys_equal`]), so hash collisions cannot produce false matches.
//! Output frames are assembled with typed columnar gathers over the
//! buffered frames.
//!
//! The whole keyed state (`RowStore` sides, `KeyIndex`es, matched flags)
//! lives in `S` hash-range [`JoinShard`]s (see [`crate::ops::sharded`]).
//! The already-computed row hashes route each frame's rows to shards via
//! per-shard selection vectors; build and probe run per shard over
//! shard-local sub-frames, and emission concatenates the shard outputs —
//! shards are disjoint by key, so no cross-shard dedup is needed. Rows
//! with null key components ride in shard 0. `S = 1` (the
//! `Parallelism(1)` plan) skips the scatter and is byte-identical to the
//! unsharded operator.

use crate::meta::EdfMeta;
use crate::ops::key_index::KeyIndex;
use crate::ops::sharded::{ShardPlan, ShardWork, ShardedState};
use crate::ops::{Operator, RowRef, RowStore};
use crate::progress::Progress;
use crate::update::{Update, UpdateKind};
use crate::Result;
use std::sync::Arc;
use wake_data::hash::{hash_keys, keys_equal, KeyHashes};
use wake_data::partition::shard_selections;
use wake_data::{DataError, DataFrame, Schema};

/// Join flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    /// All left rows; unmatched get nulls on the right.
    Left,
    /// Left rows with at least one match (left columns only).
    Semi,
    /// Left rows with no match (left columns only).
    Anti,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Streaming,
    Recompute,
}

/// Immutable join configuration shared by the operator shell and every
/// shard (so shard workers can run on their own threads).
struct JoinConfig {
    kind: JoinKind,
    mode: Mode,
    left_on: Vec<usize>,
    right_on: Vec<usize>,
    left_kind: UpdateKind,
    right_kind: UpdateKind,
    left_schema: Arc<Schema>,
    right_schema: Arc<Schema>,
    out_schema: Arc<Schema>,
}

/// One hash range's worth of join state: both sides' buffered rows and
/// indexes, plus the per-left-row bookkeeping for left/semi/anti kinds.
struct JoinShard {
    cfg: Arc<JoinConfig>,
    left: RowStore,
    right: RowStore,
    left_index: KeyIndex,
    right_index: KeyIndex,
    /// Streaming only: per-left-frame key hashes (aligned with `left`).
    left_hashes: Vec<KeyHashes>,
    /// Streaming only: per-left-frame matched flags (Left/Semi/Anti).
    matched: Vec<Vec<bool>>,
    right_eof: bool,
}

/// Work dispatched to one shard. Frames are the shard-local sub-frames
/// (the full frame when `S = 1`); hashes are the matching sub-hashes.
enum JoinTask {
    StreamLeft {
        frame: Arc<DataFrame>,
        hashes: KeyHashes,
    },
    StreamRight {
        frame: Arc<DataFrame>,
        hashes: KeyHashes,
    },
    /// Right input exhausted: flush left-join nulls / resolve anti rows.
    RightEof,
    /// Recompute mode: buffer one side's (sub-)frame.
    Buffer { port: usize, frame: Arc<DataFrame> },
    /// Recompute mode: re-join the buffered state in full.
    Recompute,
}

/// One shard's partial result: the rows it contributes to the operator's
/// next output frame plus its current buffered-state footprint.
struct JoinPartial {
    frame: DataFrame,
    state_bytes: usize,
}

impl JoinShard {
    fn new(cfg: Arc<JoinConfig>) -> Self {
        JoinShard {
            cfg,
            left: RowStore::new(),
            right: RowStore::new(),
            left_index: KeyIndex::new(),
            right_index: KeyIndex::new(),
            left_hashes: Vec::new(),
            matched: Vec::new(),
            right_eof: false,
        }
    }

    /// Rows from the right index whose keys truly equal the key at
    /// `probe[ri]` of a left-side frame; copied into `out` (cleared first).
    /// One typed comparison per distinct key in the bucket.
    fn right_matches(&self, probe: &DataFrame, ri: usize, hash: u64, out: &mut Vec<RowRef>) {
        out.clear();
        out.extend_from_slice(self.right_index.matches(hash, |(fi, rri)| {
            keys_equal(
                probe,
                ri,
                &self.cfg.left_on,
                self.right.frame(fi),
                rri as usize,
                &self.cfg.right_on,
            )
        }));
    }

    /// Rows from the left index whose keys truly equal the key at
    /// `probe[ri]` of a right-side frame; copied into `out` (cleared first).
    fn left_matches(&self, probe: &DataFrame, ri: usize, hash: u64, out: &mut Vec<RowRef>) {
        out.clear();
        out.extend_from_slice(self.left_index.matches(hash, |(fi, lri)| {
            keys_equal(
                probe,
                ri,
                &self.cfg.right_on,
                self.left.frame(fi),
                lri as usize,
                &self.cfg.left_on,
            )
        }));
    }

    /// Build an output frame from matched row pairs (`None` right = nulls)
    /// using typed columnar gathers.
    fn build_pairs(&self, pairs: &[(RowRef, Option<RowRef>)]) -> Result<DataFrame> {
        let schema = self.cfg.out_schema.clone();
        if pairs.is_empty() {
            return Ok(DataFrame::empty(schema));
        }
        let lrefs: Vec<RowRef> = pairs.iter().map(|&(l, _)| l).collect();
        let mut columns = self.left.gather_columns(&lrefs)?;
        if schema.len() > self.cfg.left_schema.len() {
            let rrefs: Vec<Option<RowRef>> = pairs.iter().map(|&(_, r)| r).collect();
            columns.extend(
                self.right
                    .gather_opt_columns(&rrefs, &self.cfg.right_schema)?,
            );
        }
        DataFrame::new(schema, columns)
    }

    /// Build a left-columns-only frame (semi/anti output).
    fn build_left_only(&self, refs: &[RowRef]) -> Result<DataFrame> {
        if refs.is_empty() {
            return Ok(DataFrame::empty(self.cfg.out_schema.clone()));
        }
        self.left.gather(refs)
    }

    // ----- streaming mode -----

    fn stream_left(&mut self, frame: &Arc<DataFrame>, hashes: KeyHashes) -> Result<DataFrame> {
        let kind = self.cfg.kind;
        let fi = self.left.push(frame.clone());
        self.matched.push(vec![false; frame.num_rows()]);
        let mut pairs: Vec<(RowRef, Option<RowRef>)> = Vec::new();
        let mut left_only: Vec<RowRef> = Vec::new();
        let mut eq: Vec<RowRef> = Vec::new();
        for ri in 0..frame.num_rows() {
            let lref = (fi, ri as u32);
            let has_null = hashes.is_null(ri);
            let h = hashes.hashes[ri];
            if !has_null {
                // Anti joins never probe the left index (their EOF flush
                // re-probes the right index), and after right-side EOF no
                // future right row can probe it either — skip maintaining
                // it in both cases.
                if kind != JoinKind::Anti && !self.right_eof {
                    let (store, left_on) = (&self.left, &self.cfg.left_on);
                    self.left_index.insert(h, lref, |(ofi, ori)| {
                        keys_equal(frame, ri, left_on, store.frame(ofi), ori as usize, left_on)
                    });
                }
                self.right_matches(frame, ri, h, &mut eq);
            } else {
                eq.clear();
            }
            match kind {
                JoinKind::Inner | JoinKind::Left => {
                    if !eq.is_empty() {
                        self.matched[fi as usize][ri] = true;
                        for &r in &eq {
                            pairs.push((lref, Some(r)));
                        }
                    } else if kind == JoinKind::Left && self.right_eof {
                        self.matched[fi as usize][ri] = true;
                        pairs.push((lref, None));
                    }
                }
                JoinKind::Semi => {
                    if !eq.is_empty() {
                        self.matched[fi as usize][ri] = true;
                        left_only.push(lref);
                    }
                }
                JoinKind::Anti => {
                    if self.right_eof && eq.is_empty() {
                        self.matched[fi as usize][ri] = true; // "handled"
                        left_only.push(lref);
                    }
                }
            }
        }
        // Per-frame hashes are only re-read by the Anti EOF flush; don't
        // retain them for the other kinds.
        if kind == JoinKind::Anti {
            self.left_hashes.push(hashes);
        }
        match kind {
            JoinKind::Inner | JoinKind::Left => self.build_pairs(&pairs),
            JoinKind::Semi | JoinKind::Anti => self.build_left_only(&left_only),
        }
    }

    fn stream_right(&mut self, frame: &Arc<DataFrame>, hashes: KeyHashes) -> Result<DataFrame> {
        let kind = self.cfg.kind;
        let fi = self.right.push(frame.clone());
        let mut pairs: Vec<(RowRef, Option<RowRef>)> = Vec::new();
        let mut left_only: Vec<RowRef> = Vec::new();
        let mut eq: Vec<RowRef> = Vec::new();
        for ri in 0..frame.num_rows() {
            if hashes.is_null(ri) {
                continue;
            }
            let h = hashes.hashes[ri];
            let rref = (fi, ri as u32);
            let (store, right_on) = (&self.right, &self.cfg.right_on);
            self.right_index.insert(h, rref, |(ofi, ori)| {
                keys_equal(
                    frame,
                    ri,
                    right_on,
                    store.frame(ofi),
                    ori as usize,
                    right_on,
                )
            });
            // Anti joins resolve purely against the right index at EOF;
            // probing the (empty) left index per right row is wasted work.
            if kind != JoinKind::Anti {
                self.left_matches(frame, ri, h, &mut eq);
            }
            match kind {
                JoinKind::Inner | JoinKind::Left => {
                    for &l in &eq {
                        self.matched[l.0 as usize][l.1 as usize] = true;
                        pairs.push((l, Some(rref)));
                    }
                }
                JoinKind::Semi => {
                    for &l in &eq {
                        let seen = &mut self.matched[l.0 as usize][l.1 as usize];
                        if !*seen {
                            *seen = true;
                            left_only.push(l);
                        }
                    }
                }
                JoinKind::Anti => {}
            }
        }
        match kind {
            JoinKind::Inner | JoinKind::Left => self.build_pairs(&pairs),
            JoinKind::Semi | JoinKind::Anti => self.build_left_only(&left_only),
        }
    }

    fn stream_right_eof(&mut self) -> Result<DataFrame> {
        self.right_eof = true;
        // Left join: flush accumulated unmatched rows with null right side;
        // anti join: flush rows that now provably have no match.
        let mut flush: Vec<RowRef> = Vec::new();
        for (fi, flags) in self.matched.iter().enumerate() {
            for (ri, &m) in flags.iter().enumerate() {
                if !m {
                    flush.push((fi as u32, ri as u32));
                }
            }
        }
        match self.cfg.kind {
            JoinKind::Left => {
                for &(fi, ri) in &flush {
                    self.matched[fi as usize][ri as usize] = true;
                }
                let pairs: Vec<(RowRef, Option<RowRef>)> =
                    flush.into_iter().map(|l| (l, None)).collect();
                self.build_pairs(&pairs)
            }
            JoinKind::Anti => {
                // A pending row is anti iff its key misses the right index.
                let mut anti: Vec<RowRef> = Vec::new();
                let mut eq: Vec<RowRef> = Vec::new();
                for &(fi, ri) in &flush {
                    let frame = self.left.frame(fi).clone();
                    let hashes = &self.left_hashes[fi as usize];
                    if hashes.is_null(ri as usize) {
                        anti.push((fi, ri));
                    } else {
                        self.right_matches(
                            &frame,
                            ri as usize,
                            hashes.hashes[ri as usize],
                            &mut eq,
                        );
                        if eq.is_empty() {
                            anti.push((fi, ri));
                        }
                    }
                }
                for (fi, ri) in flush {
                    self.matched[fi as usize][ri as usize] = true;
                }
                self.build_left_only(&anti)
            }
            _ => Ok(DataFrame::empty(self.cfg.out_schema.clone())),
        }
    }

    // ----- recompute mode -----

    fn buffer(&mut self, port: usize, frame: Arc<DataFrame>) {
        let (store, kind) = if port == 0 {
            (&mut self.left, self.cfg.left_kind)
        } else {
            (&mut self.right, self.cfg.right_kind)
        };
        if kind == UpdateKind::Snapshot {
            store.clear();
        }
        store.push(frame);
    }

    fn recompute(&mut self) -> Result<DataFrame> {
        // Index the right side, scan the left side.
        self.right_index.clear();
        for (fi, frame) in self.right.frames().iter().enumerate() {
            let hashes = hash_keys(frame, &self.cfg.right_on);
            let (store, right_on) = (&self.right, &self.cfg.right_on);
            for ri in 0..frame.num_rows() {
                if !hashes.is_null(ri) {
                    self.right_index.insert(
                        hashes.hashes[ri],
                        (fi as u32, ri as u32),
                        |(ofi, ori)| {
                            keys_equal(
                                frame,
                                ri,
                                right_on,
                                store.frame(ofi),
                                ori as usize,
                                right_on,
                            )
                        },
                    );
                }
            }
        }
        let mut pairs: Vec<(RowRef, Option<RowRef>)> = Vec::new();
        let mut left_only: Vec<RowRef> = Vec::new();
        let mut eq: Vec<RowRef> = Vec::new();
        let left_frames: Vec<Arc<DataFrame>> = self.left.frames().to_vec();
        for (fi, frame) in left_frames.iter().enumerate() {
            let hashes = hash_keys(frame, &self.cfg.left_on);
            for ri in 0..frame.num_rows() {
                let lref = (fi as u32, ri as u32);
                if hashes.is_null(ri) {
                    eq.clear();
                } else {
                    self.right_matches(frame, ri, hashes.hashes[ri], &mut eq);
                }
                match (self.cfg.kind, eq.is_empty()) {
                    (JoinKind::Inner, false) | (JoinKind::Left, false) => {
                        pairs.extend(eq.iter().map(|&r| (lref, Some(r))))
                    }
                    (JoinKind::Inner, true) => {}
                    (JoinKind::Left, true) => pairs.push((lref, None)),
                    (JoinKind::Semi, false) => left_only.push(lref),
                    (JoinKind::Semi, true) => {}
                    (JoinKind::Anti, true) => left_only.push(lref),
                    (JoinKind::Anti, false) => {}
                }
            }
        }
        let out = match self.cfg.kind {
            JoinKind::Inner | JoinKind::Left => self.build_pairs(&pairs)?,
            JoinKind::Semi | JoinKind::Anti => {
                if left_only.is_empty() {
                    DataFrame::empty(self.cfg.out_schema.clone())
                } else {
                    self.left.gather(&left_only)?
                }
            }
        };
        // Recompute rebuilds the index from scratch each refresh; drop it
        // so buffered state stays proportional to the inputs.
        self.right_index.clear();
        Ok(out)
    }

    fn state_bytes(&self) -> usize {
        self.left.byte_size()
            + self.right.byte_size()
            + self.left_index.byte_size()
            + self.right_index.byte_size()
            + self
                .left_hashes
                .iter()
                .map(|h| h.hashes.len() * 8)
                .sum::<usize>()
    }
}

impl ShardWork for JoinShard {
    type Task = JoinTask;
    type Out = Result<JoinPartial>;

    fn run(&mut self, task: JoinTask) -> Result<JoinPartial> {
        let frame = match task {
            JoinTask::StreamLeft { frame, hashes } => self.stream_left(&frame, hashes)?,
            JoinTask::StreamRight { frame, hashes } => self.stream_right(&frame, hashes)?,
            JoinTask::RightEof => self.stream_right_eof()?,
            JoinTask::Buffer { port, frame } => {
                self.buffer(port, frame);
                DataFrame::empty(self.cfg.out_schema.clone())
            }
            JoinTask::Recompute => self.recompute()?,
        };
        Ok(JoinPartial {
            frame,
            state_bytes: self.state_bytes(),
        })
    }
}

/// Hash-based join over two edf inputs (port 0 = left, port 1 = right).
/// The keyed state is hash-range sharded; see the module docs.
pub struct JoinOp {
    cfg: Arc<JoinConfig>,
    state: ShardedState<JoinShard>,
    /// Last-reported buffered bytes per shard (shard state may live on
    /// worker threads, so the footprint is tracked via task results).
    shard_bytes: Vec<usize>,
    left_eof: bool,
    right_eof: bool,
    emitted_any: bool,
    progress: Progress,
    meta: EdfMeta,
}

impl JoinOp {
    pub fn new(
        left: &EdfMeta,
        right: &EdfMeta,
        left_on: Vec<String>,
        right_on: Vec<String>,
        kind: JoinKind,
    ) -> Result<Self> {
        if left_on.len() != right_on.len() || left_on.is_empty() {
            return Err(DataError::Invalid(
                "join keys must be non-empty and pairwise aligned".into(),
            ));
        }
        let left_idx = left_on
            .iter()
            .map(|k| left.schema.index_of(k))
            .collect::<Result<Vec<_>>>()?;
        let right_idx = right_on
            .iter()
            .map(|k| right.schema.index_of(k))
            .collect::<Result<Vec<_>>>()?;
        for (l, r) in left_idx.iter().zip(&right_idx) {
            let (lf, rf) = (&left.schema.fields()[*l], &right.schema.fields()[*r]);
            let compatible =
                lf.dtype == rf.dtype || (lf.dtype.is_numeric() && rf.dtype.is_numeric());
            if !compatible {
                return Err(DataError::TypeMismatch {
                    expected: format!("join key {} : {}", lf.name, lf.dtype),
                    found: format!("{} : {}", rf.name, rf.dtype),
                });
            }
        }
        let out_schema = match kind {
            JoinKind::Inner | JoinKind::Left => Arc::new(left.schema.join(&right.schema)),
            JoinKind::Semi | JoinKind::Anti => left.schema.clone(),
        };
        let streaming = left.kind == UpdateKind::Delta && right.kind == UpdateKind::Delta;
        let out_kind = if streaming {
            UpdateKind::Delta
        } else {
            UpdateKind::Snapshot
        };
        // Probe-side (left) primary key survives FK-style joins (§4.3 /
        // Fig 6 note: "The key is still orderkey").
        let meta = EdfMeta::new(out_schema.clone(), left.primary_key.clone(), out_kind);
        let cfg = Arc::new(JoinConfig {
            kind,
            mode: if streaming {
                Mode::Streaming
            } else {
                Mode::Recompute
            },
            left_on: left_idx,
            right_on: right_idx,
            left_kind: left.kind,
            right_kind: right.kind,
            left_schema: left.schema.clone(),
            right_schema: right.schema.clone(),
            out_schema,
        });
        Ok(JoinOp {
            state: ShardedState::new(ShardPlan::serial().mode, vec![JoinShard::new(cfg.clone())]),
            shard_bytes: vec![0],
            cfg,
            left_eof: false,
            right_eof: false,
            emitted_any: false,
            progress: Progress::new(),
            meta,
        })
    }

    /// Re-plan the operator onto `plan.shards` hash-range shards executed
    /// in `plan.mode`. Must be called before any update is consumed.
    pub fn with_shards(mut self, plan: ShardPlan) -> Self {
        debug_assert!(
            !self.emitted_any && self.progress.t() == 0.0,
            "with_shards must precede execution"
        );
        self.state = ShardedState::new(
            plan.mode,
            (0..plan.shards.max(1))
                .map(|_| JoinShard::new(self.cfg.clone()))
                .collect(),
        );
        self.shard_bytes = vec![0; plan.shards.max(1)];
        self
    }

    /// Split one frame into per-shard stream tasks by key hash. With one
    /// shard, the original frame and hashes pass through untouched.
    fn stream_tasks(
        &self,
        frame: &Arc<DataFrame>,
        key_cols: &[usize],
        make: impl Fn(Arc<DataFrame>, KeyHashes) -> JoinTask,
    ) -> Vec<Option<JoinTask>> {
        let hashes = hash_keys(frame, key_cols);
        let shards = self.state.num_shards();
        if shards == 1 {
            return vec![Some(make(frame.clone(), hashes))];
        }
        shard_selections(&hashes, shards)
            .into_iter()
            .map(|sel| {
                if sel.is_empty() {
                    None
                } else {
                    let sub = Arc::new(frame.select(&sel));
                    let sub_hashes = hashes.take(&sel);
                    Some(make(sub, sub_hashes))
                }
            })
            .collect()
    }

    /// Per-shard buffer tasks for recompute mode. Snapshot-kind sides must
    /// reach *every* shard (a refresh clears stale state even where the
    /// new version has no rows); delta sides skip empty sub-frames.
    fn buffer_tasks(&self, port: usize, frame: &Arc<DataFrame>) -> Vec<Option<JoinTask>> {
        let (key_cols, side_kind) = if port == 0 {
            (&self.cfg.left_on, self.cfg.left_kind)
        } else {
            (&self.cfg.right_on, self.cfg.right_kind)
        };
        let shards = self.state.num_shards();
        if shards == 1 {
            return vec![Some(JoinTask::Buffer {
                port,
                frame: frame.clone(),
            })];
        }
        let hashes = hash_keys(frame, key_cols);
        shard_selections(&hashes, shards)
            .into_iter()
            .map(|sel| {
                if sel.is_empty() && side_kind != UpdateKind::Snapshot {
                    None
                } else {
                    Some(JoinTask::Buffer {
                        port,
                        frame: Arc::new(frame.select(&sel)),
                    })
                }
            })
            .collect()
    }

    /// Scatter tasks, join, fold the partials: record per-shard footprints
    /// and concatenate the shard outputs (key-disjoint, so plain concat).
    fn run_merged(&mut self, tasks: Vec<Option<JoinTask>>) -> Result<DataFrame> {
        let outs = self.state.run(tasks)?;
        let mut frames: Vec<DataFrame> = Vec::new();
        for (s, out) in outs.into_iter().enumerate() {
            if let Some(partial) = out {
                let partial = partial?;
                self.shard_bytes[s] = partial.state_bytes;
                if partial.frame.num_rows() > 0 {
                    frames.push(partial.frame);
                }
            }
        }
        match frames.len() {
            0 => Ok(DataFrame::empty(self.cfg.out_schema.clone())),
            1 => Ok(frames.pop().expect("one frame")),
            _ => {
                let refs: Vec<&DataFrame> = frames.iter().collect();
                DataFrame::concat(&refs)
            }
        }
    }

    fn emit(&mut self, frame: DataFrame) -> Vec<Update> {
        if frame.num_rows() == 0 && self.meta.kind == UpdateKind::Delta {
            return Vec::new();
        }
        self.emitted_any = true;
        vec![Update {
            frame: Arc::new(frame),
            progress: self.progress.clone(),
            kind: self.meta.kind,
        }]
    }
}

impl Operator for JoinOp {
    fn on_update(&mut self, port: usize, update: &Update) -> Result<Vec<Update>> {
        self.progress.merge(&update.progress);
        let out = match self.cfg.mode {
            Mode::Streaming => {
                let tasks = match port {
                    0 => self.stream_tasks(&update.frame, &self.cfg.left_on, |frame, hashes| {
                        JoinTask::StreamLeft { frame, hashes }
                    }),
                    1 => self.stream_tasks(&update.frame, &self.cfg.right_on, |frame, hashes| {
                        JoinTask::StreamRight { frame, hashes }
                    }),
                    _ => return Err(DataError::Invalid(format!("join has 2 ports, got {port}"))),
                };
                self.run_merged(tasks)?
            }
            Mode::Recompute => {
                if port > 1 {
                    return Err(DataError::Invalid(format!("join has 2 ports, got {port}")));
                }
                let buffers = self.buffer_tasks(port, &update.frame);
                self.run_merged(buffers)?;
                let shards = self.state.num_shards();
                self.run_merged((0..shards).map(|_| Some(JoinTask::Recompute)).collect())?
            }
        };
        Ok(self.emit(out))
    }

    fn on_eof(&mut self, port: usize) -> Result<Vec<Update>> {
        let mut out = match port {
            0 => {
                self.left_eof = true;
                Vec::new()
            }
            1 => {
                self.right_eof = true;
                match self.cfg.mode {
                    Mode::Streaming => {
                        let shards = self.state.num_shards();
                        let flush = self
                            .run_merged((0..shards).map(|_| Some(JoinTask::RightEof)).collect())?;
                        self.emit(flush)
                    }
                    // Recompute mode already reflects the final right state.
                    Mode::Recompute => Vec::new(),
                }
            }
            _ => return Err(DataError::Invalid(format!("join has 2 ports, got {port}"))),
        };
        // Snapshot-mode joins must publish at least one (possibly empty)
        // state so downstream consumers learn the final answer even when
        // no input ever arrived.
        if self.left_eof && self.right_eof && !self.emitted_any {
            if let Mode::Recompute = self.cfg.mode {
                let shards = self.state.num_shards();
                let full =
                    self.run_merged((0..shards).map(|_| Some(JoinTask::Recompute)).collect())?;
                out.extend(self.emit(full));
            }
        }
        Ok(out)
    }

    fn meta(&self) -> &EdfMeta {
        &self.meta
    }

    fn state_bytes(&self) -> usize {
        self.shard_bytes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::sharded::ShardMode;
    use crate::ops::testutil::kv_frame;
    use std::sync::Arc;
    use wake_data::{Column, DataType, Field, Value};

    fn left_meta() -> EdfMeta {
        EdfMeta::new(
            kv_frame(vec![], vec![]).schema().clone(),
            vec!["k".into()],
            UpdateKind::Delta,
        )
    }

    fn right_frame(ks: Vec<i64>, names: Vec<&str>) -> DataFrame {
        let schema = Arc::new(Schema::new(vec![
            Field::new("rk", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]));
        DataFrame::new(
            schema,
            vec![Column::from_i64(ks), Column::from_str_iter(names)],
        )
        .unwrap()
    }

    fn right_meta() -> EdfMeta {
        EdfMeta::new(
            right_frame(vec![], vec![]).schema().clone(),
            vec!["rk".into()],
            UpdateKind::Delta,
        )
    }

    fn upd_l(ks: Vec<i64>, vs: Vec<f64>, p: u64, tot: u64) -> Update {
        Update::delta(kv_frame(ks, vs), Progress::single(0, p, tot))
    }

    fn upd_r(ks: Vec<i64>, names: Vec<&str>, p: u64, tot: u64) -> Update {
        Update::delta(right_frame(ks, names), Progress::single(1, p, tot))
    }

    fn join(kind: JoinKind) -> JoinOp {
        JoinOp::new(
            &left_meta(),
            &right_meta(),
            vec!["k".into()],
            vec!["rk".into()],
            kind,
        )
        .unwrap()
    }

    #[test]
    fn symmetric_streaming_inner_join() {
        let mut op = join(JoinKind::Inner);
        assert_eq!(op.meta().kind, UpdateKind::Delta);
        // Left arrives first: no matches yet, no emission.
        let out = op
            .on_update(0, &upd_l(vec![1, 2], vec![10.0, 20.0], 2, 4))
            .unwrap();
        assert!(out.is_empty());
        // Right delta matches one left row.
        let out = op
            .on_update(1, &upd_r(vec![2, 9], vec!["b", "z"], 2, 4))
            .unwrap();
        assert_eq!(out.len(), 1);
        let f = &out[0].frame;
        assert_eq!(f.num_rows(), 1);
        assert_eq!(f.value(0, "k").unwrap(), Value::Int(2));
        assert_eq!(f.value(0, "name").unwrap(), Value::str("b"));
        // Later left delta joins against buffered right.
        let out = op.on_update(0, &upd_l(vec![9], vec![90.0], 3, 4)).unwrap();
        assert_eq!(out[0].frame.value(0, "name").unwrap(), Value::str("z"));
        // Combined progress covers both sources.
        assert!((out[0].t() - 5.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_keys_produce_cross_matches() {
        let mut op = join(JoinKind::Inner);
        op.on_update(0, &upd_l(vec![1, 1], vec![1.0, 2.0], 2, 2))
            .unwrap();
        let out = op
            .on_update(1, &upd_r(vec![1, 1], vec!["x", "y"], 2, 2))
            .unwrap();
        assert_eq!(out[0].frame.num_rows(), 4); // 2 × 2
    }

    #[test]
    fn left_join_flushes_unmatched_at_right_eof() {
        let mut op = join(JoinKind::Left);
        op.on_update(0, &upd_l(vec![1, 2], vec![1.0, 2.0], 2, 3))
            .unwrap();
        op.on_update(1, &upd_r(vec![1], vec!["a"], 1, 1)).unwrap();
        let out = op.on_eof(1).unwrap();
        assert_eq!(out.len(), 1);
        let f = &out[0].frame;
        assert_eq!(f.num_rows(), 1);
        assert_eq!(f.value(0, "k").unwrap(), Value::Int(2));
        assert!(f.value(0, "name").unwrap().is_null());
        // Left rows arriving after right EOF resolve immediately.
        let out = op.on_update(0, &upd_l(vec![3], vec![3.0], 3, 3)).unwrap();
        assert!(out[0].frame.value(0, "name").unwrap().is_null());
    }

    #[test]
    fn semi_join_emits_each_left_row_once() {
        let mut op = join(JoinKind::Semi);
        op.on_update(0, &upd_l(vec![1, 2], vec![1.0, 2.0], 2, 2))
            .unwrap();
        let out = op.on_update(1, &upd_r(vec![1], vec!["a"], 1, 2)).unwrap();
        assert_eq!(out[0].frame.num_rows(), 1);
        assert_eq!(out[0].frame.schema().names(), vec!["k", "v"]);
        // A second matching right row must NOT re-emit the left row.
        let out = op.on_update(1, &upd_r(vec![1], vec!["dup"], 2, 2)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn anti_join_waits_for_right_eof() {
        let mut op = join(JoinKind::Anti);
        op.on_update(0, &upd_l(vec![1, 2, 3], vec![0.0; 3], 3, 5))
            .unwrap();
        let out = op.on_update(1, &upd_r(vec![2], vec!["b"], 1, 1)).unwrap();
        assert!(out.is_empty()); // cannot prove non-existence yet
        let out = op.on_eof(1).unwrap();
        let f = &out[0].frame;
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.value(0, "k").unwrap(), Value::Int(1));
        assert_eq!(f.value(1, "k").unwrap(), Value::Int(3));
        // Post-EOF left rows resolve instantly.
        let out = op.on_update(0, &upd_l(vec![2], vec![0.0], 4, 5)).unwrap();
        assert!(out.is_empty()); // matched -> dropped
        let out = op.on_update(0, &upd_l(vec![7], vec![0.0], 5, 5)).unwrap();
        assert_eq!(out[0].frame.num_rows(), 1);
    }

    #[test]
    fn recompute_mode_for_snapshot_inputs() {
        let snap_left = EdfMeta::new(
            kv_frame(vec![], vec![]).schema().clone(),
            vec!["k".into()],
            UpdateKind::Snapshot,
        );
        let mut op = JoinOp::new(
            &snap_left,
            &right_meta(),
            vec!["k".into()],
            vec!["rk".into()],
            JoinKind::Inner,
        )
        .unwrap();
        assert_eq!(op.meta().kind, UpdateKind::Snapshot);
        // Snapshot left state v1.
        let s1 = Update::snapshot(
            kv_frame(vec![1, 2], vec![1.0, 2.0]),
            Progress::single(0, 1, 2),
        );
        let out = op.on_update(0, &s1).unwrap();
        assert_eq!(out[0].frame.num_rows(), 0); // right empty so far
        op.on_update(1, &upd_r(vec![1, 2], vec!["a", "b"], 2, 2))
            .unwrap();
        // Refreshed snapshot drops key 1: the re-join must too.
        let s2 = Update::snapshot(kv_frame(vec![2], vec![2.5]), Progress::single(0, 2, 2));
        let out = op.on_update(0, &s2).unwrap();
        let f = &out[0].frame;
        assert_eq!(f.num_rows(), 1);
        assert_eq!(f.value(0, "name").unwrap(), Value::str("b"));
        assert_eq!(out[0].kind, UpdateKind::Snapshot);
    }

    #[test]
    fn null_keys_never_match() {
        let mut op = join(JoinKind::Inner);
        let schema = kv_frame(vec![], vec![]).schema().clone();
        let left = DataFrame::from_rows(
            schema,
            &[
                vec![Value::Null, Value::Float(1.0)],
                vec![Value::Int(1), Value::Float(2.0)],
            ],
        )
        .unwrap();
        op.on_update(0, &Update::delta(left, Progress::single(0, 2, 2)))
            .unwrap();
        let out = op.on_update(1, &upd_r(vec![1], vec!["a"], 1, 1)).unwrap();
        assert_eq!(out[0].frame.num_rows(), 1);
    }

    #[test]
    fn schema_collision_renames_right() {
        let meta_dup = EdfMeta::new(
            kv_frame(vec![], vec![]).schema().clone(),
            vec!["k".into()],
            UpdateKind::Delta,
        );
        let op = JoinOp::new(
            &meta_dup.clone(),
            &meta_dup,
            vec!["k".into()],
            vec!["k".into()],
            JoinKind::Inner,
        )
        .unwrap();
        assert_eq!(
            op.meta().schema.names(),
            vec!["k", "v", "k_right", "v_right"]
        );
    }

    #[test]
    fn key_validation() {
        assert!(JoinOp::new(&left_meta(), &right_meta(), vec![], vec![], JoinKind::Inner).is_err());
        assert!(JoinOp::new(
            &left_meta(),
            &right_meta(),
            vec!["missing".into()],
            vec!["rk".into()],
            JoinKind::Inner
        )
        .is_err());
        // v (Float64) vs name (Utf8) is incompatible.
        assert!(JoinOp::new(
            &left_meta(),
            &right_meta(),
            vec!["v".into()],
            vec!["name".into()],
            JoinKind::Inner
        )
        .is_err());
    }

    #[test]
    fn cross_type_numeric_keys_match() {
        // Int64 left key joins Float64 right key: 2 == 2.0.
        let lmeta = left_meta();
        let rschema = Arc::new(Schema::new(vec![
            Field::new("rk", DataType::Float64),
            Field::new("name", DataType::Utf8),
        ]));
        let rmeta = EdfMeta::new(rschema.clone(), vec!["rk".into()], UpdateKind::Delta);
        let mut op = JoinOp::new(
            &lmeta,
            &rmeta,
            vec!["k".into()],
            vec!["rk".into()],
            JoinKind::Inner,
        )
        .unwrap();
        op.on_update(0, &upd_l(vec![1, 2], vec![0.0, 0.0], 2, 2))
            .unwrap();
        let rf = DataFrame::new(
            rschema,
            vec![
                Column::from_f64(vec![2.0, 3.5]),
                Column::from_str_iter(["two", "x"]),
            ],
        )
        .unwrap();
        let out = op
            .on_update(1, &Update::delta(rf, Progress::single(1, 2, 2)))
            .unwrap();
        assert_eq!(out[0].frame.num_rows(), 1);
        assert_eq!(out[0].frame.value(0, "name").unwrap(), Value::str("two"));
    }

    /// Multiset of rows for order-insensitive comparison.
    fn rows_sorted(f: &DataFrame) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = (0..f.num_rows()).map(|i| f.row(i)).collect();
        rows.sort();
        rows
    }

    #[test]
    fn sharded_join_matches_unsharded_for_all_kinds_and_modes() {
        // Streaming: feed the same update sequence (null keys included)
        // into S=1 and S∈{2,3,8} operators under every shard mode and
        // require multiset-identical emissions step by step.
        let schema = kv_frame(vec![], vec![]).schema().clone();
        let lframe = |ks: &[Option<i64>]| {
            DataFrame::from_rows(
                schema.clone(),
                &ks.iter()
                    .enumerate()
                    .map(|(i, k)| vec![k.map_or(Value::Null, Value::Int), Value::Float(i as f64)])
                    .collect::<Vec<_>>(),
            )
            .unwrap()
        };
        let left_seq = [
            lframe(&[Some(1), Some(2), None, Some(3), Some(4)]),
            lframe(&[Some(2), None, Some(9)]),
        ];
        let right_seq = [
            right_frame(vec![2, 3, 3], vec!["a", "b", "c"]),
            right_frame(vec![9, 100], vec!["z", "q"]),
        ];
        for kind in [
            JoinKind::Inner,
            JoinKind::Left,
            JoinKind::Semi,
            JoinKind::Anti,
        ] {
            for shards in [2usize, 3, 8] {
                for mode in [ShardMode::Inline, ShardMode::Scoped, ShardMode::Pool] {
                    let mut reference = join(kind);
                    let mut sharded = join(kind).with_shards(ShardPlan::new(shards, mode));
                    let mut step = 0u64;
                    let mut feed = |op: &mut JoinOp, port: usize, f: &DataFrame| {
                        step += 1;
                        let u = Update::delta(f.clone(), Progress::single(port as u32, step, 10));
                        op.on_update(port, &u).unwrap()
                    };
                    for (lf, rf) in left_seq.iter().zip(&right_seq) {
                        let a = feed(&mut reference, 0, lf);
                        let b = feed(&mut sharded, 0, lf);
                        let concat = |outs: Vec<Update>| {
                            outs.iter()
                                .flat_map(|u| rows_sorted(&u.frame))
                                .collect::<Vec<_>>()
                        };
                        let (mut am, mut bm) = (concat(a), concat(b));
                        am.sort();
                        bm.sort();
                        assert_eq!(am, bm, "{kind:?} S={shards} {mode:?} left step");
                        let a = feed(&mut reference, 1, rf);
                        let b = feed(&mut sharded, 1, rf);
                        let (mut am, mut bm) = (concat(a), concat(b));
                        am.sort();
                        bm.sort();
                        assert_eq!(am, bm, "{kind:?} S={shards} {mode:?} right step");
                    }
                    let a = reference.on_eof(1).unwrap();
                    let b = sharded.on_eof(1).unwrap();
                    let flat = |outs: Vec<Update>| {
                        let mut rows: Vec<Vec<Value>> =
                            outs.iter().flat_map(|u| rows_sorted(&u.frame)).collect();
                        rows.sort();
                        rows
                    };
                    assert_eq!(flat(a), flat(b), "{kind:?} S={shards} {mode:?} eof flush");
                    assert!(sharded.state_bytes() > 0);
                }
            }
        }
    }
}

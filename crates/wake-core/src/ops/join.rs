//! Join operator — paper §3.2 "Join".
//!
//! Two physical strategies, selected from the inputs' stream kinds:
//!
//! - **Streaming** (both inputs delta-mode): a *symmetric hash join* — each
//!   side is indexed as it arrives and probes the other side's index, so
//!   matches are emitted as deltas without blocking on either input. This
//!   plays the role of the paper's non-blocking progressive joins (its
//!   merge-join for co-clustered tables and pipelined hash joins, §3.2/§7.3),
//!   trading memory for early output exactly as Table 1 concedes ("may need
//!   more memory").
//! - **Recompute** (either input snapshot-mode): the operator buffers the
//!   latest state of both sides and re-joins in full on every refresh
//!   (Case 2/3 semantics); output is snapshot-mode.
//!
//! Inner, left, semi, and anti joins are supported; semi/anti give the
//! relational decomposition of `EXISTS` / `NOT EXISTS` sub-queries (TPC-H
//! Q4, Q21, Q22). SQL null semantics: null keys never match.
//!
//! ## Hot path and partition parallelism
//!
//! Keys are never materialised as `Row`s. Each arriving frame gets one
//! vectorized [`hash_keys`] pass over its key columns (a `Vec<u64>` of row
//! hashes plus a null mask); the per-side [`KeyIndex`] maps hash →
//! candidate rows and candidates are confirmed by typed column comparison
//! ([`keys_equal`]), so hash collisions cannot produce false matches.
//! Output frames are assembled with typed columnar gathers over the
//! buffered frames.
//!
//! The whole keyed state (`RowStore` sides, `KeyIndex`es, matched flags)
//! lives in `S` hash-range [`JoinShard`]s (see [`crate::ops::sharded`]).
//! The already-computed row hashes route each frame's rows to shards via
//! per-shard selection vectors; build and probe run per shard over
//! shard-local sub-frames, and emission concatenates the shard outputs —
//! shards are disjoint by key, so no cross-shard dedup is needed. Rows
//! with null key components ride in shard 0. `S = 1` (the
//! `Parallelism(1)` plan) skips the scatter and is byte-identical to the
//! unsharded operator.

use crate::meta::EdfMeta;
use crate::ops::key_index::KeyIndex;
use crate::ops::sharded::{ShardPlan, ShardWork, ShardedState};
use crate::ops::{Operator, RowRef, RowStore};
use crate::progress::Progress;
use crate::update::{Update, UpdateKind};
use crate::Result;
use std::sync::Arc;
use wake_data::hash::{hash_keys, keys_equal, KeyHashes};
use wake_data::partition::shard_selections;
use wake_data::{DataError, DataFrame, Schema};
use wake_store::colfile::{Chunk, RunWriter};
use wake_store::governor::{SpillEnv, SpillPlan};
use wake_store::partition::sub_selections;

/// Join flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    /// All left rows; unmatched get nulls on the right.
    Left,
    /// Left rows with at least one match (left columns only).
    Semi,
    /// Left rows with no match (left columns only).
    Anti,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Streaming,
    Recompute,
}

/// Immutable join configuration shared by the operator shell and every
/// shard (so shard workers can run on their own threads).
struct JoinConfig {
    kind: JoinKind,
    mode: Mode,
    left_on: Vec<usize>,
    right_on: Vec<usize>,
    left_kind: UpdateKind,
    right_kind: UpdateKind,
    left_schema: Arc<Schema>,
    right_schema: Arc<Schema>,
    out_schema: Arc<Schema>,
}

/// The in-memory join state of one spill partition (the whole shard when
/// spilling is off): both sides' buffered rows and indexes, plus the
/// per-left-row bookkeeping for left/semi/anti kinds.
struct JoinCore {
    cfg: Arc<JoinConfig>,
    left: RowStore,
    right: RowStore,
    left_index: KeyIndex,
    right_index: KeyIndex,
    /// Streaming only: per-left-frame key hashes (aligned with `left`).
    left_hashes: Vec<KeyHashes>,
    /// Streaming only: per-left-frame matched flags (Left/Semi/Anti).
    matched: Vec<Vec<bool>>,
    right_eof: bool,
}

/// Work dispatched to one shard. Frames are the shard-local sub-frames
/// (the full frame when `S = 1`); hashes are the matching sub-hashes.
enum JoinTask {
    StreamLeft {
        frame: Arc<DataFrame>,
        hashes: KeyHashes,
    },
    StreamRight {
        frame: Arc<DataFrame>,
        hashes: KeyHashes,
    },
    /// Right input exhausted: flush left-join nulls / resolve anti rows.
    RightEof,
    /// Both inputs exhausted (spill mode only): resolve the deferred
    /// matches of drained partitions that buffered post-EOF left rows.
    FinalFlush,
    /// Recompute mode: buffer one side's (sub-)frame.
    Buffer { port: usize, frame: Arc<DataFrame> },
    /// Recompute mode: re-join the buffered state in full.
    Recompute,
}

/// One shard's partial result: the rows it contributes to the operator's
/// next output frame plus its current buffered-state footprint.
struct JoinPartial {
    frame: DataFrame,
    state_bytes: usize,
}

impl JoinCore {
    fn new(cfg: Arc<JoinConfig>) -> Self {
        JoinCore {
            cfg,
            left: RowStore::new(),
            right: RowStore::new(),
            left_index: KeyIndex::new(),
            right_index: KeyIndex::new(),
            left_hashes: Vec::new(),
            matched: Vec::new(),
            right_eof: false,
        }
    }

    /// Rows from the right index whose keys truly equal the key at
    /// `probe[ri]` of a left-side frame; copied into `out` (cleared first).
    /// One typed comparison per distinct key in the bucket.
    fn right_matches(&self, probe: &DataFrame, ri: usize, hash: u64, out: &mut Vec<RowRef>) {
        out.clear();
        out.extend_from_slice(self.right_index.matches(hash, |(fi, rri)| {
            keys_equal(
                probe,
                ri,
                &self.cfg.left_on,
                self.right.frame(fi),
                rri as usize,
                &self.cfg.right_on,
            )
        }));
    }

    /// Rows from the left index whose keys truly equal the key at
    /// `probe[ri]` of a right-side frame; copied into `out` (cleared first).
    fn left_matches(&self, probe: &DataFrame, ri: usize, hash: u64, out: &mut Vec<RowRef>) {
        out.clear();
        out.extend_from_slice(self.left_index.matches(hash, |(fi, lri)| {
            keys_equal(
                probe,
                ri,
                &self.cfg.right_on,
                self.left.frame(fi),
                lri as usize,
                &self.cfg.left_on,
            )
        }));
    }

    /// Build an output frame from matched row pairs (`None` right = nulls)
    /// using typed columnar gathers.
    fn build_pairs(&self, pairs: &[(RowRef, Option<RowRef>)]) -> Result<DataFrame> {
        let schema = self.cfg.out_schema.clone();
        if pairs.is_empty() {
            return Ok(DataFrame::empty(schema));
        }
        let lrefs: Vec<RowRef> = pairs.iter().map(|&(l, _)| l).collect();
        let mut columns = self.left.gather_columns(&lrefs)?;
        if schema.len() > self.cfg.left_schema.len() {
            let rrefs: Vec<Option<RowRef>> = pairs.iter().map(|&(_, r)| r).collect();
            columns.extend(
                self.right
                    .gather_opt_columns(&rrefs, &self.cfg.right_schema)?,
            );
        }
        DataFrame::new(schema, columns)
    }

    /// Build a left-columns-only frame (semi/anti output).
    fn build_left_only(&self, refs: &[RowRef]) -> Result<DataFrame> {
        if refs.is_empty() {
            return Ok(DataFrame::empty(self.cfg.out_schema.clone()));
        }
        self.left.gather(refs)
    }

    // ----- streaming mode -----

    fn stream_left(&mut self, frame: &Arc<DataFrame>, hashes: KeyHashes) -> Result<DataFrame> {
        self.stream_left_ext(frame, hashes, None, true)
    }

    /// [`stream_left`](Self::stream_left) with the two extra controls the
    /// spill-resolution replay needs: `prior` seeds the frame's matched
    /// flags (rows whose emission already happened in an earlier epoch —
    /// semi joins must not re-emit them, left joins must not null-flush
    /// them), and `index_left = false` skips left-index maintenance (the
    /// replay feeds rights before lefts, so the left index is never
    /// probed and indexing epoch-0 lefts would fabricate already-emitted
    /// pairs when epoch-0 rights stream in). The live path passes
    /// `(None, true)` and is byte-identical to the pre-spill operator.
    fn stream_left_ext(
        &mut self,
        frame: &Arc<DataFrame>,
        hashes: KeyHashes,
        prior: Option<Vec<bool>>,
        index_left: bool,
    ) -> Result<DataFrame> {
        let kind = self.cfg.kind;
        let fi = self.left.push(frame.clone());
        match prior {
            Some(flags) => {
                debug_assert_eq!(flags.len(), frame.num_rows());
                self.matched.push(flags);
            }
            None => self.matched.push(vec![false; frame.num_rows()]),
        }
        let mut pairs: Vec<(RowRef, Option<RowRef>)> = Vec::new();
        let mut left_only: Vec<RowRef> = Vec::new();
        let mut eq: Vec<RowRef> = Vec::new();
        for ri in 0..frame.num_rows() {
            let lref = (fi, ri as u32);
            let has_null = hashes.is_null(ri);
            let h = hashes.hashes[ri];
            if !has_null {
                // Anti joins never probe the left index (their EOF flush
                // re-probes the right index), and after right-side EOF no
                // future right row can probe it either — skip maintaining
                // it in both cases.
                if kind != JoinKind::Anti && !self.right_eof && index_left {
                    let (store, left_on) = (&self.left, &self.cfg.left_on);
                    self.left_index.insert(h, lref, |(ofi, ori)| {
                        keys_equal(frame, ri, left_on, store.frame(ofi), ori as usize, left_on)
                    });
                }
                self.right_matches(frame, ri, h, &mut eq);
            } else {
                eq.clear();
            }
            match kind {
                JoinKind::Inner | JoinKind::Left => {
                    if !eq.is_empty() {
                        self.matched[fi as usize][ri] = true;
                        for &r in &eq {
                            pairs.push((lref, Some(r)));
                        }
                    } else if kind == JoinKind::Left
                        && self.right_eof
                        && !self.matched[fi as usize][ri]
                    {
                        self.matched[fi as usize][ri] = true;
                        pairs.push((lref, None));
                    }
                }
                JoinKind::Semi => {
                    // The matched gate only bites during spill replay
                    // (prior-epoch emissions); live rows start unmatched.
                    if !eq.is_empty() && !self.matched[fi as usize][ri] {
                        self.matched[fi as usize][ri] = true;
                        left_only.push(lref);
                    }
                }
                JoinKind::Anti => {
                    if self.right_eof && eq.is_empty() {
                        self.matched[fi as usize][ri] = true; // "handled"
                        left_only.push(lref);
                    }
                }
            }
        }
        // Per-frame hashes are only re-read by the Anti EOF flush; don't
        // retain them for the other kinds.
        if kind == JoinKind::Anti {
            self.left_hashes.push(hashes);
        }
        match kind {
            JoinKind::Inner | JoinKind::Left => self.build_pairs(&pairs),
            JoinKind::Semi | JoinKind::Anti => self.build_left_only(&left_only),
        }
    }

    fn stream_right(&mut self, frame: &Arc<DataFrame>, hashes: KeyHashes) -> Result<DataFrame> {
        let kind = self.cfg.kind;
        let fi = self.right.push(frame.clone());
        let mut pairs: Vec<(RowRef, Option<RowRef>)> = Vec::new();
        let mut left_only: Vec<RowRef> = Vec::new();
        let mut eq: Vec<RowRef> = Vec::new();
        for ri in 0..frame.num_rows() {
            if hashes.is_null(ri) {
                continue;
            }
            let h = hashes.hashes[ri];
            let rref = (fi, ri as u32);
            let (store, right_on) = (&self.right, &self.cfg.right_on);
            self.right_index.insert(h, rref, |(ofi, ori)| {
                keys_equal(
                    frame,
                    ri,
                    right_on,
                    store.frame(ofi),
                    ori as usize,
                    right_on,
                )
            });
            // Anti joins resolve purely against the right index at EOF;
            // probing the (empty) left index per right row is wasted work.
            if kind != JoinKind::Anti {
                self.left_matches(frame, ri, h, &mut eq);
            }
            match kind {
                JoinKind::Inner | JoinKind::Left => {
                    for &l in &eq {
                        self.matched[l.0 as usize][l.1 as usize] = true;
                        pairs.push((l, Some(rref)));
                    }
                }
                JoinKind::Semi => {
                    for &l in &eq {
                        let seen = &mut self.matched[l.0 as usize][l.1 as usize];
                        if !*seen {
                            *seen = true;
                            left_only.push(l);
                        }
                    }
                }
                JoinKind::Anti => {}
            }
        }
        match kind {
            JoinKind::Inner | JoinKind::Left => self.build_pairs(&pairs),
            JoinKind::Semi | JoinKind::Anti => self.build_left_only(&left_only),
        }
    }

    fn stream_right_eof(&mut self) -> Result<DataFrame> {
        self.right_eof = true;
        // Left join: flush accumulated unmatched rows with null right side;
        // anti join: flush rows that now provably have no match.
        let mut flush: Vec<RowRef> = Vec::new();
        for (fi, flags) in self.matched.iter().enumerate() {
            for (ri, &m) in flags.iter().enumerate() {
                if !m {
                    flush.push((fi as u32, ri as u32));
                }
            }
        }
        match self.cfg.kind {
            JoinKind::Left => {
                for &(fi, ri) in &flush {
                    self.matched[fi as usize][ri as usize] = true;
                }
                let pairs: Vec<(RowRef, Option<RowRef>)> =
                    flush.into_iter().map(|l| (l, None)).collect();
                self.build_pairs(&pairs)
            }
            JoinKind::Anti => {
                // A pending row is anti iff its key misses the right index.
                let mut anti: Vec<RowRef> = Vec::new();
                let mut eq: Vec<RowRef> = Vec::new();
                for &(fi, ri) in &flush {
                    let frame = self.left.frame(fi).clone();
                    let hashes = &self.left_hashes[fi as usize];
                    if hashes.is_null(ri as usize) {
                        anti.push((fi, ri));
                    } else {
                        self.right_matches(
                            &frame,
                            ri as usize,
                            hashes.hashes[ri as usize],
                            &mut eq,
                        );
                        if eq.is_empty() {
                            anti.push((fi, ri));
                        }
                    }
                }
                for (fi, ri) in flush {
                    self.matched[fi as usize][ri as usize] = true;
                }
                self.build_left_only(&anti)
            }
            _ => Ok(DataFrame::empty(self.cfg.out_schema.clone())),
        }
    }

    // ----- recompute mode -----

    fn buffer(&mut self, port: usize, frame: Arc<DataFrame>) {
        let (store, kind) = if port == 0 {
            (&mut self.left, self.cfg.left_kind)
        } else {
            (&mut self.right, self.cfg.right_kind)
        };
        if kind == UpdateKind::Snapshot {
            store.clear();
        }
        store.push(frame);
    }

    fn recompute(&mut self) -> Result<DataFrame> {
        // Index the right side, scan the left side.
        self.right_index.clear();
        for (fi, frame) in self.right.frames().iter().enumerate() {
            let hashes = hash_keys(frame, &self.cfg.right_on);
            let (store, right_on) = (&self.right, &self.cfg.right_on);
            for ri in 0..frame.num_rows() {
                if !hashes.is_null(ri) {
                    self.right_index.insert(
                        hashes.hashes[ri],
                        (fi as u32, ri as u32),
                        |(ofi, ori)| {
                            keys_equal(
                                frame,
                                ri,
                                right_on,
                                store.frame(ofi),
                                ori as usize,
                                right_on,
                            )
                        },
                    );
                }
            }
        }
        let mut pairs: Vec<(RowRef, Option<RowRef>)> = Vec::new();
        let mut left_only: Vec<RowRef> = Vec::new();
        let mut eq: Vec<RowRef> = Vec::new();
        let left_frames: Vec<Arc<DataFrame>> = self.left.frames().to_vec();
        for (fi, frame) in left_frames.iter().enumerate() {
            let hashes = hash_keys(frame, &self.cfg.left_on);
            for ri in 0..frame.num_rows() {
                let lref = (fi as u32, ri as u32);
                if hashes.is_null(ri) {
                    eq.clear();
                } else {
                    self.right_matches(frame, ri, hashes.hashes[ri], &mut eq);
                }
                match (self.cfg.kind, eq.is_empty()) {
                    (JoinKind::Inner, false) | (JoinKind::Left, false) => {
                        pairs.extend(eq.iter().map(|&r| (lref, Some(r))))
                    }
                    (JoinKind::Inner, true) => {}
                    (JoinKind::Left, true) => pairs.push((lref, None)),
                    (JoinKind::Semi, false) => left_only.push(lref),
                    (JoinKind::Semi, true) => {}
                    (JoinKind::Anti, true) => left_only.push(lref),
                    (JoinKind::Anti, false) => {}
                }
            }
        }
        let out = match self.cfg.kind {
            JoinKind::Inner | JoinKind::Left => self.build_pairs(&pairs)?,
            JoinKind::Semi | JoinKind::Anti => {
                if left_only.is_empty() {
                    DataFrame::empty(self.cfg.out_schema.clone())
                } else {
                    self.left.gather(&left_only)?
                }
            }
        };
        // Recompute rebuilds the index from scratch each refresh; drop it
        // so buffered state stays proportional to the inputs.
        self.right_index.clear();
        Ok(out)
    }

    fn state_bytes(&self) -> usize {
        // Full accounting: buffered frames, both hash indexes, retained
        // key hashes *including their null-mask side tables*, and the
        // per-left-row matched flags (the last two were previously
        // uncounted, so the governor's budget math under-reported
        // anti-join and left-join state).
        self.left.byte_size()
            + self.right.byte_size()
            + self.left_index.byte_size()
            + self.right_index.byte_size()
            + self
                .left_hashes
                .iter()
                .map(|h| h.byte_size())
                .sum::<usize>()
            + self.matched.iter().map(|m| m.len()).sum::<usize>()
    }

    /// Serialize the streaming state for eviction: one chunk per buffered
    /// left frame (with its hashes and matched flags — the epoch boundary
    /// the resolution replay needs) and one per right frame (with
    /// hashes). Hashes not retained in memory are recomputed; they are
    /// content-deterministic, so the replay sees the original values.
    fn eviction_chunks_streaming(&self) -> (Vec<Chunk>, Vec<Chunk>) {
        let lefts = self
            .left
            .frames()
            .iter()
            .enumerate()
            .filter(|(_, f)| f.num_rows() > 0)
            .map(|(fi, frame)| {
                let hashes = if self.cfg.kind == JoinKind::Anti {
                    self.left_hashes[fi].clone()
                } else {
                    hash_keys(frame, &self.cfg.left_on)
                };
                Chunk {
                    frame: frame.clone(),
                    hashes: Some(hashes),
                    flags: Some(self.matched[fi].clone()),
                    extra: Vec::new(),
                }
            })
            .collect();
        let rights = self
            .right
            .frames()
            .iter()
            .filter(|f| f.num_rows() > 0)
            .map(|frame| Chunk::with_hashes(frame.clone(), hash_keys(frame, &self.cfg.right_on)))
            .collect();
        (lefts, rights)
    }

    /// Serialize the recompute-mode buffered sides (no flags or hashes —
    /// `recompute` rehashes from scratch every refresh anyway).
    fn eviction_chunks_buffered(&self) -> (Vec<Chunk>, Vec<Chunk>) {
        let side = |store: &RowStore| {
            store
                .frames()
                .iter()
                .filter(|f| f.num_rows() > 0)
                .map(|f| Chunk::frame_only(f.clone()))
                .collect::<Vec<_>>()
        };
        (side(&self.left), side(&self.right))
    }
}

// ---------------------------------------------------------------------------
// Spill partitions (grace-hash join below the shard level)
// ---------------------------------------------------------------------------

/// One spill partition of a join shard.
// A shard holds at most `fanout` (≤ 8 by default) of these, so the
// StreamSpill variant's four inline run handles (~450 B) cost a few KB
// per shard — not worth an extra allocation per run access.
#[allow(clippy::large_enum_variant)]
enum JoinPart {
    /// Resident: the live symmetric-hash (or recompute) core (boxed —
    /// the core is much larger than the spilled variants' run handles).
    Mem(Box<JoinCore>),
    /// Streaming-mode eviction before right EOF. The epoch split is the
    /// heart of spilled symmetric-hash correctness: `l0`/`r0` hold the
    /// rows that were resident together — every `L0×R0` match was
    /// already emitted (and `l0` carries the matched flags saying which
    /// rows those were) — while `l1`/`r1` collect post-eviction arrivals
    /// whose matches were never emitted. The resolution replay emits
    /// exactly `L0×R1 ∪ L1×R0 ∪ L1×R1`: all pairs minus the pre-spill
    /// emissions.
    StreamSpill {
        l0: RunWriter,
        r0: RunWriter,
        l1: RunWriter,
        r1: RunWriter,
    },
    /// Streaming after right EOF: the right side is complete on disk and
    /// every buffered left row has been resolved. Later-arriving left
    /// rows buffer into `pending_left` and resolve at the final flush.
    Drained {
        rights: Vec<RunWriter>,
        pending_left: RunWriter,
    },
    /// Recompute-mode eviction: both buffered sides on disk; every
    /// refresh rehydrates and re-joins this hash subrange.
    BufSpill { left: RunWriter, right: RunWriter },
}

/// One hash range's worth of join state: a single resident core, or
/// (under a memory budget) `fanout` hash-subrange partitions, evicted
/// largest-first when the shard exceeds its byte budget and re-joined
/// out-of-core (recursively re-partitioned when still too big).
struct JoinShard {
    cfg: Arc<JoinConfig>,
    op_shards: usize,
    spill: Option<SpillEnv>,
    parts: Vec<JoinPart>,
    /// The governor was poisoned (spill device persistently failed) and
    /// this shard has suspended the budget; recompute-mode partitions
    /// rehydrated resident, streaming ones stay on their (readable) runs.
    degraded: bool,
}

/// A stream-spill chunk's key hashes. Every chunk on the streaming spill
/// path is written with hashes; one read back without them means the run
/// bytes are not what this query wrote — surface it typed, not a panic.
fn chunk_hashes(c: &Chunk) -> Result<KeyHashes> {
    c.hashes.clone().ok_or_else(|| {
        DataError::Invalid("stream-spill chunk is missing its key hashes".to_string())
    })
}

/// Scatter chunks into `fanout` sub-partitions by the hash digit at
/// `depth` (recursive grace-hash split). Flags scatter with their rows.
fn scatter_chunks(
    chunks: Vec<Chunk>,
    op_shards: usize,
    fanout: usize,
    depth: usize,
) -> Result<Vec<Vec<Chunk>>> {
    let mut out: Vec<Vec<Chunk>> = (0..fanout).map(|_| Vec::new()).collect();
    for c in chunks {
        let hashes = chunk_hashes(&c)?;
        let sels = sub_selections(&hashes.hashes, op_shards, fanout, depth);
        for (p, sel) in sels.iter().enumerate() {
            if sel.is_empty() {
                continue;
            }
            if sel.len() == c.frame.num_rows() {
                out[p].push(c);
                break; // all rows in one partition; other sels are empty
            }
            out[p].push(Chunk {
                frame: Arc::new(c.frame.select(sel)),
                hashes: Some(hashes.take(sel)),
                flags: c
                    .flags
                    .as_ref()
                    .map(|f| sel.iter().map(|&i| f[i as usize]).collect()),
                extra: Vec::new(),
            });
        }
    }
    Ok(out)
}

/// Resolve one spilled streaming partition: emit exactly the matches not
/// already emitted before eviction (see [`JoinPart::StreamSpill`]), plus
/// the right-EOF flush (left-join nulls, anti rows). Recurses into
/// `fanout` sub-partitions while the runs exceed the shard budget —
/// the multi-pass half of grace hash.
#[allow(clippy::too_many_arguments)]
fn resolve_stream(
    cfg: &Arc<JoinConfig>,
    env: &SpillEnv,
    op_shards: usize,
    depth: usize,
    l0: Vec<Chunk>,
    r0: Vec<Chunk>,
    l1: Vec<Chunk>,
    r1: Vec<Chunk>,
    out: &mut Vec<DataFrame>,
) -> Result<()> {
    let total: usize = [&l0, &r0, &l1, &r1]
        .iter()
        .flat_map(|v| v.iter())
        .map(|c| c.byte_size())
        .sum();
    if total > env.shard_budget() && depth < env.max_depth {
        let mut l0s = scatter_chunks(l0, op_shards, env.fanout, depth)?;
        let mut r0s = scatter_chunks(r0, op_shards, env.fanout, depth)?;
        let mut l1s = scatter_chunks(l1, op_shards, env.fanout, depth)?;
        let mut r1s = scatter_chunks(r1, op_shards, env.fanout, depth)?;
        for p in 0..env.fanout {
            resolve_stream(
                cfg,
                env,
                op_shards,
                depth + 1,
                std::mem::take(&mut l0s[p]),
                std::mem::take(&mut r0s[p]),
                std::mem::take(&mut l1s[p]),
                std::mem::take(&mut r1s[p]),
                out,
            )?;
        }
        return Ok(());
    }
    // In-memory epoch replay. Feed order is load-bearing:
    //   R1 first (builds the post-eviction right index; probes nothing),
    //   L0 with prior flags, *without* left indexing → pairs L0×R1 only,
    //   R0 (probes the — deliberately empty — left index; no pairs),
    //   L1 → pairs L1×(R0 ∪ R1),
    //   right EOF → null-flush / anti resolution over all lefts.
    let mut core = JoinCore::new(cfg.clone());
    let push = |f: DataFrame, out: &mut Vec<DataFrame>| {
        if f.num_rows() > 0 {
            out.push(f)
        }
    };
    for c in &r1 {
        let f = core.stream_right(&c.frame, chunk_hashes(c)?)?;
        push(f, out);
    }
    for c in &l0 {
        let f = core.stream_left_ext(&c.frame, chunk_hashes(c)?, c.flags.clone(), false)?;
        push(f, out);
    }
    for c in &r0 {
        let f = core.stream_right(&c.frame, chunk_hashes(c)?)?;
        push(f, out);
    }
    for c in &l1 {
        let f = core.stream_left_ext(&c.frame, chunk_hashes(c)?, None, false)?;
        push(f, out);
    }
    let f = core.stream_right_eof()?;
    push(f, out);
    Ok(())
}

impl JoinShard {
    fn new(cfg: Arc<JoinConfig>, op_shards: usize, spill: Option<SpillEnv>) -> Self {
        let parts = match &spill {
            None => vec![JoinPart::Mem(Box::new(JoinCore::new(cfg.clone())))],
            Some(env) => (0..env.fanout)
                .map(|_| JoinPart::Mem(Box::new(JoinCore::new(cfg.clone()))))
                .collect(),
        };
        JoinShard {
            cfg,
            op_shards: op_shards.max(1),
            spill,
            parts,
            degraded: false,
        }
    }

    /// The spill env backing an already-spilled partition. A spilled part
    /// without an env would be a construction bug — but it is on the I/O
    /// path, so it surfaces typed rather than panicking a worker.
    fn spill_env(&self) -> Result<SpillEnv> {
        self.spill
            .clone()
            .ok_or_else(|| DataError::Invalid("spilled join partition without a spill env".into()))
    }

    fn new_run(&self, env: &SpillEnv, tag: &str) -> RunWriter {
        RunWriter::new(env.dir.clone(), env.governor.clone(), tag)
    }

    fn run_from_chunks(&self, env: &SpillEnv, tag: &str, chunks: &[Chunk]) -> Result<RunWriter> {
        let mut run = self.new_run(env, tag);
        for c in chunks {
            run.push(c)?;
        }
        run.flush()?;
        Ok(run)
    }

    /// Route one streaming (sub-)frame to partitions; resident partitions
    /// emit immediately, spilled ones defer.
    fn stream_side(
        &mut self,
        frame: &Arc<DataFrame>,
        hashes: KeyHashes,
        is_left: bool,
    ) -> Result<Vec<DataFrame>> {
        let mut outs = Vec::new();
        let Some(env) = self.spill.clone() else {
            let JoinPart::Mem(core) = &mut self.parts[0] else {
                unreachable!("unspilled shard is always resident");
            };
            outs.push(if is_left {
                core.stream_left(frame, hashes)?
            } else {
                core.stream_right(frame, hashes)?
            });
            return Ok(outs);
        };
        let sels = sub_selections(&hashes.hashes, self.op_shards, env.fanout, 0);
        for (p, sel) in sels.iter().enumerate() {
            if sel.is_empty() {
                continue;
            }
            let (sub, sub_hashes) = if sel.len() == frame.num_rows() {
                (frame.clone(), hashes.clone())
            } else {
                (Arc::new(frame.select(sel)), hashes.take(sel))
            };
            match &mut self.parts[p] {
                JoinPart::Mem(core) => outs.push(if is_left {
                    core.stream_left(&sub, sub_hashes)?
                } else {
                    core.stream_right(&sub, sub_hashes)?
                }),
                JoinPart::StreamSpill { l1, r1, .. } => {
                    let run = if is_left { l1 } else { r1 };
                    run.push(&Chunk::with_hashes(sub, sub_hashes))?;
                }
                JoinPart::Drained {
                    rights,
                    pending_left,
                } => {
                    if is_left {
                        pending_left.push(&Chunk::with_hashes(sub, sub_hashes))?;
                    } else {
                        // Right rows cannot follow right EOF; keep them
                        // anyway so a misbehaving source loses no data.
                        debug_assert!(false, "right row after right EOF");
                        let run = rights.last_mut().ok_or_else(|| {
                            DataError::Invalid("drained join partition has no right run".into())
                        })?;
                        run.push(&Chunk::with_hashes(sub, sub_hashes))?;
                    }
                }
                JoinPart::BufSpill { .. } => unreachable!("buffer spill in streaming mode"),
            }
        }
        self.enforce_budget()?;
        Ok(outs)
    }

    /// Right EOF: resident cores flush; spilled partitions resolve their
    /// deferred matches (recursively if oversized) and become drained.
    fn right_eof_all(&mut self) -> Result<Vec<DataFrame>> {
        let mut outs = Vec::new();
        for p in 0..self.parts.len() {
            match &mut self.parts[p] {
                JoinPart::Mem(core) => {
                    let f = core.stream_right_eof()?;
                    if f.num_rows() > 0 {
                        outs.push(f);
                    }
                }
                JoinPart::StreamSpill { .. } => {
                    let env = self.spill_env()?;
                    let placeholder = JoinPart::Mem(Box::new(JoinCore::new(self.cfg.clone())));
                    let JoinPart::StreamSpill { l0, r0, l1, r1 } =
                        std::mem::replace(&mut self.parts[p], placeholder)
                    else {
                        unreachable!()
                    };
                    resolve_stream(
                        &self.cfg,
                        &env,
                        self.op_shards,
                        1,
                        l0.read_all()?,
                        r0.read_all()?,
                        l1.read_all()?,
                        r1.read_all()?,
                        &mut outs,
                    )?;
                    // Keep the complete right side on disk for left rows
                    // that may still arrive; l0/l1 are fully resolved and
                    // their files delete on drop.
                    let pending_left = self.new_run(&env, "join-pl");
                    self.parts[p] = JoinPart::Drained {
                        rights: vec![r0, r1],
                        pending_left,
                    };
                }
                JoinPart::Drained { .. } => {}
                JoinPart::BufSpill { .. } => unreachable!("buffer spill in streaming mode"),
            }
        }
        Ok(outs)
    }

    /// Both EOFs: resolve drained partitions' pending left rows (they
    /// probe the full on-disk right side, then take the right-EOF flush).
    fn final_flush_all(&mut self) -> Result<Vec<DataFrame>> {
        let mut outs = Vec::new();
        let spill = self.spill.clone();
        for part in &mut self.parts {
            if let JoinPart::Drained {
                rights,
                pending_left,
            } = part
            {
                if pending_left.is_empty() {
                    continue;
                }
                let env = spill.clone().ok_or_else(|| {
                    DataError::Invalid("spilled join partition without a spill env".into())
                })?;
                let mut right_chunks = Vec::new();
                for r in rights.iter() {
                    right_chunks.extend(r.read_all()?);
                }
                let pending = pending_left.read_all()?;
                pending_left.clear();
                resolve_stream(
                    &self.cfg,
                    &env,
                    self.op_shards,
                    1,
                    Vec::new(),
                    right_chunks,
                    pending,
                    Vec::new(),
                    &mut outs,
                )?;
            }
        }
        Ok(outs)
    }

    /// Recompute-mode buffering with partition routing. Snapshot-kind
    /// sides clear every partition (a refresh invalidates stale state
    /// even where the new version has no rows).
    fn buffer_all(&mut self, port: usize, frame: &Arc<DataFrame>) -> Result<()> {
        let Some(env) = self.spill.clone() else {
            let JoinPart::Mem(core) = &mut self.parts[0] else {
                unreachable!()
            };
            core.buffer(port, frame.clone());
            return Ok(());
        };
        let (key_cols, side_kind) = if port == 0 {
            (&self.cfg.left_on, self.cfg.left_kind)
        } else {
            (&self.cfg.right_on, self.cfg.right_kind)
        };
        let snapshot = side_kind == UpdateKind::Snapshot;
        let hashes = hash_keys(frame, key_cols);
        let sels = sub_selections(&hashes.hashes, self.op_shards, env.fanout, 0);
        for (p, sel) in sels.iter().enumerate() {
            let sub: Arc<DataFrame> = if sel.len() == frame.num_rows() {
                frame.clone()
            } else {
                Arc::new(frame.select(sel))
            };
            match &mut self.parts[p] {
                JoinPart::Mem(core) => {
                    if snapshot || !sel.is_empty() {
                        core.buffer(port, sub);
                    }
                }
                JoinPart::BufSpill { left, right } => {
                    let run = if port == 0 { left } else { right };
                    if snapshot {
                        run.clear();
                    }
                    if !sel.is_empty() {
                        run.push(&Chunk::frame_only(sub))?;
                    }
                }
                _ => unreachable!("streaming spill in recompute mode"),
            }
        }
        self.enforce_budget()?;
        Ok(())
    }

    /// Recompute every partition: resident cores re-join in place,
    /// spilled ones rehydrate into a scratch core and re-join one
    /// subrange at a time (memory stays ~one partition).
    fn recompute_all(&mut self) -> Result<Vec<DataFrame>> {
        let mut outs = Vec::new();
        for part in &mut self.parts {
            match part {
                JoinPart::Mem(core) => {
                    let f = core.recompute()?;
                    if f.num_rows() > 0 {
                        outs.push(f);
                    }
                }
                JoinPart::BufSpill { left, right } => {
                    let mut core = JoinCore::new(self.cfg.clone());
                    for c in left.read_all()? {
                        core.left.push(c.frame);
                    }
                    for c in right.read_all()? {
                        core.right.push(c.frame);
                    }
                    let f = core.recompute()?;
                    if f.num_rows() > 0 {
                        outs.push(f);
                    }
                }
                _ => unreachable!("streaming spill in recompute mode"),
            }
        }
        Ok(outs)
    }

    /// The spill device failed persistently: suspend the budget and bring
    /// back what can safely come back. Recompute-mode (`BufSpill`)
    /// partitions rehydrate to resident cores — their runs are plain
    /// buffered rows. Streaming partitions (`StreamSpill`/`Drained`) stay
    /// on their runs: the epoch split exists precisely because a
    /// mid-stream partition cannot be reconstructed resident without
    /// re-emitting already-emitted matches, and their resolution path
    /// only *reads* — which a full device (`ENOSPC`) still serves, and a
    /// persistently unreadable one fails typed. New arrivals to those
    /// partitions accumulate in the runs' pending buffers (writes
    /// soft-fail into memory), so no data is lost either way.
    fn degrade(&mut self) -> Result<()> {
        // Flag first: a failed rehydration read below must not leave the
        // shard trying to evict to the dead device forever.
        self.degraded = true;
        for part in &mut self.parts {
            if let JoinPart::BufSpill { left, right } = part {
                let mut core = JoinCore::new(self.cfg.clone());
                for c in left.read_all()? {
                    core.left.push(c.frame);
                }
                for c in right.read_all()? {
                    core.right.push(c.frame);
                }
                left.clear();
                right.clear();
                *part = JoinPart::Mem(Box::new(core));
            }
        }
        Ok(())
    }

    /// While over the shard budget, evict the largest resident partition
    /// (the governor's eviction policy).
    fn enforce_budget(&mut self) -> Result<()> {
        let Some(env) = self.spill.clone() else {
            return Ok(());
        };
        if self.degraded {
            return Ok(());
        }
        if env.governor.is_poisoned() {
            return self.degrade();
        }
        while self.state_bytes() > env.shard_budget() {
            if env.governor.is_poisoned() {
                // An eviction's flush just soft-failed into its pending
                // buffer: the loop can never shed bytes, stop evicting.
                return self.degrade();
            }
            let victim = self
                .parts
                .iter()
                .enumerate()
                .filter_map(|(i, p)| match p {
                    JoinPart::Mem(core) => {
                        let b = core.state_bytes();
                        (b > 0).then_some((i, b))
                    }
                    _ => None,
                })
                .max_by_key(|&(_, bytes)| bytes);
            let Some((i, _)) = victim else {
                break; // everything spillable is already on disk
            };
            let JoinPart::Mem(core) = &self.parts[i] else {
                unreachable!()
            };
            let new_part = match self.cfg.mode {
                Mode::Streaming => {
                    let (lefts, rights) = core.eviction_chunks_streaming();
                    if core.right_eof {
                        // Right side complete and all lefts resolved:
                        // only the rights matter for future left rows.
                        JoinPart::Drained {
                            rights: vec![self.run_from_chunks(&env, "join-r", &rights)?],
                            pending_left: self.new_run(&env, "join-pl"),
                        }
                    } else {
                        JoinPart::StreamSpill {
                            l0: self.run_from_chunks(&env, "join-l0", &lefts)?,
                            r0: self.run_from_chunks(&env, "join-r0", &rights)?,
                            l1: self.new_run(&env, "join-l1"),
                            r1: self.new_run(&env, "join-r1"),
                        }
                    }
                }
                Mode::Recompute => {
                    let (lefts, rights) = core.eviction_chunks_buffered();
                    JoinPart::BufSpill {
                        left: self.run_from_chunks(&env, "join-bl", &lefts)?,
                        right: self.run_from_chunks(&env, "join-br", &rights)?,
                    }
                }
            };
            env.governor.record_eviction();
            self.parts[i] = new_part;
        }
        Ok(())
    }

    fn state_bytes(&self) -> usize {
        self.parts
            .iter()
            .map(|p| match p {
                JoinPart::Mem(core) => core.state_bytes(),
                JoinPart::StreamSpill { l0, r0, l1, r1 } => {
                    l0.pending_bytes()
                        + r0.pending_bytes()
                        + l1.pending_bytes()
                        + r1.pending_bytes()
                        + 64
                }
                JoinPart::Drained {
                    rights,
                    pending_left,
                } => {
                    rights.iter().map(|r| r.pending_bytes()).sum::<usize>()
                        + pending_left.pending_bytes()
                        + 64
                }
                JoinPart::BufSpill { left, right } => {
                    left.pending_bytes() + right.pending_bytes() + 64
                }
            })
            .sum()
    }

    /// Concatenate partition outputs into the shard's single result frame
    /// (partitions are key-disjoint, like shards one level up).
    fn merge_outputs(&self, mut frames: Vec<DataFrame>) -> Result<DataFrame> {
        frames.retain(|f| f.num_rows() > 0);
        match frames.len() {
            0 => Ok(DataFrame::empty(self.cfg.out_schema.clone())),
            1 => Ok(frames.pop().expect("one frame")),
            _ => {
                let refs: Vec<&DataFrame> = frames.iter().collect();
                DataFrame::concat(&refs)
            }
        }
    }
}

impl ShardWork for JoinShard {
    type Task = JoinTask;
    type Out = Result<JoinPartial>;

    fn run(&mut self, task: JoinTask) -> Result<JoinPartial> {
        let frames = match task {
            JoinTask::StreamLeft { frame, hashes } => self.stream_side(&frame, hashes, true)?,
            JoinTask::StreamRight { frame, hashes } => self.stream_side(&frame, hashes, false)?,
            JoinTask::RightEof => self.right_eof_all()?,
            JoinTask::FinalFlush => self.final_flush_all()?,
            JoinTask::Buffer { port, frame } => {
                self.buffer_all(port, &frame)?;
                Vec::new()
            }
            JoinTask::Recompute => self.recompute_all()?,
        };
        let frame = self.merge_outputs(frames)?;
        Ok(JoinPartial {
            frame,
            state_bytes: self.state_bytes(),
        })
    }
}

/// Hash-based join over two edf inputs (port 0 = left, port 1 = right).
/// The keyed state is hash-range sharded; see the module docs.
pub struct JoinOp {
    cfg: Arc<JoinConfig>,
    state: ShardedState<JoinShard>,
    /// Last-reported buffered bytes per shard (shard state may live on
    /// worker threads, so the footprint is tracked via task results).
    shard_bytes: Vec<usize>,
    /// Memory-governance plan (None = unbounded, the resident-only path).
    spill: Option<SpillPlan>,
    /// The current shard plan (so `with_spill` and `with_shards` compose
    /// in either order).
    shard_plan: ShardPlan,
    left_eof: bool,
    right_eof: bool,
    emitted_any: bool,
    progress: Progress,
    meta: EdfMeta,
}

impl JoinOp {
    pub fn new(
        left: &EdfMeta,
        right: &EdfMeta,
        left_on: Vec<String>,
        right_on: Vec<String>,
        kind: JoinKind,
    ) -> Result<Self> {
        if left_on.len() != right_on.len() || left_on.is_empty() {
            return Err(DataError::Invalid(
                "join keys must be non-empty and pairwise aligned".into(),
            ));
        }
        let left_idx = left_on
            .iter()
            .map(|k| left.schema.index_of(k))
            .collect::<Result<Vec<_>>>()?;
        let right_idx = right_on
            .iter()
            .map(|k| right.schema.index_of(k))
            .collect::<Result<Vec<_>>>()?;
        for (l, r) in left_idx.iter().zip(&right_idx) {
            let (lf, rf) = (&left.schema.fields()[*l], &right.schema.fields()[*r]);
            let compatible =
                lf.dtype == rf.dtype || (lf.dtype.is_numeric() && rf.dtype.is_numeric());
            if !compatible {
                return Err(DataError::TypeMismatch {
                    expected: format!("join key {} : {}", lf.name, lf.dtype),
                    found: format!("{} : {}", rf.name, rf.dtype),
                });
            }
        }
        let out_schema = match kind {
            JoinKind::Inner | JoinKind::Left => Arc::new(left.schema.join(&right.schema)),
            JoinKind::Semi | JoinKind::Anti => left.schema.clone(),
        };
        let streaming = left.kind == UpdateKind::Delta && right.kind == UpdateKind::Delta;
        let out_kind = if streaming {
            UpdateKind::Delta
        } else {
            UpdateKind::Snapshot
        };
        // Probe-side (left) primary key survives FK-style joins (§4.3 /
        // Fig 6 note: "The key is still orderkey").
        let meta = EdfMeta::new(out_schema.clone(), left.primary_key.clone(), out_kind);
        let cfg = Arc::new(JoinConfig {
            kind,
            mode: if streaming {
                Mode::Streaming
            } else {
                Mode::Recompute
            },
            left_on: left_idx,
            right_on: right_idx,
            left_kind: left.kind,
            right_kind: right.kind,
            left_schema: left.schema.clone(),
            right_schema: right.schema.clone(),
            out_schema,
        });
        Ok(JoinOp {
            state: ShardedState::new(
                ShardPlan::serial().mode,
                vec![JoinShard::new(cfg.clone(), 1, None)],
            ),
            shard_bytes: vec![0],
            cfg,
            spill: None,
            shard_plan: ShardPlan::serial(),
            left_eof: false,
            right_eof: false,
            emitted_any: false,
            progress: Progress::new(),
            meta,
        })
    }

    /// Govern this operator's memory: when the per-shard slice of
    /// `plan.op_budget()` is exceeded, the largest spill partition is
    /// evicted to disk and its matches resolve out-of-core. Composes
    /// with [`Self::with_shards`] in either order; must precede
    /// execution. `None` keeps the unbounded resident path.
    pub fn with_spill(mut self, spill: Option<SpillPlan>) -> Self {
        debug_assert!(
            !self.emitted_any && self.progress.t() == 0.0,
            "with_spill must precede execution"
        );
        self.spill = spill;
        self.rebuild_shards()
    }

    /// Re-plan the operator onto `plan.shards` hash-range shards executed
    /// in `plan.mode`. Must be called before any update is consumed.
    pub fn with_shards(mut self, plan: ShardPlan) -> Self {
        debug_assert!(
            !self.emitted_any && self.progress.t() == 0.0,
            "with_shards must precede execution"
        );
        self.shard_plan = plan;
        self.rebuild_shards()
    }

    fn rebuild_shards(mut self) -> Self {
        let shards = self.shard_plan.shards.max(1);
        let env = self.spill.as_ref().map(|p| p.shard_env(shards));
        self.state = ShardedState::new(
            self.shard_plan.mode,
            (0..shards)
                .map(|_| JoinShard::new(self.cfg.clone(), shards, env.clone()))
                .collect(),
        );
        self.shard_bytes = vec![0; shards];
        self
    }

    /// Split one frame into per-shard stream tasks by key hash. With one
    /// shard, the original frame and hashes pass through untouched.
    fn stream_tasks(
        &self,
        frame: &Arc<DataFrame>,
        key_cols: &[usize],
        make: impl Fn(Arc<DataFrame>, KeyHashes) -> JoinTask,
    ) -> Vec<Option<JoinTask>> {
        let hashes = hash_keys(frame, key_cols);
        let shards = self.state.num_shards();
        if shards == 1 {
            return vec![Some(make(frame.clone(), hashes))];
        }
        shard_selections(&hashes, shards)
            .into_iter()
            .map(|sel| {
                if sel.is_empty() {
                    None
                } else {
                    let sub = Arc::new(frame.select(&sel));
                    let sub_hashes = hashes.take(&sel);
                    Some(make(sub, sub_hashes))
                }
            })
            .collect()
    }

    /// Per-shard buffer tasks for recompute mode. Snapshot-kind sides must
    /// reach *every* shard (a refresh clears stale state even where the
    /// new version has no rows); delta sides skip empty sub-frames.
    fn buffer_tasks(&self, port: usize, frame: &Arc<DataFrame>) -> Vec<Option<JoinTask>> {
        let (key_cols, side_kind) = if port == 0 {
            (&self.cfg.left_on, self.cfg.left_kind)
        } else {
            (&self.cfg.right_on, self.cfg.right_kind)
        };
        let shards = self.state.num_shards();
        if shards == 1 {
            return vec![Some(JoinTask::Buffer {
                port,
                frame: frame.clone(),
            })];
        }
        let hashes = hash_keys(frame, key_cols);
        shard_selections(&hashes, shards)
            .into_iter()
            .map(|sel| {
                if sel.is_empty() && side_kind != UpdateKind::Snapshot {
                    None
                } else {
                    Some(JoinTask::Buffer {
                        port,
                        frame: Arc::new(frame.select(&sel)),
                    })
                }
            })
            .collect()
    }

    /// Scatter tasks, join, fold the partials: record per-shard footprints
    /// and concatenate the shard outputs (key-disjoint, so plain concat).
    fn run_merged(&mut self, tasks: Vec<Option<JoinTask>>) -> Result<DataFrame> {
        let outs = self.state.run(tasks)?;
        let mut frames: Vec<DataFrame> = Vec::new();
        for (s, out) in outs.into_iter().enumerate() {
            if let Some(partial) = out {
                let partial = partial?;
                self.shard_bytes[s] = partial.state_bytes;
                if partial.frame.num_rows() > 0 {
                    frames.push(partial.frame);
                }
            }
        }
        match frames.len() {
            0 => Ok(DataFrame::empty(self.cfg.out_schema.clone())),
            1 => Ok(frames.pop().expect("one frame")),
            _ => {
                let refs: Vec<&DataFrame> = frames.iter().collect();
                DataFrame::concat(&refs)
            }
        }
    }

    fn emit(&mut self, frame: DataFrame) -> Vec<Update> {
        if frame.num_rows() == 0 && self.meta.kind == UpdateKind::Delta {
            return Vec::new();
        }
        self.emitted_any = true;
        vec![Update {
            frame: Arc::new(frame),
            progress: self.progress.clone(),
            kind: self.meta.kind,
        }]
    }
}

impl Operator for JoinOp {
    fn on_update(&mut self, port: usize, update: &Update) -> Result<Vec<Update>> {
        self.progress.merge(&update.progress);
        let out = match self.cfg.mode {
            Mode::Streaming => {
                let tasks = match port {
                    0 => self.stream_tasks(&update.frame, &self.cfg.left_on, |frame, hashes| {
                        JoinTask::StreamLeft { frame, hashes }
                    }),
                    1 => self.stream_tasks(&update.frame, &self.cfg.right_on, |frame, hashes| {
                        JoinTask::StreamRight { frame, hashes }
                    }),
                    _ => return Err(DataError::Invalid(format!("join has 2 ports, got {port}"))),
                };
                self.run_merged(tasks)?
            }
            Mode::Recompute => {
                if port > 1 {
                    return Err(DataError::Invalid(format!("join has 2 ports, got {port}")));
                }
                let buffers = self.buffer_tasks(port, &update.frame);
                self.run_merged(buffers)?;
                let shards = self.state.num_shards();
                self.run_merged((0..shards).map(|_| Some(JoinTask::Recompute)).collect())?
            }
        };
        Ok(self.emit(out))
    }

    fn on_eof(&mut self, port: usize) -> Result<Vec<Update>> {
        let mut out = match port {
            0 => {
                self.left_eof = true;
                Vec::new()
            }
            1 => {
                self.right_eof = true;
                match self.cfg.mode {
                    Mode::Streaming => {
                        let shards = self.state.num_shards();
                        let flush = self
                            .run_merged((0..shards).map(|_| Some(JoinTask::RightEof)).collect())?;
                        self.emit(flush)
                    }
                    // Recompute mode already reflects the final right state.
                    Mode::Recompute => Vec::new(),
                }
            }
            _ => return Err(DataError::Invalid(format!("join has 2 ports, got {port}"))),
        };
        // Spilled streaming joins may hold deferred matches for left rows
        // that arrived after right EOF (their partition was drained to
        // disk): resolve them once both inputs are exhausted.
        if self.left_eof && self.right_eof && self.spill.is_some() {
            if let Mode::Streaming = self.cfg.mode {
                let shards = self.state.num_shards();
                let flush =
                    self.run_merged((0..shards).map(|_| Some(JoinTask::FinalFlush)).collect())?;
                out.extend(self.emit(flush));
            }
        }
        // Snapshot-mode joins must publish at least one (possibly empty)
        // state so downstream consumers learn the final answer even when
        // no input ever arrived.
        if self.left_eof && self.right_eof && !self.emitted_any {
            if let Mode::Recompute = self.cfg.mode {
                let shards = self.state.num_shards();
                let full =
                    self.run_merged((0..shards).map(|_| Some(JoinTask::Recompute)).collect())?;
                out.extend(self.emit(full));
            }
        }
        Ok(out)
    }

    fn meta(&self) -> &EdfMeta {
        &self.meta
    }

    fn state_bytes(&self) -> usize {
        self.shard_bytes.iter().sum()
    }

    fn report(&self) -> crate::ops::OpReport {
        crate::ops::OpReport {
            shard_state_bytes: self.shard_bytes.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::sharded::ShardMode;
    use crate::ops::testutil::kv_frame;
    use std::sync::Arc;
    use wake_data::{Column, DataType, Field, Value};

    fn left_meta() -> EdfMeta {
        EdfMeta::new(
            kv_frame(vec![], vec![]).schema().clone(),
            vec!["k".into()],
            UpdateKind::Delta,
        )
    }

    fn right_frame(ks: Vec<i64>, names: Vec<&str>) -> DataFrame {
        let schema = Arc::new(Schema::new(vec![
            Field::new("rk", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]));
        DataFrame::new(
            schema,
            vec![Column::from_i64(ks), Column::from_str_iter(names)],
        )
        .unwrap()
    }

    fn right_meta() -> EdfMeta {
        EdfMeta::new(
            right_frame(vec![], vec![]).schema().clone(),
            vec!["rk".into()],
            UpdateKind::Delta,
        )
    }

    fn upd_l(ks: Vec<i64>, vs: Vec<f64>, p: u64, tot: u64) -> Update {
        Update::delta(kv_frame(ks, vs), Progress::single(0, p, tot))
    }

    fn upd_r(ks: Vec<i64>, names: Vec<&str>, p: u64, tot: u64) -> Update {
        Update::delta(right_frame(ks, names), Progress::single(1, p, tot))
    }

    fn join(kind: JoinKind) -> JoinOp {
        JoinOp::new(
            &left_meta(),
            &right_meta(),
            vec!["k".into()],
            vec!["rk".into()],
            kind,
        )
        .unwrap()
    }

    #[test]
    fn symmetric_streaming_inner_join() {
        let mut op = join(JoinKind::Inner);
        assert_eq!(op.meta().kind, UpdateKind::Delta);
        // Left arrives first: no matches yet, no emission.
        let out = op
            .on_update(0, &upd_l(vec![1, 2], vec![10.0, 20.0], 2, 4))
            .unwrap();
        assert!(out.is_empty());
        // Right delta matches one left row.
        let out = op
            .on_update(1, &upd_r(vec![2, 9], vec!["b", "z"], 2, 4))
            .unwrap();
        assert_eq!(out.len(), 1);
        let f = &out[0].frame;
        assert_eq!(f.num_rows(), 1);
        assert_eq!(f.value(0, "k").unwrap(), Value::Int(2));
        assert_eq!(f.value(0, "name").unwrap(), Value::str("b"));
        // Later left delta joins against buffered right.
        let out = op.on_update(0, &upd_l(vec![9], vec![90.0], 3, 4)).unwrap();
        assert_eq!(out[0].frame.value(0, "name").unwrap(), Value::str("z"));
        // Combined progress covers both sources.
        assert!((out[0].t() - 5.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_keys_produce_cross_matches() {
        let mut op = join(JoinKind::Inner);
        op.on_update(0, &upd_l(vec![1, 1], vec![1.0, 2.0], 2, 2))
            .unwrap();
        let out = op
            .on_update(1, &upd_r(vec![1, 1], vec!["x", "y"], 2, 2))
            .unwrap();
        assert_eq!(out[0].frame.num_rows(), 4); // 2 × 2
    }

    #[test]
    fn left_join_flushes_unmatched_at_right_eof() {
        let mut op = join(JoinKind::Left);
        op.on_update(0, &upd_l(vec![1, 2], vec![1.0, 2.0], 2, 3))
            .unwrap();
        op.on_update(1, &upd_r(vec![1], vec!["a"], 1, 1)).unwrap();
        let out = op.on_eof(1).unwrap();
        assert_eq!(out.len(), 1);
        let f = &out[0].frame;
        assert_eq!(f.num_rows(), 1);
        assert_eq!(f.value(0, "k").unwrap(), Value::Int(2));
        assert!(f.value(0, "name").unwrap().is_null());
        // Left rows arriving after right EOF resolve immediately.
        let out = op.on_update(0, &upd_l(vec![3], vec![3.0], 3, 3)).unwrap();
        assert!(out[0].frame.value(0, "name").unwrap().is_null());
    }

    #[test]
    fn semi_join_emits_each_left_row_once() {
        let mut op = join(JoinKind::Semi);
        op.on_update(0, &upd_l(vec![1, 2], vec![1.0, 2.0], 2, 2))
            .unwrap();
        let out = op.on_update(1, &upd_r(vec![1], vec!["a"], 1, 2)).unwrap();
        assert_eq!(out[0].frame.num_rows(), 1);
        assert_eq!(out[0].frame.schema().names(), vec!["k", "v"]);
        // A second matching right row must NOT re-emit the left row.
        let out = op.on_update(1, &upd_r(vec![1], vec!["dup"], 2, 2)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn anti_join_waits_for_right_eof() {
        let mut op = join(JoinKind::Anti);
        op.on_update(0, &upd_l(vec![1, 2, 3], vec![0.0; 3], 3, 5))
            .unwrap();
        let out = op.on_update(1, &upd_r(vec![2], vec!["b"], 1, 1)).unwrap();
        assert!(out.is_empty()); // cannot prove non-existence yet
        let out = op.on_eof(1).unwrap();
        let f = &out[0].frame;
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.value(0, "k").unwrap(), Value::Int(1));
        assert_eq!(f.value(1, "k").unwrap(), Value::Int(3));
        // Post-EOF left rows resolve instantly.
        let out = op.on_update(0, &upd_l(vec![2], vec![0.0], 4, 5)).unwrap();
        assert!(out.is_empty()); // matched -> dropped
        let out = op.on_update(0, &upd_l(vec![7], vec![0.0], 5, 5)).unwrap();
        assert_eq!(out[0].frame.num_rows(), 1);
    }

    #[test]
    fn recompute_mode_for_snapshot_inputs() {
        let snap_left = EdfMeta::new(
            kv_frame(vec![], vec![]).schema().clone(),
            vec!["k".into()],
            UpdateKind::Snapshot,
        );
        let mut op = JoinOp::new(
            &snap_left,
            &right_meta(),
            vec!["k".into()],
            vec!["rk".into()],
            JoinKind::Inner,
        )
        .unwrap();
        assert_eq!(op.meta().kind, UpdateKind::Snapshot);
        // Snapshot left state v1.
        let s1 = Update::snapshot(
            kv_frame(vec![1, 2], vec![1.0, 2.0]),
            Progress::single(0, 1, 2),
        );
        let out = op.on_update(0, &s1).unwrap();
        assert_eq!(out[0].frame.num_rows(), 0); // right empty so far
        op.on_update(1, &upd_r(vec![1, 2], vec!["a", "b"], 2, 2))
            .unwrap();
        // Refreshed snapshot drops key 1: the re-join must too.
        let s2 = Update::snapshot(kv_frame(vec![2], vec![2.5]), Progress::single(0, 2, 2));
        let out = op.on_update(0, &s2).unwrap();
        let f = &out[0].frame;
        assert_eq!(f.num_rows(), 1);
        assert_eq!(f.value(0, "name").unwrap(), Value::str("b"));
        assert_eq!(out[0].kind, UpdateKind::Snapshot);
    }

    #[test]
    fn null_keys_never_match() {
        let mut op = join(JoinKind::Inner);
        let schema = kv_frame(vec![], vec![]).schema().clone();
        let left = DataFrame::from_rows(
            schema,
            &[
                vec![Value::Null, Value::Float(1.0)],
                vec![Value::Int(1), Value::Float(2.0)],
            ],
        )
        .unwrap();
        op.on_update(0, &Update::delta(left, Progress::single(0, 2, 2)))
            .unwrap();
        let out = op.on_update(1, &upd_r(vec![1], vec!["a"], 1, 1)).unwrap();
        assert_eq!(out[0].frame.num_rows(), 1);
    }

    #[test]
    fn schema_collision_renames_right() {
        let meta_dup = EdfMeta::new(
            kv_frame(vec![], vec![]).schema().clone(),
            vec!["k".into()],
            UpdateKind::Delta,
        );
        let op = JoinOp::new(
            &meta_dup.clone(),
            &meta_dup,
            vec!["k".into()],
            vec!["k".into()],
            JoinKind::Inner,
        )
        .unwrap();
        assert_eq!(
            op.meta().schema.names(),
            vec!["k", "v", "k_right", "v_right"]
        );
    }

    #[test]
    fn key_validation() {
        assert!(JoinOp::new(&left_meta(), &right_meta(), vec![], vec![], JoinKind::Inner).is_err());
        assert!(JoinOp::new(
            &left_meta(),
            &right_meta(),
            vec!["missing".into()],
            vec!["rk".into()],
            JoinKind::Inner
        )
        .is_err());
        // v (Float64) vs name (Utf8) is incompatible.
        assert!(JoinOp::new(
            &left_meta(),
            &right_meta(),
            vec!["v".into()],
            vec!["name".into()],
            JoinKind::Inner
        )
        .is_err());
    }

    #[test]
    fn cross_type_numeric_keys_match() {
        // Int64 left key joins Float64 right key: 2 == 2.0.
        let lmeta = left_meta();
        let rschema = Arc::new(Schema::new(vec![
            Field::new("rk", DataType::Float64),
            Field::new("name", DataType::Utf8),
        ]));
        let rmeta = EdfMeta::new(rschema.clone(), vec!["rk".into()], UpdateKind::Delta);
        let mut op = JoinOp::new(
            &lmeta,
            &rmeta,
            vec!["k".into()],
            vec!["rk".into()],
            JoinKind::Inner,
        )
        .unwrap();
        op.on_update(0, &upd_l(vec![1, 2], vec![0.0, 0.0], 2, 2))
            .unwrap();
        let rf = DataFrame::new(
            rschema,
            vec![
                Column::from_f64(vec![2.0, 3.5]),
                Column::from_str_iter(["two", "x"]),
            ],
        )
        .unwrap();
        let out = op
            .on_update(1, &Update::delta(rf, Progress::single(1, 2, 2)))
            .unwrap();
        assert_eq!(out[0].frame.num_rows(), 1);
        assert_eq!(out[0].frame.value(0, "name").unwrap(), Value::str("two"));
    }

    #[test]
    fn state_bytes_accounts_for_every_component() {
        // Exact accounting on a known workload. An anti join retains,
        // per buffered left frame: the frame payload, its key hashes
        // (8 B/row) *plus the null mask* (1 B/row when any key is null),
        // and the matched flags (1 B/row). The right side adds its frame
        // payload and index. The mask and flags were previously
        // uncounted; this pins the full formula so the governor's budget
        // math matches allocation.
        let schema = kv_frame(vec![], vec![]).schema().clone();
        let lf = DataFrame::from_rows(
            schema.clone(),
            &(0..50)
                .map(|i| {
                    vec![
                        if i % 7 == 0 {
                            Value::Null
                        } else {
                            Value::Int(i)
                        },
                        Value::Float(i as f64),
                    ]
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let rf = right_frame((0..40).collect(), (0..40).map(|_| "x").collect::<Vec<_>>());
        let cfg_op = join(JoinKind::Anti);
        let cfg = cfg_op.cfg.clone();
        let mut core = JoinCore::new(cfg);
        let lh = hash_keys(&lf, &[0]);
        let rh = hash_keys(&rf, &[0]);
        let lframe = Arc::new(lf.clone());
        let rframe = Arc::new(rf.clone());
        core.stream_left(&lframe, lh.clone()).unwrap();
        core.stream_right(&rframe, rh.clone()).unwrap();
        let expected = lf.byte_size()                   // buffered left payload
            + rf.byte_size()                            // buffered right payload
            + core.left_index.byte_size()               // 0: anti never indexes left
            + core.right_index.byte_size()              // 40 unique keys
            + lh.byte_size()                            // 50×8 hashes + 50 mask bytes
            + lf.num_rows(); // matched flags, 1 B/row
        assert_eq!(core.state_bytes(), expected);
        assert_eq!(core.left_index.byte_size(), 0);
        // The null mask really is part of the sum (hashes alone is 400).
        assert_eq!(lh.byte_size(), 50 * 8 + 50);
        // 40 distinct single-row keys: bucket (16) + group (24) + ref (8).
        assert_eq!(core.right_index.byte_size(), 40 * (16 + 24 + 8));
    }

    #[test]
    fn state_bytes_includes_spill_pending_buffers() {
        // A spilled partition's write-behind buffer counts against the
        // budget until it is flushed to disk.
        use wake_store::governor::SpillConfig;
        let mut cfg = SpillConfig::with_budget(256);
        cfg.fanout = 2;
        let plan = cfg.build_plan(1).unwrap().unwrap();
        let env = plan.shard_env(1);
        let mut shard = JoinShard::new(join(JoinKind::Inner).cfg.clone(), 1, Some(env.clone()));
        let lf = Arc::new(kv_frame((0..200).collect(), vec![1.0; 200]));
        let hashes = hash_keys(&lf, &[0]);
        shard.stream_side(&lf, hashes.clone(), true).unwrap();
        // Over budget => evicted; stream more lefts into the spilled
        // partitions and confirm their pending bytes are charged.
        let before = shard.state_bytes();
        let lf2 = Arc::new(kv_frame((200..260).collect(), vec![2.0; 60]));
        let h2 = hash_keys(&lf2, &[0]);
        shard.stream_side(&lf2, h2, true).unwrap();
        let pending: usize = shard
            .parts
            .iter()
            .map(|p| match p {
                JoinPart::StreamSpill { l1, .. } => l1.pending_bytes(),
                _ => 0,
            })
            .sum();
        assert!(pending > 0, "expected unflushed spill-pending bytes");
        assert!(shard.state_bytes() >= before.min(pending));
        let accounted: usize = shard.state_bytes();
        assert!(
            accounted >= pending,
            "pending buffers must be part of state_bytes ({accounted} < {pending})"
        );
    }

    /// Multiset of rows for order-insensitive comparison.
    fn rows_sorted(f: &DataFrame) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = (0..f.num_rows()).map(|i| f.row(i)).collect();
        rows.sort();
        rows
    }

    /// Cumulative multiset of all rows emitted by a sequence of updates.
    fn all_rows(outs: &[Vec<Update>]) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = outs
            .iter()
            .flat_map(|us| us.iter())
            .flat_map(|u| (0..u.frame.num_rows()).map(|i| u.frame.row(i)))
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn budget_spilled_join_matches_resident_for_all_kinds() {
        // A budget small enough to evict partitions mid-stream: the
        // spilled operator defers match emission (epoch replay at EOF),
        // so equivalence is on the cumulative emitted multiset — which
        // must be exactly the resident operator's. Covers every join
        // kind, null keys, duplicate keys, post-right-EOF left arrivals,
        // and both S=1 and sharded execution.
        use wake_store::governor::SpillConfig;
        let schema = kv_frame(vec![], vec![]).schema().clone();
        let lframe = |ks: &[Option<i64>]| {
            DataFrame::from_rows(
                schema.clone(),
                &ks.iter()
                    .enumerate()
                    .map(|(i, k)| vec![k.map_or(Value::Null, Value::Int), Value::Float(i as f64)])
                    .collect::<Vec<_>>(),
            )
            .unwrap()
        };
        let left_seq = [
            lframe(&[Some(1), Some(2), None, Some(3), Some(4), Some(2)]),
            lframe(&[Some(2), None, Some(9), Some(5), Some(11), Some(13)]),
        ];
        let right_seq = [
            right_frame(vec![2, 3, 3, 5, 7], vec!["a", "b", "c", "e", "f"]),
            right_frame(vec![9, 100, 2, 11], vec!["z", "q", "a2", "k"]),
        ];
        let post_eof_left = lframe(&[Some(2), Some(77), None]);
        for kind in [
            JoinKind::Inner,
            JoinKind::Left,
            JoinKind::Semi,
            JoinKind::Anti,
        ] {
            for shards in [1usize, 2] {
                let mut cfg = SpillConfig::with_budget(256);
                cfg.fanout = 4;
                let plan = cfg.build_plan(1).unwrap().unwrap();
                let governor = plan.governor.clone();
                let mut reference = join(kind);
                let mut spilled = join(kind)
                    .with_spill(Some(plan))
                    .with_shards(ShardPlan::new(shards, ShardMode::Inline));
                let mut ref_outs = Vec::new();
                let mut sp_outs = Vec::new();
                let mut step = 0u64;
                let mut feed = |op: &mut JoinOp, port: usize, f: &DataFrame| {
                    step += 1;
                    let u = Update::delta(f.clone(), Progress::single(port as u32, step, 40));
                    op.on_update(port, &u).unwrap()
                };
                for (lf, rf) in left_seq.iter().zip(&right_seq) {
                    ref_outs.push(feed(&mut reference, 0, lf));
                    sp_outs.push(feed(&mut spilled, 0, lf));
                    ref_outs.push(feed(&mut reference, 1, rf));
                    sp_outs.push(feed(&mut spilled, 1, rf));
                }
                ref_outs.push(reference.on_eof(1).unwrap());
                sp_outs.push(spilled.on_eof(1).unwrap());
                // Left rows arriving after right EOF: the resident path
                // resolves them instantly; a drained spilled partition
                // defers them to the final flush.
                ref_outs.push(feed(&mut reference, 0, &post_eof_left));
                sp_outs.push(feed(&mut spilled, 0, &post_eof_left));
                ref_outs.push(reference.on_eof(0).unwrap());
                sp_outs.push(spilled.on_eof(0).unwrap());
                assert_eq!(
                    all_rows(&ref_outs),
                    all_rows(&sp_outs),
                    "{kind:?} S={shards}"
                );
                let m = governor.metrics();
                assert!(m.evictions > 0, "{kind:?} S={shards}: never spilled");
                assert!(m.spilled_bytes > 0);
            }
        }
    }

    #[test]
    fn oversized_partition_recurses_into_subpartitions() {
        // One evicted partition whose runs far exceed the shard budget:
        // resolution must recursively re-partition (multi-pass grace
        // hash) and still produce the resident operator's multiset.
        use wake_store::governor::SpillConfig;
        let n = 1200i64;
        let lf = kv_frame((0..n).map(|i| i % 97).collect(), vec![0.5; n as usize]);
        let rf = right_frame(
            (0..n / 2).map(|i| i % 101).collect(),
            (0..n / 2).map(|_| "r").collect(),
        );
        for kind in [JoinKind::Inner, JoinKind::Left] {
            let mut cfg = SpillConfig::with_budget(2048);
            cfg.fanout = 2;
            cfg.max_depth = 3;
            let plan = cfg.build_plan(1).unwrap().unwrap();
            let governor = plan.governor.clone();
            let mut reference = join(kind);
            let mut spilled = join(kind).with_spill(Some(plan));
            let mut ref_outs = Vec::new();
            let mut sp_outs = Vec::new();
            let ul = Update::delta(lf.clone(), Progress::single(0, 1, 2));
            let ur = Update::delta(rf.clone(), Progress::single(1, 1, 1));
            ref_outs.push(reference.on_update(0, &ul).unwrap());
            sp_outs.push(spilled.on_update(0, &ul).unwrap());
            ref_outs.push(reference.on_update(1, &ur).unwrap());
            sp_outs.push(spilled.on_update(1, &ur).unwrap());
            ref_outs.push(reference.on_eof(1).unwrap());
            sp_outs.push(spilled.on_eof(1).unwrap());
            ref_outs.push(reference.on_eof(0).unwrap());
            sp_outs.push(spilled.on_eof(0).unwrap());
            assert_eq!(all_rows(&ref_outs), all_rows(&sp_outs), "{kind:?}");
            let m = governor.metrics();
            assert!(m.evictions > 0 && m.spilled_bytes > 2048, "{kind:?}: {m:?}");
        }
    }

    #[test]
    fn budget_spilled_recompute_join_matches_resident() {
        // Snapshot-input (recompute-mode) joins spill their buffered
        // sides; every refresh must re-join to the same multiset, and a
        // snapshot refresh must clear spilled buffers too.
        use wake_store::governor::SpillConfig;
        let snap_left = EdfMeta::new(
            kv_frame(vec![], vec![]).schema().clone(),
            vec!["k".into()],
            UpdateKind::Snapshot,
        );
        let build = || {
            JoinOp::new(
                &snap_left,
                &right_meta(),
                vec!["k".into()],
                vec!["rk".into()],
                JoinKind::Inner,
            )
            .unwrap()
        };
        let mut cfg = SpillConfig::with_budget(512);
        cfg.fanout = 4;
        let plan = cfg.build_plan(1).unwrap().unwrap();
        let governor = plan.governor.clone();
        let mut reference = build();
        let mut spilled = build().with_spill(Some(plan));
        let big: Vec<i64> = (0..120).collect();
        let vals: Vec<f64> = (0..120).map(|i| i as f64).collect();
        let s1 = Update::snapshot(kv_frame(big, vals), Progress::single(0, 1, 3));
        let r1 = upd_r((0..120).step_by(2).collect(), vec!["x"; 60], 1, 2);
        for (port, u) in [(0usize, &s1), (1usize, &r1)] {
            let a = reference.on_update(port, u).unwrap();
            let b = spilled.on_update(port, u).unwrap();
            assert_eq!(all_rows(&[a]), all_rows(&[b]), "refresh at port {port}");
        }
        // Shrinking snapshot refresh: stale spilled state must vanish.
        let s2 = Update::snapshot(
            kv_frame(vec![2, 4], vec![2.0, 4.0]),
            Progress::single(0, 3, 3),
        );
        let a = reference.on_update(0, &s2).unwrap();
        let b = spilled.on_update(0, &s2).unwrap();
        assert_eq!(all_rows(std::slice::from_ref(&a)), all_rows(&[b]));
        assert_eq!(a.last().unwrap().frame.num_rows(), 2);
        assert!(governor.metrics().evictions > 0, "never spilled");
    }

    #[test]
    fn sharded_join_matches_unsharded_for_all_kinds_and_modes() {
        // Streaming: feed the same update sequence (null keys included)
        // into S=1 and S∈{2,3,8} operators under every shard mode and
        // require multiset-identical emissions step by step.
        let schema = kv_frame(vec![], vec![]).schema().clone();
        let lframe = |ks: &[Option<i64>]| {
            DataFrame::from_rows(
                schema.clone(),
                &ks.iter()
                    .enumerate()
                    .map(|(i, k)| vec![k.map_or(Value::Null, Value::Int), Value::Float(i as f64)])
                    .collect::<Vec<_>>(),
            )
            .unwrap()
        };
        let left_seq = [
            lframe(&[Some(1), Some(2), None, Some(3), Some(4)]),
            lframe(&[Some(2), None, Some(9)]),
        ];
        let right_seq = [
            right_frame(vec![2, 3, 3], vec!["a", "b", "c"]),
            right_frame(vec![9, 100], vec!["z", "q"]),
        ];
        for kind in [
            JoinKind::Inner,
            JoinKind::Left,
            JoinKind::Semi,
            JoinKind::Anti,
        ] {
            for shards in [2usize, 3, 8] {
                for mode in [ShardMode::Inline, ShardMode::Scoped, ShardMode::Pool] {
                    let mut reference = join(kind);
                    let mut sharded = join(kind).with_shards(ShardPlan::new(shards, mode));
                    let mut step = 0u64;
                    let mut feed = |op: &mut JoinOp, port: usize, f: &DataFrame| {
                        step += 1;
                        let u = Update::delta(f.clone(), Progress::single(port as u32, step, 10));
                        op.on_update(port, &u).unwrap()
                    };
                    for (lf, rf) in left_seq.iter().zip(&right_seq) {
                        let a = feed(&mut reference, 0, lf);
                        let b = feed(&mut sharded, 0, lf);
                        let concat = |outs: Vec<Update>| {
                            outs.iter()
                                .flat_map(|u| rows_sorted(&u.frame))
                                .collect::<Vec<_>>()
                        };
                        let (mut am, mut bm) = (concat(a), concat(b));
                        am.sort();
                        bm.sort();
                        assert_eq!(am, bm, "{kind:?} S={shards} {mode:?} left step");
                        let a = feed(&mut reference, 1, rf);
                        let b = feed(&mut sharded, 1, rf);
                        let (mut am, mut bm) = (concat(a), concat(b));
                        am.sort();
                        bm.sort();
                        assert_eq!(am, bm, "{kind:?} S={shards} {mode:?} right step");
                    }
                    let a = reference.on_eof(1).unwrap();
                    let b = sharded.on_eof(1).unwrap();
                    let flat = |outs: Vec<Update>| {
                        let mut rows: Vec<Vec<Value>> =
                            outs.iter().flat_map(|u| rows_sorted(&u.frame)).collect();
                        rows.sort();
                        rows
                    };
                    assert_eq!(flat(a), flat(b), "{kind:?} S={shards} {mode:?} eof flush");
                    assert!(sharded.state_bytes() > 0);
                }
            }
        }
    }
}

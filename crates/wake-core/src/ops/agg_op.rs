//! Aggregation operator — paper §3.2 "Aggregate", §4.2–§4.3, §5.
//!
//! The operator keeps per-group intrinsic states (mergeable accumulators,
//! Table 2) and publishes extrinsic snapshots after every consumed update:
//!
//! - **Delta input** (Case 2 "shuffle with inference"): each delta is
//!   folded into the group states with the key-based merge `⊕` — no
//!   recomputation of previously seen data.
//! - **Snapshot input** (aggregation over aggregation): every refresh
//!   replaces the intrinsic states entirely, i.e. a new *version* in the
//!   paper's versions×partials state organisation.
//!
//! Extrinsic estimates apply growth-based scaling: a streaming log-log fit
//! of average group cardinality against progress gives the power `w`, and
//! sum-like aggregates scale by `t^{-w}` (§5.2–§5.3). At `t = 1` the scale
//! is exactly 1, so the final answer is exact (convergence property).

use crate::agg::{AggSpec, AggState, ScaleContext};
use crate::ci::variance_column;
use crate::growth::GrowthModel;
use crate::meta::EdfMeta;
use crate::ops::key_index::GroupIndex;
use crate::ops::Operator;
use crate::progress::Progress;
use crate::update::{Update, UpdateKind};
use crate::Result;
use std::sync::Arc;
use wake_data::hash::{hash_keys, KeyStore};
use wake_data::{Column, DataError, DataFrame, DataType, Field, Schema, Value};
use wake_expr::{eval_cow, infer_type, Expr};

struct GroupData {
    states: Vec<AggState>,
    rows: f64,
    /// Extra variance carried in from CI-enabled upstream aggregates
    /// (summed per spec; see `ci` module docs).
    carried_var: Vec<f64>,
}

/// Group-by aggregation with growth-based inference.
///
/// Grouping is hash-keyed without per-row `Row` materialisation: each frame
/// gets one vectorized [`hash_keys`] pass over the key columns, a
/// [`GroupIndex`] maps hash → candidate group slots, and candidates are
/// confirmed against the typed [`KeyStore`] holding each group's key tuple.
pub struct AggOp {
    keys: Vec<String>,
    /// Key column positions in the input schema (fixed per edf).
    key_idx: Vec<usize>,
    specs: Vec<AggSpec>,
    /// Emit `{alias}__var` columns when set (confidence handled by caller).
    with_variance: bool,
    input_kind: UpdateKind,
    input_schema: Arc<Schema>,
    /// For each spec: the input variance column to fold in (CI chaining).
    carried_var_cols: Vec<Option<String>>,
    index: GroupIndex,
    key_store: KeyStore,
    groups: Vec<GroupData>,
    growth: GrowthModel,
    progress: Progress,
    emitted_complete: bool,
    meta: EdfMeta,
}

impl AggOp {
    pub fn new(
        input: &EdfMeta,
        keys: Vec<String>,
        specs: Vec<AggSpec>,
        with_variance: bool,
    ) -> Result<Self> {
        if specs.is_empty() {
            return Err(DataError::Invalid(
                "aggregation needs at least one spec".into(),
            ));
        }
        let mut fields = Vec::with_capacity(keys.len() + specs.len());
        for k in &keys {
            let f = input.schema.field(k)?;
            fields.push(Field::new(f.name.clone(), f.dtype));
        }
        let mut seen = std::collections::HashSet::new();
        for k in &keys {
            if !seen.insert(k.clone()) {
                return Err(DataError::Invalid(format!("duplicate group key {k}")));
            }
        }
        for s in &specs {
            let in_type = infer_type(&s.expr, &input.schema)?;
            if let Some(w) = &s.weight {
                infer_type(w, &input.schema)?;
            }
            fields.push(Field::mutable(s.alias.clone(), s.output_type(in_type)));
        }
        if with_variance {
            for s in &specs {
                fields.push(Field::mutable(variance_column(&s.alias), DataType::Float64));
            }
        }
        // CI chaining: a Sum over a plain column that has an accompanying
        // `{col}__var` column folds the upstream variance in.
        let carried_var_cols = specs
            .iter()
            .map(|s| match (&s.func, &s.expr) {
                (crate::agg::AggFunc::Sum, Expr::Col(c)) => {
                    let vc = variance_column(c);
                    input.schema.contains(&vc).then_some(vc)
                }
                _ => None,
            })
            .collect();
        // Grouping on (a prefix of) the clustering key means group
        // cardinalities do not grow once seen: prior w = 0 (§2.2 Case 1,
        // Fig 4 "agg by clustering key").
        let clustered = match &input.clustering_key {
            Some(ck) => !keys.is_empty() && keys.len() <= ck.len() && ck[..keys.len()] == keys[..],
            None => false,
        };
        let mut growth = GrowthModel::for_input(input.kind);
        if clustered {
            growth = GrowthModel::for_input(UpdateKind::Snapshot); // prior w = 0
        }
        let schema = Arc::new(Schema::new(fields));
        let meta = EdfMeta::new(schema, keys.clone(), UpdateKind::Snapshot).with_clustering(None);
        let key_idx = keys
            .iter()
            .map(|k| input.schema.index_of(k))
            .collect::<Result<Vec<_>>>()?;
        let key_types: Vec<DataType> = key_idx
            .iter()
            .map(|&c| input.schema.fields()[c].dtype)
            .collect();
        Ok(AggOp {
            keys,
            key_idx,
            specs,
            with_variance,
            input_kind: input.kind,
            input_schema: input.schema.clone(),
            carried_var_cols,
            index: GroupIndex::new(),
            key_store: KeyStore::for_types(&key_types),
            groups: Vec::new(),
            growth,
            progress: Progress::new(),
            emitted_complete: false,
            meta,
        })
    }

    fn fold_frame(&mut self, frame: &DataFrame) -> Result<()> {
        let n = frame.num_rows();
        if n == 0 {
            return Ok(());
        }
        // Evaluate aggregate input expressions once per frame; bare column
        // references borrow instead of cloning the payload.
        let value_cols: Vec<std::borrow::Cow<'_, Column>> = self
            .specs
            .iter()
            .map(|s| eval_cow(&s.expr, frame))
            .collect::<Result<_>>()?;
        let weight_cols: Vec<Option<std::borrow::Cow<'_, Column>>> = self
            .specs
            .iter()
            .map(|s| s.weight.as_ref().map(|w| eval_cow(w, frame)).transpose())
            .collect::<Result<_>>()?;
        let carried_cols: Vec<Option<&Column>> = self
            .carried_var_cols
            .iter()
            .map(|c| c.as_ref().and_then(|name| frame.column(name).ok()))
            .collect();
        // One vectorized hash pass over the key columns; group lookup per
        // row is hash → candidate slots → typed key confirmation.
        let hashes = hash_keys(frame, &self.key_idx);
        for row in 0..n {
            let h = hashes.hashes[row];
            let slot = self
                .index
                .candidates(h)
                .iter()
                .copied()
                .find(|&g| self.key_store.eq_row(g, frame, &self.key_idx, row));
            let slot = match slot {
                Some(g) => g,
                None => {
                    let g = self.key_store.push_row(frame, &self.key_idx, row);
                    self.index.insert(h, g);
                    self.groups.push(GroupData {
                        states: self.specs.iter().map(|s| s.new_state()).collect(),
                        rows: 0.0,
                        carried_var: vec![0.0; self.specs.len()],
                    });
                    g
                }
            };
            let entry = &mut self.groups[slot as usize];
            entry.rows += 1.0;
            for (si, state) in entry.states.iter_mut().enumerate() {
                let v = value_cols[si].value(row);
                let w = weight_cols[si].as_ref().map(|c| c.value(row));
                state.observe(&v, w.as_ref());
                if let Some(vc) = carried_cols[si] {
                    if let Some(var) = vc.f64_at(row) {
                        entry.carried_var[si] += var;
                    }
                }
            }
        }
        Ok(())
    }

    fn emit(&mut self, force_exact: bool) -> Result<Update> {
        let t = self.progress.t();
        let complete = self.progress.is_complete() || force_exact;
        let ctx = if complete {
            ScaleContext::exact()
        } else {
            ScaleContext {
                scale: self.growth.scale_factor(t),
                t,
                w_variance: self.growth.w_variance(),
            }
        };
        // Deterministic output order: sort group slots by key (typed
        // comparison against the key store; no Value materialisation).
        let mut order: Vec<u32> = (0..self.key_store.len()).collect();
        order.sort_by(|&a, &b| self.key_store.cmp_slots(a, b));
        let nkeys = self.keys.len();
        let nspecs = self.specs.len();
        let nagg = self.meta.schema.len() - nkeys;
        let mut agg_cols: Vec<Vec<Value>> = vec![Vec::with_capacity(order.len()); nagg];
        for &slot in &order {
            let g = &self.groups[slot as usize];
            for (si, state) in g.states.iter().enumerate() {
                let out = state.finalize(g.rows, &ctx);
                agg_cols[si].push(out.value);
                if self.with_variance {
                    let var = out.variance.unwrap_or(0.0) + g.carried_var[si];
                    agg_cols[nspecs + si].push(Value::Float(var));
                }
            }
        }
        let mut columns = self.key_store.to_columns(&order);
        for (f, vals) in self.meta.schema.fields()[nkeys..].iter().zip(agg_cols) {
            columns.push(Column::from_values(f.dtype, &vals)?);
        }
        let frame = DataFrame::new(self.meta.schema.clone(), columns)?;
        if complete {
            self.emitted_complete = true;
        }
        Ok(Update::snapshot(frame, self.progress.clone()))
    }

    fn observe_growth(&mut self) {
        if self.groups.is_empty() {
            return;
        }
        let total: f64 = self.groups.iter().map(|g| g.rows).sum();
        let avg = total / self.groups.len() as f64;
        self.growth.observe(self.progress.t(), avg);
    }
}

impl Operator for AggOp {
    fn on_update(&mut self, port: usize, update: &Update) -> Result<Vec<Update>> {
        debug_assert_eq!(port, 0);
        self.progress.merge(&update.progress);
        match self.input_kind {
            UpdateKind::Delta => self.fold_frame(&update.frame)?,
            UpdateKind::Snapshot => {
                // New version: complete refresh of the intrinsic states.
                self.groups.clear();
                self.index.clear();
                self.key_store.clear();
                self.fold_frame(&update.frame)?;
            }
        }
        self.observe_growth();
        Ok(vec![self.emit(false)?])
    }

    fn on_eof(&mut self, _port: usize) -> Result<Vec<Update>> {
        // Guarantee one complete (exact) emission even if the last update
        // arrived before progress reached 1 (or no update arrived at all —
        // an empty result is still a valid exact answer): EOF means the
        // intrinsic state covers all data, so no scaling.
        if !self.emitted_complete {
            return Ok(vec![self.emit(true)?]);
        }
        Ok(Vec::new())
    }

    fn meta(&self) -> &EdfMeta {
        &self.meta
    }

    fn state_bytes(&self) -> usize {
        // Coarse: per-group constant plus distinct-set contents, plus the
        // hash-index and key-store footprints.
        self.groups.len() * 64
            + self.index.byte_size()
            + self.key_store.byte_size()
            + self
                .groups
                .iter()
                .flat_map(|g| g.states.iter())
                .map(|s| match s {
                    AggState::Distinct { set, .. } => set.len() * 24,
                    _ => 32,
                })
                .sum::<usize>()
    }
}

// Expose input schema for debugging/tests.
impl AggOp {
    pub fn input_schema(&self) -> &Arc<Schema> {
        &self.input_schema
    }

    /// Pin the growth power instead of fitting it (ablation mode; no-op
    /// when `fixed` is `None`).
    pub fn with_fixed_growth(mut self, fixed: Option<f64>) -> Self {
        if let Some(w) = fixed {
            self.growth = GrowthModel::fixed(w);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::kv_frame;
    use wake_expr::col;

    fn delta_meta() -> EdfMeta {
        EdfMeta::new(
            kv_frame(vec![], vec![]).schema().clone(),
            vec!["k".into()],
            UpdateKind::Delta,
        )
    }

    fn clustered_meta() -> EdfMeta {
        delta_meta().with_clustering(Some(vec!["k".into()]))
    }

    fn upd(ks: Vec<i64>, vs: Vec<f64>, processed: u64, total: u64) -> Update {
        Update::delta(kv_frame(ks, vs), Progress::single(0, processed, total))
    }

    #[test]
    fn incremental_sum_with_linear_scaling() {
        let mut op = AggOp::new(
            &delta_meta(),
            vec!["k".into()],
            vec![AggSpec::sum(col("v"), "s")],
            false,
        )
        .unwrap();
        // Half the data: raw per-group sums are 10 and 20; at t=0.5 with
        // prior w=1 estimates double.
        let out = op
            .on_update(0, &upd(vec![1, 2], vec![10.0, 20.0], 2, 4))
            .unwrap();
        let f = &out[0].frame;
        assert_eq!(out[0].kind, UpdateKind::Snapshot);
        assert_eq!(f.value(0, "s").unwrap(), Value::Float(20.0));
        assert_eq!(f.value(1, "s").unwrap(), Value::Float(40.0));
        // Remaining data arrives: exact, unscaled.
        let out = op
            .on_update(0, &upd(vec![1, 2], vec![1.0, 2.0], 4, 4))
            .unwrap();
        let f = &out[0].frame;
        assert_eq!(f.value(0, "s").unwrap(), Value::Float(11.0));
        assert_eq!(f.value(1, "s").unwrap(), Value::Float(22.0));
        assert!(out[0].progress.is_complete());
    }

    #[test]
    fn group_on_clustering_key_is_unscaled() {
        let mut op = AggOp::new(
            &clustered_meta(),
            vec!["k".into()],
            vec![AggSpec::sum(col("v"), "s")],
            false,
        )
        .unwrap();
        // Prior w=0: raw values are already the right estimates.
        let out = op
            .on_update(0, &upd(vec![1, 1], vec![3.0, 4.0], 2, 8))
            .unwrap();
        assert_eq!(out[0].frame.value(0, "s").unwrap(), Value::Float(7.0));
    }

    #[test]
    fn snapshot_input_is_recomputed_per_version() {
        let meta = EdfMeta::new(
            kv_frame(vec![], vec![]).schema().clone(),
            vec!["k".into()],
            UpdateKind::Snapshot,
        );
        let mut op =
            AggOp::new(&meta, vec![], vec![AggSpec::sum(col("v"), "total")], false).unwrap();
        let s1 = Update::snapshot(
            kv_frame(vec![1, 2], vec![10.0, 10.0]),
            Progress::single(0, 1, 2),
        );
        let out = op.on_update(0, &s1).unwrap();
        assert_eq!(out[0].frame.value(0, "total").unwrap(), Value::Float(20.0));
        // Refreshed snapshot REPLACES, it does not accumulate.
        let s2 = Update::snapshot(
            kv_frame(vec![1, 2], vec![7.0, 8.0]),
            Progress::single(0, 2, 2),
        );
        let out = op.on_update(0, &s2).unwrap();
        assert_eq!(out[0].frame.value(0, "total").unwrap(), Value::Float(15.0));
    }

    #[test]
    fn growth_fit_corrects_flat_groups() {
        // Low-cardinality group-by where all groups appear immediately and
        // keep growing linearly: w should stay near 1 and estimates track
        // the final sums.
        let mut op = AggOp::new(
            &delta_meta(),
            vec!["k".into()],
            vec![AggSpec::sum(col("v"), "s")],
            false,
        )
        .unwrap();
        let mut last = None;
        for p in 1..=10u64 {
            let out = op
                .on_update(0, &upd(vec![1, 2], vec![5.0, 5.0], p * 2, 20))
                .unwrap();
            last = Some(out[0].frame.clone());
        }
        let f = last.unwrap();
        // Exact final sums: 50 per group.
        assert_eq!(f.as_ref().value(0, "s").unwrap(), Value::Float(50.0));
    }

    #[test]
    fn estimates_improve_monotonically_for_uniform_data() {
        let mut op =
            AggOp::new(&delta_meta(), vec![], vec![AggSpec::count_star("n")], false).unwrap();
        let mut errs = Vec::new();
        for p in 1..=5u64 {
            let out = op
                .on_update(0, &upd(vec![1, 2, 3, 4], vec![0.0; 4], p * 4, 20))
                .unwrap();
            let est = out[0].frame.value(0, "n").unwrap().as_f64().unwrap();
            errs.push((est - 20.0).abs());
        }
        // Uniform stream: every estimate is exact under linear growth.
        for e in errs {
            assert!(e < 1e-9);
        }
    }

    #[test]
    fn variance_columns_emitted_when_enabled() {
        let mut op = AggOp::new(
            &delta_meta(),
            vec!["k".into()],
            vec![AggSpec::sum(col("v"), "s")],
            true,
        )
        .unwrap();
        assert!(op.meta().schema.contains("s__var"));
        let out = op
            .on_update(0, &upd(vec![1, 1], vec![1.0, 5.0], 2, 4))
            .unwrap();
        let var = out[0].frame.value(0, "s__var").unwrap().as_f64().unwrap();
        assert!(var >= 0.0);
    }

    #[test]
    fn eof_guarantees_complete_emission() {
        let mut op = AggOp::new(
            &delta_meta(),
            vec!["k".into()],
            vec![AggSpec::sum(col("v"), "s")],
            false,
        )
        .unwrap();
        // Updates stop at t < 1 (source lied about totals / trailing empty
        // partition); EOF must still flush an exact state.
        op.on_update(0, &upd(vec![1], vec![2.0], 1, 2)).unwrap();
        let out = op.on_eof(0).unwrap();
        assert_eq!(out.len(), 1);
        // After EOF flush the raw (unscaled) value is reported.
        assert_eq!(out[0].frame.value(0, "s").unwrap(), Value::Float(2.0));
        // Second EOF is a no-op.
        assert!(op.on_eof(0).unwrap().is_empty());
    }

    #[test]
    fn empty_global_aggregate_emits_zero_rows() {
        let mut op = AggOp::new(
            &delta_meta(),
            vec![],
            vec![AggSpec::sum(col("v"), "s")],
            false,
        )
        .unwrap();
        let out = op.on_update(0, &upd(vec![], vec![], 0, 0)).unwrap();
        assert_eq!(out[0].frame.num_rows(), 0);
    }

    #[test]
    fn null_keys_form_one_group_sorted_first() {
        let mut op = AggOp::new(
            &delta_meta(),
            vec!["k".into()],
            vec![AggSpec::count_star("n")],
            false,
        )
        .unwrap();
        let schema = kv_frame(vec![], vec![]).schema().clone();
        let frame = DataFrame::from_rows(
            schema,
            &[
                vec![Value::Null, Value::Float(1.0)],
                vec![Value::Int(3), Value::Float(2.0)],
                vec![Value::Null, Value::Float(3.0)],
            ],
        )
        .unwrap();
        let out = op
            .on_update(0, &Update::delta(frame, Progress::single(0, 3, 3)))
            .unwrap();
        let f = &out[0].frame;
        assert_eq!(f.num_rows(), 2, "nulls must coalesce into one group");
        assert!(f.value(0, "k").unwrap().is_null(), "null group sorts first");
        assert_eq!(f.value(0, "n").unwrap(), Value::Float(2.0));
        assert_eq!(f.value(1, "k").unwrap(), Value::Int(3));
        assert_eq!(f.value(1, "n").unwrap(), Value::Float(1.0));
    }

    #[test]
    fn duplicate_keys_rejected() {
        let err = AggOp::new(
            &delta_meta(),
            vec!["k".into(), "k".into()],
            vec![AggSpec::count_star("n")],
            false,
        );
        assert!(err.is_err());
    }

    #[test]
    fn output_sorted_by_key() {
        let mut op = AggOp::new(
            &delta_meta(),
            vec!["k".into()],
            vec![AggSpec::count_star("n")],
            false,
        )
        .unwrap();
        let out = op
            .on_update(0, &upd(vec![5, 1, 3, 1], vec![0.0; 4], 4, 4))
            .unwrap();
        let f = &out[0].frame;
        let ks: Vec<Value> = f.column("k").unwrap().iter().collect();
        assert_eq!(ks, vec![Value::Int(1), Value::Int(3), Value::Int(5)]);
    }
}

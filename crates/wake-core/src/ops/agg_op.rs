//! Aggregation operator — paper §3.2 "Aggregate", §4.2–§4.3, §5.
//!
//! The operator keeps per-group intrinsic states (mergeable accumulators,
//! Table 2) and publishes extrinsic snapshots after every consumed update:
//!
//! - **Delta input** (Case 2 "shuffle with inference"): each delta is
//!   folded into the group states with the key-based merge `⊕` — no
//!   recomputation of previously seen data.
//! - **Snapshot input** (aggregation over aggregation): every refresh
//!   replaces the intrinsic states entirely, i.e. a new *version* in the
//!   paper's versions×partials state organisation.
//!
//! Extrinsic estimates apply growth-based scaling: a streaming log-log fit
//! of average group cardinality against progress gives the power `w`, and
//! sum-like aggregates scale by `t^{-w}` (§5.2–§5.3). At `t = 1` the scale
//! is exactly 1, so the final answer is exact (convergence property).
//!
//! ## Hot path and partition parallelism
//!
//! Grouping is hash-keyed without per-row `Row` materialisation: each frame
//! gets one vectorized [`hash_keys`] pass over the key columns, a
//! [`GroupIndex`] maps hash → candidate group slots, and candidates are
//! confirmed against the typed [`KeyStore`] holding each group's key tuple.
//! Once a frame's rows are resolved to slots, the aggregate inputs are
//! folded **column-at-a-time** (`AggState::observe_column` and the typed
//! scatter kernels below) instead of `Value`-per-row.
//!
//! The keyed state (`KeyStore` + `GroupIndex` + per-group `AggState`s)
//! lives in `S` hash-range [`AggShard`]s (see [`crate::ops::sharded`]);
//! frames are routed to shards by key hash, per-shard folds run
//! independently (on worker threads for `S > 1`), and snapshot emission
//! merges the per-shard partials: shards are key-disjoint, so the paper's
//! key-based `⊕` merge of partials reduces to concatenating the per-shard
//! group lists and restoring the global key order. One shared
//! [`GrowthModel`] is fit on the *global* group statistics, so estimates
//! are identical at every shard count. `S = 1` (the `Parallelism(1)` plan)
//! skips the scatter and is byte-identical to the unsharded operator.

use crate::agg::{AggSpec, AggState, NumView, ScaleContext};
use crate::ci::variance_column;
use crate::growth::GrowthModel;
use crate::meta::EdfMeta;
use crate::ops::key_index::GroupIndex;
use crate::ops::sharded::{ShardPlan, ShardWork, ShardedState};
use crate::ops::spill as spill_codec;
use crate::ops::Operator;
use crate::progress::Progress;
use crate::update::{Update, UpdateKind};
use crate::Result;
use std::sync::Arc;
use wake_data::hash::{hash_keys, KeyStore};
use wake_data::partition::shard_selections;
use wake_data::{Column, DataError, DataFrame, DataType, Field, Schema, Value};
use wake_expr::{eval_cow, infer_type, Expr};
use wake_store::colfile::{Chunk, RunWriter};
use wake_store::governor::{SpillEnv, SpillPlan};
use wake_store::merge::kway_merge_refs;
use wake_store::partition::sub_selections;

struct GroupData {
    states: Vec<AggState>,
    rows: f64,
    /// Extra variance carried in from CI-enabled upstream aggregates
    /// (summed per spec; see `ci` module docs).
    carried_var: Vec<f64>,
}

/// Immutable aggregation configuration shared by the operator shell and
/// every shard (so shard workers can run on their own threads).
struct AggConfig {
    keys: Vec<String>,
    /// Key column positions in the input schema (fixed per edf).
    key_idx: Vec<usize>,
    specs: Vec<AggSpec>,
    /// Emit `{alias}__var` columns when set (confidence handled by caller).
    with_variance: bool,
    input_schema: Arc<Schema>,
    /// For each spec: the input variance column to fold in (CI chaining).
    carried_var_cols: Vec<Option<String>>,
    out_schema: Arc<Schema>,
    /// Just the key fields (the schema of a spilled partition's key
    /// frame; prefix of `out_schema`).
    key_schema: Arc<Schema>,
}

/// The in-memory group-by state of one spill partition (the whole shard
/// when spilling is off — then `AggShard` holds exactly one of these and
/// every code path is byte-identical to the pre-spill operator).
struct AggCore {
    cfg: Arc<AggConfig>,
    index: GroupIndex,
    key_store: KeyStore,
    groups: Vec<GroupData>,
}

/// One spill partition of a shard: resident, or evicted to a state file.
enum AggPart {
    Mem(AggCore),
    /// Evicted: the partition's state lives in a **base** run (one chunk
    /// holding the full partition at its last compaction) plus a
    /// write-behind **delta** run (chunks holding only the groups each
    /// subsequent fold touched, in fold order). The authoritative state
    /// is base ⊕ deltas replayed in append order; folding appends O(delta)
    /// bytes instead of rewriting the whole partition, and the runs are
    /// compacted (replay → rewrite base → truncate delta) once the delta
    /// outgrows `SpillEnv::delta_ratio` × base. Every fold still resolves
    /// the exact post-fold group count, so the growth model — which feeds
    /// mid-query estimates — stays bit-identical to resident execution.
    Spilled {
        base: RunWriter,
        delta: RunWriter,
        groups: usize,
    },
}

impl AggPart {
    fn groups(&self) -> usize {
        match self {
            AggPart::Mem(core) => core.groups.len(),
            AggPart::Spilled { groups, .. } => *groups,
        }
    }
}

/// One hash range's worth of group-by state: a single resident core, or
/// (under a memory budget) `fanout` hash-subrange partitions of which the
/// largest are evicted to disk when the shard exceeds its byte budget.
struct AggShard {
    cfg: Arc<AggConfig>,
    /// Total shard count of the operator (the partition chain must know
    /// how many high bits shard routing consumed).
    op_shards: usize,
    spill: Option<SpillEnv>,
    parts: Vec<AggPart>,
    /// Σ group cardinalities (equals rows folded since the last clear).
    rows_total: f64,
    /// The governor was poisoned (spill device persistently failed) and
    /// this shard has rehydrated its spilled partitions and suspended the
    /// budget: execution continues resident.
    degraded: bool,
}

/// Work dispatched to one shard. Frames are the shard-local sub-frames
/// (the full frame when `S = 1`); `hashes` are the matching row hashes.
enum AggTask {
    /// Delta input: fold into the group states (`⊕` with the key's state).
    Fold {
        frame: Arc<DataFrame>,
        hashes: Vec<u64>,
    },
    /// Snapshot input: new version — clear, then fold the refresh.
    Replace {
        frame: Arc<DataFrame>,
        hashes: Vec<u64>,
    },
    /// Finalize this shard's groups under the shared growth context.
    Snapshot { ctx: ScaleContext },
}

/// One shard's reply: fold statistics or a finalized partial snapshot.
enum AggPartial {
    Folded {
        groups: usize,
        rows: f64,
        state_bytes: usize,
    },
    Snapshot(DataFrame),
}

impl AggCore {
    fn new(cfg: Arc<AggConfig>) -> Self {
        let key_types: Vec<DataType> = cfg
            .key_idx
            .iter()
            .map(|&c| cfg.input_schema.fields()[c].dtype)
            .collect();
        AggCore {
            key_store: KeyStore::for_types(&key_types),
            cfg,
            index: GroupIndex::new(),
            groups: Vec::new(),
        }
    }

    fn fold_frame(&mut self, frame: &DataFrame, hashes: &[u64]) -> Result<()> {
        self.fold_frame_slots(frame, hashes).map(|_| ())
    }

    /// [`Self::fold_frame`], also returning each row's resolved group
    /// slot (the spill delta log derives the touched-group set from it).
    fn fold_frame_slots(&mut self, frame: &DataFrame, hashes: &[u64]) -> Result<Vec<u32>> {
        let n = frame.num_rows();
        if n == 0 {
            return Ok(Vec::new());
        }
        let cfg = self.cfg.clone();
        // Evaluate aggregate input expressions once per frame; bare column
        // references borrow instead of cloning the payload.
        let value_cols: Vec<std::borrow::Cow<'_, Column>> = cfg
            .specs
            .iter()
            .map(|s| eval_cow(&s.expr, frame))
            .collect::<Result<_>>()?;
        let weight_cols: Vec<Option<std::borrow::Cow<'_, Column>>> = cfg
            .specs
            .iter()
            .map(|s| s.weight.as_ref().map(|w| eval_cow(w, frame)).transpose())
            .collect::<Result<_>>()?;
        let carried_cols: Vec<Option<&Column>> = cfg
            .carried_var_cols
            .iter()
            .map(|c| c.as_ref().and_then(|name| frame.column(name).ok()))
            .collect();
        // Resolve every row to its group slot first (hash → candidate
        // slots → typed key confirmation), so the aggregate inputs can
        // then be folded column-at-a-time.
        let mut slots: Vec<u32> = Vec::with_capacity(n);
        for (row, &h) in hashes.iter().enumerate().take(n) {
            let slot = self
                .index
                .candidates(h)
                .iter()
                .copied()
                .find(|&g| self.key_store.eq_row(g, frame, &cfg.key_idx, row));
            let slot = match slot {
                Some(g) => g,
                None => {
                    let g = self.key_store.push_row(frame, &cfg.key_idx, row);
                    self.index.insert(h, g);
                    self.groups.push(GroupData {
                        states: cfg.specs.iter().map(|s| s.new_state()).collect(),
                        rows: 0.0,
                        carried_var: vec![0.0; cfg.specs.len()],
                    });
                    g
                }
            };
            self.groups[slot as usize].rows += 1.0;
            slots.push(slot);
        }
        for (si, _spec) in cfg.specs.iter().enumerate() {
            let col: &Column = &value_cols[si];
            let weight = weight_cols[si].as_deref();
            let vectorized = if self.groups.len() == 1 {
                // Single group in this shard (global aggregates, or one
                // key per hash range): whole-column kernel.
                self.groups[0].states[si].observe_column(col, weight)
            } else {
                observe_column_grouped(&mut self.groups, si, &slots, col, weight)
            };
            if !vectorized {
                // Per-row Value path: non-numeric inputs without a kernel
                // (e.g. min/max over strings).
                for (row, &slot) in slots.iter().enumerate() {
                    let v = col.value(row);
                    let w = weight.map(|c| c.value(row));
                    self.groups[slot as usize].states[si].observe(&v, w.as_ref());
                }
            }
            if let Some(vc) = carried_cols[si] {
                for (row, &slot) in slots.iter().enumerate() {
                    if let Some(var) = vc.f64_at(row) {
                        self.groups[slot as usize].carried_var[si] += var;
                    }
                }
            }
        }
        Ok(slots)
    }

    /// Finalize this core's groups into a key-sorted partial snapshot.
    fn snapshot(&self, ctx: &ScaleContext) -> Result<DataFrame> {
        let cfg = &self.cfg;
        // Deterministic output order: sort group slots by key (typed
        // comparison against the key store; no Value materialisation).
        let mut order: Vec<u32> = (0..self.key_store.len()).collect();
        order.sort_by(|&a, &b| self.key_store.cmp_slots(a, b));
        let nkeys = cfg.keys.len();
        let nspecs = cfg.specs.len();
        let nagg = cfg.out_schema.len() - nkeys;
        let mut agg_cols: Vec<Vec<Value>> = vec![Vec::with_capacity(order.len()); nagg];
        for &slot in &order {
            let g = &self.groups[slot as usize];
            for (si, state) in g.states.iter().enumerate() {
                let out = state.finalize(g.rows, ctx);
                agg_cols[si].push(out.value);
                if cfg.with_variance {
                    let var = out.variance.unwrap_or(0.0) + g.carried_var[si];
                    agg_cols[nspecs + si].push(Value::Float(var));
                }
            }
        }
        let mut columns = self.key_store.to_columns(&order);
        for (f, vals) in cfg.out_schema.fields()[nkeys..].iter().zip(agg_cols) {
            columns.push(Column::from_values(f.dtype, &vals)?);
        }
        DataFrame::new(cfg.out_schema.clone(), columns)
    }

    fn state_bytes(&self) -> usize {
        // Coarse: per-group constant plus variable-size state contents,
        // plus the hash-index and key-store footprints.
        self.groups.len() * 64
            + self.index.byte_size()
            + self.key_store.byte_size()
            + self
                .groups
                .iter()
                .flat_map(|g| g.states.iter())
                .map(|s| match s {
                    AggState::Distinct { set, .. } => 32 + set.byte_size(),
                    AggState::Sample { values, .. } => 32 + values.len() * 8,
                    _ => 32,
                })
                .sum::<usize>()
    }

    /// Serialize the whole core as one spill chunk: the key tuples as a
    /// typed frame, the per-group states in the extra section. Bit-exact:
    /// rehydrating and continuing to fold reproduces the un-spilled float
    /// accumulation sequence.
    fn to_chunk(&self) -> Result<Chunk> {
        let order: Vec<u32> = (0..self.key_store.len()).collect();
        self.to_chunk_for(&order)
    }

    /// Serialize a subset of this core's groups (the write-behind delta:
    /// the slots one fold touched, each carried as its full updated
    /// state so replay is assignment, not a float merge).
    fn to_chunk_for(&self, slots: &[u32]) -> Result<Chunk> {
        let columns = self.key_store.to_columns(slots);
        let frame = Arc::new(DataFrame::new(self.cfg.key_schema.clone(), columns)?);
        let nspecs = self.cfg.specs.len();
        let mut extra = Vec::with_capacity(slots.len() * (16 + nspecs * 32));
        spill_codec::put_u64(&mut extra, slots.len() as u64);
        for &slot in slots {
            let g = &self.groups[slot as usize];
            spill_codec::put_f64(&mut extra, g.rows);
            for &v in &g.carried_var {
                spill_codec::put_f64(&mut extra, v);
            }
            for st in &g.states {
                spill_codec::put_agg_state(&mut extra, st);
            }
        }
        Ok(Chunk {
            frame,
            hashes: None,
            flags: None,
            extra,
        })
    }

    /// Inverse of [`to_chunk`]. The group index is rebuilt by re-hashing
    /// the key frame — hashes are content-deterministic, so the rebuilt
    /// index candidates match the original insertion order slot for slot.
    fn from_chunk(cfg: Arc<AggConfig>, chunk: &Chunk) -> Result<AggCore> {
        let mut core = AggCore::new(cfg);
        core.apply_chunk(chunk)?;
        Ok(core)
    }

    /// Replay one base or delta chunk onto this core: a group already
    /// present (matched by key) is **overwritten** with the chunk's state
    /// — delta entries carry full updated states, so replay in append
    /// order reconstructs the partition bit for bit — and an unseen key
    /// is appended in chunk order, preserving the resident insertion
    /// order (and with it the index candidate order).
    fn apply_chunk(&mut self, chunk: &Chunk) -> Result<()> {
        let cfg = self.cfg.clone();
        let nkeys = cfg.key_idx.len();
        let key_cols: Vec<usize> = (0..nkeys).collect();
        let mut c = wake_data::colfile::ByteCursor::new(&chunk.extra);
        let n_groups = c.u64()? as usize;
        if nkeys > 0 && chunk.frame.num_rows() != n_groups {
            return Err(wake_data::DataError::ShapeMismatch(format!(
                "spilled agg partition: {} key rows vs {} groups",
                chunk.frame.num_rows(),
                n_groups
            )));
        }
        let hashes = hash_keys(&chunk.frame, &key_cols);
        for row in 0..n_groups {
            let h = if nkeys > 0 {
                hashes.hashes[row]
            } else {
                // Zero-key partitions are never spilled, but stay safe.
                hash_keys(&chunk.frame, &[])
                    .hashes
                    .first()
                    .copied()
                    .unwrap_or(0)
            };
            let rows = c.f64()?;
            let mut carried_var = Vec::with_capacity(cfg.specs.len());
            for _ in 0..cfg.specs.len() {
                carried_var.push(c.f64()?);
            }
            let mut states = Vec::with_capacity(cfg.specs.len());
            for spec in &cfg.specs {
                let mut st = spec.new_state();
                spill_codec::get_agg_state(&mut st, &mut c)?;
                states.push(st);
            }
            let existing = self
                .index
                .candidates(h)
                .iter()
                .copied()
                .find(|&g| self.key_store.eq_row(g, &chunk.frame, &key_cols, row));
            match existing {
                Some(g) => {
                    self.groups[g as usize] = GroupData {
                        states,
                        rows,
                        carried_var,
                    };
                }
                None => {
                    let g = self.key_store.push_row(&chunk.frame, &key_cols, row);
                    self.index.insert(h, g);
                    self.groups.push(GroupData {
                        states,
                        rows,
                        carried_var,
                    });
                }
            }
        }
        Ok(())
    }
}

impl AggShard {
    fn new(cfg: Arc<AggConfig>, op_shards: usize, spill: Option<SpillEnv>) -> Self {
        // Zero-key (global) aggregates hold O(specs) state — partitioning
        // and spilling them is pure overhead; keep them resident.
        let spill = if cfg.key_idx.is_empty() { None } else { spill };
        let parts = match &spill {
            None => vec![AggPart::Mem(AggCore::new(cfg.clone()))],
            Some(env) => (0..env.fanout)
                .map(|_| AggPart::Mem(AggCore::new(cfg.clone())))
                .collect(),
        };
        AggShard {
            cfg,
            op_shards: op_shards.max(1),
            spill,
            parts,
            rows_total: 0.0,
            degraded: false,
        }
    }

    fn clear(&mut self) {
        for part in &mut self.parts {
            match part {
                AggPart::Mem(core) => *core = AggCore::new(self.cfg.clone()),
                AggPart::Spilled { base, delta, .. } => {
                    base.clear();
                    delta.clear();
                    *part = AggPart::Mem(AggCore::new(self.cfg.clone()));
                }
            }
        }
        self.rows_total = 0.0;
    }

    /// Reconstruct a spilled partition's current state: the base chunk,
    /// then every delta chunk replayed in append order.
    ///
    /// The delta read recovers from a torn tail (a crash mid-append
    /// leaves every acked chunk intact, then garbage): replay stops at
    /// the last intact chunk and the returned flag is `true`, telling the
    /// caller to compact — durably truncating the loss to the un-acked
    /// delta. The base run is read strictly: it is rewritten whole at
    /// every compaction, so a torn base means the partition itself is
    /// gone (typed error, no silent data loss).
    fn rehydrate(
        cfg: &Arc<AggConfig>,
        base: &RunWriter,
        delta: &RunWriter,
    ) -> Result<(AggCore, bool)> {
        let chunks = base.read_all()?;
        let mut core = match chunks.first() {
            Some(chunk) => AggCore::from_chunk(cfg.clone(), chunk)?,
            None => AggCore::new(cfg.clone()),
        };
        let mut torn = false;
        if !delta.is_empty() {
            // Untracked: the base read above already counted this
            // logical partition load.
            let (chunks, dropped) = delta.read_all_recovering()?;
            torn = dropped > 0;
            for chunk in chunks {
                core.apply_chunk(&chunk)?;
            }
        }
        Ok((core, torn))
    }

    /// Rewrite `base` as one chunk holding `core`'s full state and
    /// truncate the delta run.
    fn compact(
        env: &SpillEnv,
        core: &AggCore,
        base: &mut RunWriter,
        delta: &mut RunWriter,
    ) -> Result<()> {
        base.clear();
        base.push(&core.to_chunk()?)?;
        base.flush()?;
        delta.clear();
        env.governor.record_compaction();
        Ok(())
    }

    fn fold_frame(&mut self, frame: &DataFrame, hashes: &[u64]) -> Result<()> {
        self.rows_total += frame.num_rows() as f64;
        let Some(env) = self.spill.clone() else {
            let AggPart::Mem(core) = &mut self.parts[0] else {
                unreachable!("unspilled shard is always resident");
            };
            return core.fold_frame(frame, hashes);
        };
        if env.governor.is_poisoned() && !self.degraded {
            self.degrade()?;
        }
        // Scatter rows to spill partitions by the next hash digits below
        // shard routing; fold each sub-frame into its partition.
        let sels = sub_selections(hashes, self.op_shards, env.fanout, 0);
        for (p, sel) in sels.into_iter().enumerate() {
            if sel.is_empty() {
                continue;
            }
            // Borrow the originals when every row routes to this
            // partition (skewed keys) — `DataFrame` owns its buffers, so
            // a clone here would deep-copy the whole update.
            let scattered: Option<(DataFrame, Vec<u64>)> =
                (sel.len() != frame.num_rows()).then(|| {
                    (
                        frame.select(&sel),
                        sel.iter().map(|&i| hashes[i as usize]).collect(),
                    )
                });
            let (sub, sub_hashes): (&DataFrame, &[u64]) = match &scattered {
                Some((f, h)) => (f, h),
                None => (frame, hashes),
            };
            match &mut self.parts[p] {
                AggPart::Mem(core) => core.fold_frame(sub, sub_hashes)?,
                AggPart::Spilled {
                    base,
                    delta,
                    groups,
                } => {
                    // Write-behind fold: rehydrate (base + replayed
                    // deltas), fold — the per-group accumulation order is
                    // identical to the resident path and the group count
                    // exact (the growth model reads it every update) —
                    // then append ONLY the touched groups' updated states
                    // to the delta run. The full rewrite happens at
                    // compaction, once the delta outgrows its ratio.
                    let (mut core, torn) = Self::rehydrate(&self.cfg, base, delta)?;
                    let slots = core.fold_frame_slots(sub, sub_hashes)?;
                    *groups = core.groups.len();
                    // Ratio 0 compacts unconditionally: skip building the
                    // delta chunk it would immediately discard (this is
                    // the legacy rehydrate-fold-rewrite I/O pattern). A
                    // torn delta tail also forces a compact — the rewrite
                    // durably truncates the run to its recovered state.
                    if torn || env.delta_ratio <= 0.0 {
                        Self::compact(&env, &core, base, delta)?;
                        continue;
                    }
                    let mut touched = slots;
                    touched.sort_unstable();
                    touched.dedup();
                    let chunk = core.to_chunk_for(&touched)?;
                    let projected = (delta.total_bytes() + chunk.byte_size()) as f64;
                    if projected > env.delta_ratio * base.total_bytes() as f64 {
                        Self::compact(&env, &core, base, delta)?;
                    } else {
                        let before = delta.total_bytes();
                        delta.push(&chunk)?;
                        delta.flush()?;
                        env.governor.record_delta(delta.total_bytes() - before);
                    }
                }
            }
        }
        self.enforce_budget()?;
        Ok(())
    }

    /// Rehydrate every spilled partition back into memory and suspend the
    /// budget: the spill device has failed persistently, and the query
    /// finishes resident (the "degraded" half of the recovery ladder).
    /// Fails typed if a spilled partition is no longer readable.
    fn degrade(&mut self) -> Result<()> {
        // Flag first: even if a rehydration read fails below, this shard
        // must never try to evict to the dead device again.
        self.degraded = true;
        for part in &mut self.parts {
            if let AggPart::Spilled { base, delta, .. } = part {
                // Torn tails just truncate here — there is no device left
                // to compact to, and the recovered state is authoritative.
                let (core, _torn) = Self::rehydrate(&self.cfg, base, delta)?;
                base.clear();
                delta.clear();
                *part = AggPart::Mem(core);
            }
        }
        Ok(())
    }

    /// While over the shard budget, evict the largest resident partition
    /// (the governor's eviction policy) to its own spill run.
    fn enforce_budget(&mut self) -> Result<()> {
        let Some(env) = self.spill.clone() else {
            return Ok(());
        };
        if self.degraded {
            return Ok(());
        }
        while self.state_bytes() > env.shard_budget() {
            if env.governor.is_poisoned() {
                // The device died under this very loop (an eviction's
                // flush soft-failed): stop evicting — the "spilled" parts
                // are memory-resident pending buffers, so the loop could
                // never shed bytes — and go resident for good.
                return self.degrade();
            }
            let victim = self
                .parts
                .iter()
                .enumerate()
                .filter_map(|(i, p)| match p {
                    AggPart::Mem(core) if !core.groups.is_empty() => Some((i, core.state_bytes())),
                    _ => None,
                })
                .max_by_key(|&(_, bytes)| bytes);
            let Some((i, _)) = victim else {
                break; // everything spillable is already on disk
            };
            let AggPart::Mem(core) = &self.parts[i] else {
                unreachable!()
            };
            let chunk = core.to_chunk()?;
            let groups = core.groups.len();
            let mut base = RunWriter::new(env.dir.clone(), env.governor.clone(), "agg");
            base.push(&chunk)?;
            base.flush()?;
            let delta = RunWriter::new(env.dir.clone(), env.governor.clone(), "aggd");
            env.governor.record_eviction();
            self.parts[i] = AggPart::Spilled {
                base,
                delta,
                groups,
            };
        }
        Ok(())
    }

    /// Key-sorted partial snapshot across all partitions: resident cores
    /// snapshot directly, spilled ones rehydrate (base + replayed
    /// deltas), and the per-partition partials k-way merge by key.
    /// Partitions are key-disjoint, so the merge is exactly the
    /// shard-level ⊕ story one level down. Snapshot boundaries are also
    /// compaction opportunities: the full state is in hand, so an
    /// over-ratio delta run (the fold-time check estimates chunk sizes
    /// and can undershoot) is folded back into its base here.
    fn snapshot(&mut self, ctx: &ScaleContext) -> Result<DataFrame> {
        let Some(env) = self.spill.clone() else {
            let AggPart::Mem(core) = &self.parts[0] else {
                unreachable!()
            };
            return core.snapshot(ctx);
        };
        if env.governor.is_poisoned() && !self.degraded {
            self.degrade()?;
        }
        let mut partials: Vec<DataFrame> = Vec::new();
        for part in &mut self.parts {
            match part {
                AggPart::Mem(core) => {
                    if !core.groups.is_empty() {
                        partials.push(core.snapshot(ctx)?);
                    }
                }
                AggPart::Spilled {
                    base,
                    delta,
                    groups,
                } => {
                    if *groups > 0 {
                        let (core, torn) = Self::rehydrate(&self.cfg, base, delta)?;
                        if torn
                            || delta.total_bytes() as f64
                                > env.delta_ratio * base.total_bytes() as f64
                        {
                            Self::compact(&env, &core, base, delta)?;
                        }
                        partials.push(core.snapshot(ctx)?);
                    }
                }
            }
        }
        merge_key_sorted(&self.cfg, partials)
    }

    fn state_bytes(&self) -> usize {
        self.parts
            .iter()
            .map(|p| match p {
                AggPart::Mem(core) => core.state_bytes(),
                // Spilled partitions cost their pending write-behind
                // buffers plus bookkeeping.
                AggPart::Spilled { base, delta, .. } => {
                    base.pending_bytes() + delta.pending_bytes() + 64
                }
            })
            .sum()
    }

    fn num_groups(&self) -> usize {
        self.parts.iter().map(|p| p.groups()).sum()
    }

    fn folded_stats(&self) -> AggPartial {
        AggPartial::Folded {
            groups: self.num_groups(),
            rows: self.rows_total,
            state_bytes: self.state_bytes(),
        }
    }
}

/// Merge key-sorted, key-disjoint partials into one key-sorted frame —
/// the typed replacement for "concat + global `Value` re-sort". Shared by
/// the in-shard spill-partition merge and the operator-level shard merge.
fn merge_key_sorted(cfg: &AggConfig, mut partials: Vec<DataFrame>) -> Result<DataFrame> {
    match partials.len() {
        0 => Ok(DataFrame::empty(cfg.out_schema.clone())),
        1 => Ok(partials.pop().expect("one partial")),
        _ => {
            if cfg.keys.is_empty() {
                let refs: Vec<&DataFrame> = partials.iter().collect();
                return DataFrame::concat(&refs);
            }
            let key_idx: Vec<usize> = (0..cfg.keys.len()).collect();
            let order = {
                let refs: Vec<&DataFrame> = partials.iter().collect();
                kway_merge_refs(&refs, &key_idx)
            };
            let mut store = crate::ops::RowStore::new();
            for p in partials {
                store.push(Arc::new(p));
            }
            store.gather(&order)
        }
    }
}

impl ShardWork for AggShard {
    type Task = AggTask;
    type Out = Result<AggPartial>;

    fn run(&mut self, task: AggTask) -> Result<AggPartial> {
        match task {
            AggTask::Fold { frame, hashes } => {
                self.fold_frame(&frame, &hashes)?;
                Ok(self.folded_stats())
            }
            AggTask::Replace { frame, hashes } => {
                self.clear();
                self.fold_frame(&frame, &hashes)?;
                Ok(self.folded_stats())
            }
            AggTask::Snapshot { ctx } => Ok(AggPartial::Snapshot(self.snapshot(&ctx)?)),
        }
    }
}

/// Typed scatter kernel: fold `col` into the per-row group states for spec
/// `si` without materialising a `Value` per cell. All states for one spec
/// share a variant, so the inner `if let` is perfectly predicted. Returns
/// `false` (fall back to the row path) for non-numeric inputs and
/// count-distinct.
fn observe_column_grouped(
    groups: &mut [GroupData],
    si: usize,
    slots: &[u32],
    col: &Column,
    weight: Option<&Column>,
) -> bool {
    // Count-distinct scatters through the typed set — the one kernel that
    // must dispatch on the column type itself (Bool/Utf8 included).
    if matches!(
        groups[slots[0] as usize].states[si],
        AggState::Distinct { .. }
    ) {
        observe_distinct_grouped(groups, si, slots, col);
        return true;
    }
    let Some((view, dtype)) = NumView::of(col) else {
        return false;
    };
    let valid = col.validity();
    macro_rules! scatter {
        (|$row:ident, $st:ident| $body:expr) => {
            match valid {
                None => {
                    for ($row, &slot) in slots.iter().enumerate() {
                        let $st = &mut groups[slot as usize].states[si];
                        $body
                    }
                }
                Some(mask) => {
                    for ($row, &slot) in slots.iter().enumerate() {
                        if mask[$row] {
                            let $st = &mut groups[slot as usize].states[si];
                            $body
                        }
                    }
                }
            }
        };
    }
    match &groups[slots[0] as usize].states[si] {
        AggState::Count { .. } => scatter!(|_row, st| {
            if let AggState::Count { n } = st {
                *n += 1.0;
            }
        }),
        AggState::Sum { .. } | AggState::Avg { .. } | AggState::Dispersion { .. } => {
            scatter!(|row, st| {
                if let AggState::Sum { m } | AggState::Avg { m } | AggState::Dispersion { m, .. } =
                    st
                {
                    m.observe(view.get(row));
                }
            })
        }
        AggState::Sample { .. } => scatter!(|row, st| {
            if let AggState::Sample { values, .. } = st {
                values.push(view.get(row));
            }
        }),
        AggState::Extreme { .. } => scatter!(|row, st| {
            if let AggState::Extreme {
                best,
                second,
                is_min,
            } = st
            {
                crate::agg::observe_extreme(best, second, *is_min, &view.value(row, dtype));
            }
        }),
        AggState::WeightedAvg { .. } => {
            let Some((wview, _)) = weight.and_then(NumView::of) else {
                return false;
            };
            let wvalid = weight.expect("checked above").validity();
            for (row, &slot) in slots.iter().enumerate() {
                let ok = valid.is_none_or(|m| m[row]) && wvalid.is_none_or(|m| m[row]);
                if ok {
                    if let AggState::WeightedAvg { m_wv, m_w } =
                        &mut groups[slot as usize].states[si]
                    {
                        let w = wview.get(row);
                        m_wv.observe(w * view.get(row));
                        m_w.observe(w);
                    }
                }
            }
        }
        AggState::Distinct { .. } => unreachable!("handled above"),
    }
    true
}

/// Typed scatter for count-distinct: insert each row's cell into its
/// group's [`DistinctSet`](crate::agg::DistinctSet) with one pass over
/// the raw column buffer — no `Value` per cell.
fn observe_distinct_grouped(groups: &mut [GroupData], si: usize, slots: &[u32], col: &Column) {
    use wake_data::column::ColumnData;
    macro_rules! scatter {
        ($values:expr, $insert:expr) => {
            match col.validity() {
                None => {
                    for (row, &slot) in slots.iter().enumerate() {
                        if let AggState::Distinct { set, n } = &mut groups[slot as usize].states[si]
                        {
                            $insert(set, &$values[row]);
                            *n += 1.0;
                        }
                    }
                }
                Some(mask) => {
                    for (row, &slot) in slots.iter().enumerate() {
                        if mask[row] {
                            if let AggState::Distinct { set, n } =
                                &mut groups[slot as usize].states[si]
                            {
                                $insert(set, &$values[row]);
                                *n += 1.0;
                            }
                        }
                    }
                }
            }
        };
    }
    match col.data() {
        ColumnData::Int64(v) | ColumnData::Date(v) => {
            scatter!(v, |s: &mut crate::agg::DistinctSet, x: &i64| s
                .insert_num(*x as f64))
        }
        ColumnData::Float64(v) => {
            scatter!(v, |s: &mut crate::agg::DistinctSet, x: &f64| s
                .insert_num(*x))
        }
        ColumnData::Bool(v) => {
            scatter!(v, |s: &mut crate::agg::DistinctSet, x: &bool| s
                .insert_bool(*x))
        }
        ColumnData::Utf8(v) => {
            scatter!(v, |s: &mut crate::agg::DistinctSet,
                         x: &std::sync::Arc<str>| s
                .insert_str(x))
        }
    }
}

/// Group-by aggregation with growth-based inference over hash-range
/// sharded state; see the module docs.
pub struct AggOp {
    cfg: Arc<AggConfig>,
    state: ShardedState<AggShard>,
    /// Per-shard statistics from the last fold (shard state may live on
    /// worker threads, so footprint and group counts travel via results).
    shard_groups: Vec<usize>,
    shard_rows: Vec<f64>,
    shard_bytes: Vec<usize>,
    input_kind: UpdateKind,
    growth: GrowthModel,
    /// Memory-governance plan (None = unbounded, the resident-only path).
    spill: Option<SpillPlan>,
    /// The current shard plan (so `with_spill` and `with_shards` compose
    /// in either order).
    shard_plan: ShardPlan,
    progress: Progress,
    emitted_complete: bool,
    meta: EdfMeta,
}

impl AggOp {
    pub fn new(
        input: &EdfMeta,
        keys: Vec<String>,
        specs: Vec<AggSpec>,
        with_variance: bool,
    ) -> Result<Self> {
        if specs.is_empty() {
            return Err(DataError::Invalid(
                "aggregation needs at least one spec".into(),
            ));
        }
        let mut fields = Vec::with_capacity(keys.len() + specs.len());
        for k in &keys {
            let f = input.schema.field(k)?;
            fields.push(Field::new(f.name.clone(), f.dtype));
        }
        let mut seen = std::collections::HashSet::new();
        for k in &keys {
            if !seen.insert(k.clone()) {
                return Err(DataError::Invalid(format!("duplicate group key {k}")));
            }
        }
        for s in &specs {
            let in_type = infer_type(&s.expr, &input.schema)?;
            if let Some(w) = &s.weight {
                infer_type(w, &input.schema)?;
            }
            fields.push(Field::mutable(s.alias.clone(), s.output_type(in_type)));
        }
        if with_variance {
            for s in &specs {
                fields.push(Field::mutable(variance_column(&s.alias), DataType::Float64));
            }
        }
        // CI chaining: a Sum over a plain column that has an accompanying
        // `{col}__var` column folds the upstream variance in.
        let carried_var_cols = specs
            .iter()
            .map(|s| match (&s.func, &s.expr) {
                (crate::agg::AggFunc::Sum, Expr::Col(c)) => {
                    let vc = variance_column(c);
                    input.schema.contains(&vc).then_some(vc)
                }
                _ => None,
            })
            .collect();
        // Grouping on (a prefix of) the clustering key means group
        // cardinalities do not grow once seen: prior w = 0 (§2.2 Case 1,
        // Fig 4 "agg by clustering key").
        let clustered = match &input.clustering_key {
            Some(ck) => !keys.is_empty() && keys.len() <= ck.len() && ck[..keys.len()] == keys[..],
            None => false,
        };
        let mut growth = GrowthModel::for_input(input.kind);
        if clustered {
            growth = GrowthModel::for_input(UpdateKind::Snapshot); // prior w = 0
        }
        let key_schema = Arc::new(Schema::new(fields[..keys.len()].to_vec()));
        let schema = Arc::new(Schema::new(fields));
        let meta =
            EdfMeta::new(schema.clone(), keys.clone(), UpdateKind::Snapshot).with_clustering(None);
        let key_idx = keys
            .iter()
            .map(|k| input.schema.index_of(k))
            .collect::<Result<Vec<_>>>()?;
        let cfg = Arc::new(AggConfig {
            keys,
            key_idx,
            specs,
            with_variance,
            input_schema: input.schema.clone(),
            carried_var_cols,
            out_schema: schema,
            key_schema,
        });
        Ok(AggOp {
            state: ShardedState::new(
                ShardPlan::serial().mode,
                vec![AggShard::new(cfg.clone(), 1, None)],
            ),
            shard_groups: vec![0],
            shard_rows: vec![0.0],
            shard_bytes: vec![0],
            cfg,
            input_kind: input.kind,
            growth,
            spill: None,
            shard_plan: ShardPlan::serial(),
            progress: Progress::new(),
            emitted_complete: false,
            meta,
        })
    }

    /// Govern this operator's memory: when the per-shard slice of
    /// `plan.op_budget()` is exceeded, the largest spill partition is
    /// evicted to disk. Composes with [`Self::with_shards`] in either
    /// order; must precede execution. `None` keeps the unbounded
    /// resident path.
    pub fn with_spill(mut self, spill: Option<SpillPlan>) -> Self {
        debug_assert!(
            !self.emitted_complete && self.progress.t() == 0.0,
            "with_spill must precede execution"
        );
        self.spill = spill;
        self.rebuild_shards()
    }

    /// Re-plan the operator onto `plan.shards` hash-range shards executed
    /// in `plan.mode`. Must be called before any update is consumed.
    pub fn with_shards(mut self, plan: ShardPlan) -> Self {
        debug_assert!(
            !self.emitted_complete && self.progress.t() == 0.0,
            "with_shards must precede execution"
        );
        self.shard_plan = plan;
        self.rebuild_shards()
    }

    fn rebuild_shards(mut self) -> Self {
        let shards = self.shard_plan.shards.max(1);
        let env = self.spill.as_ref().map(|p| p.shard_env(shards));
        self.state = ShardedState::new(
            self.shard_plan.mode,
            (0..shards)
                .map(|_| AggShard::new(self.cfg.clone(), shards, env.clone()))
                .collect(),
        );
        self.shard_groups = vec![0; shards];
        self.shard_rows = vec![0.0; shards];
        self.shard_bytes = vec![0; shards];
        self
    }

    /// Route one input frame to per-shard fold/replace tasks by key hash.
    fn fold_tasks(&self, frame: &Arc<DataFrame>, replace: bool) -> Vec<Option<AggTask>> {
        let make = |frame: Arc<DataFrame>, hashes: Vec<u64>| {
            if replace {
                AggTask::Replace { frame, hashes }
            } else {
                AggTask::Fold { frame, hashes }
            }
        };
        let hashes = hash_keys(frame, &self.cfg.key_idx);
        let shards = self.state.num_shards();
        if shards == 1 {
            return vec![Some(make(frame.clone(), hashes.hashes))];
        }
        shard_selections(&hashes, shards)
            .into_iter()
            .map(|sel| {
                if sel.is_empty() && !replace {
                    // No rows for this shard; skipping keeps its state (and
                    // the fold statistics we already hold) untouched. A
                    // Replace must reach every shard to clear stale state.
                    None
                } else {
                    let sub = Arc::new(frame.select(&sel));
                    let sub_hashes = hashes.take(&sel).hashes;
                    Some(make(sub, sub_hashes))
                }
            })
            .collect()
    }

    fn emit(&mut self, force_exact: bool) -> Result<Update> {
        let t = self.progress.t();
        let complete = self.progress.is_complete() || force_exact;
        let ctx = if complete {
            ScaleContext::exact()
        } else {
            ScaleContext {
                scale: self.growth.scale_factor(t),
                t,
                w_variance: self.growth.w_variance(),
            }
        };
        let shards = self.state.num_shards();
        let tasks: Vec<Option<AggTask>> = if shards == 1 {
            vec![Some(AggTask::Snapshot { ctx })]
        } else {
            // Empty shards contribute no groups; skip their round-trip.
            self.shard_groups
                .iter()
                .map(|&g| (g > 0).then_some(AggTask::Snapshot { ctx }))
                .collect()
        };
        let outs = self.state.run(tasks)?;
        let mut partials: Vec<DataFrame> = Vec::new();
        for out in outs.into_iter().flatten() {
            if let AggPartial::Snapshot(frame) = out? {
                partials.push(frame);
            }
        }
        // ⊕-merge across shards: keys are disjoint and every partial is
        // key-sorted, so restoring global key order is a typed k-way
        // merge — no `Value` comparisons, no global re-sort.
        let frame = merge_key_sorted(&self.cfg, partials)?;
        if complete {
            self.emitted_complete = true;
        }
        Ok(Update::snapshot(frame, self.progress.clone()))
    }

    fn observe_growth(&mut self) {
        let groups: usize = self.shard_groups.iter().sum();
        if groups == 0 {
            return;
        }
        let total: f64 = self.shard_rows.iter().sum();
        let avg = total / groups as f64;
        self.growth.observe(self.progress.t(), avg);
    }
}

impl Operator for AggOp {
    fn on_update(&mut self, port: usize, update: &Update) -> Result<Vec<Update>> {
        debug_assert_eq!(port, 0);
        self.progress.merge(&update.progress);
        let replace = self.input_kind == UpdateKind::Snapshot;
        let tasks = self.fold_tasks(&update.frame, replace);
        let outs = self.state.run(tasks)?;
        for (s, out) in outs.into_iter().enumerate() {
            if let Some(out) = out {
                if let AggPartial::Folded {
                    groups,
                    rows,
                    state_bytes,
                } = out?
                {
                    self.shard_groups[s] = groups;
                    self.shard_rows[s] = rows;
                    self.shard_bytes[s] = state_bytes;
                }
            }
        }
        self.observe_growth();
        Ok(vec![self.emit(false)?])
    }

    fn on_eof(&mut self, _port: usize) -> Result<Vec<Update>> {
        // Guarantee one complete (exact) emission even if the last update
        // arrived before progress reached 1 (or no update arrived at all —
        // an empty result is still a valid exact answer): EOF means the
        // intrinsic state covers all data, so no scaling.
        if !self.emitted_complete {
            return Ok(vec![self.emit(true)?]);
        }
        Ok(Vec::new())
    }

    fn meta(&self) -> &EdfMeta {
        &self.meta
    }

    fn state_bytes(&self) -> usize {
        self.shard_bytes.iter().sum()
    }

    fn report(&self) -> crate::ops::OpReport {
        crate::ops::OpReport {
            shard_state_bytes: self.shard_bytes.clone(),
        }
    }
}

// Expose input schema for debugging/tests.
impl AggOp {
    pub fn input_schema(&self) -> &Arc<Schema> {
        &self.cfg.input_schema
    }

    /// Pin the growth power instead of fitting it (ablation mode; no-op
    /// when `fixed` is `None`).
    pub fn with_fixed_growth(mut self, fixed: Option<f64>) -> Self {
        if let Some(w) = fixed {
            self.growth = GrowthModel::fixed(w);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::sharded::ShardMode;
    use crate::ops::testutil::kv_frame;
    use wake_expr::col;

    fn delta_meta() -> EdfMeta {
        EdfMeta::new(
            kv_frame(vec![], vec![]).schema().clone(),
            vec!["k".into()],
            UpdateKind::Delta,
        )
    }

    fn clustered_meta() -> EdfMeta {
        delta_meta().with_clustering(Some(vec!["k".into()]))
    }

    fn upd(ks: Vec<i64>, vs: Vec<f64>, processed: u64, total: u64) -> Update {
        Update::delta(kv_frame(ks, vs), Progress::single(0, processed, total))
    }

    #[test]
    fn incremental_sum_with_linear_scaling() {
        let mut op = AggOp::new(
            &delta_meta(),
            vec!["k".into()],
            vec![AggSpec::sum(col("v"), "s")],
            false,
        )
        .unwrap();
        // Half the data: raw per-group sums are 10 and 20; at t=0.5 with
        // prior w=1 estimates double.
        let out = op
            .on_update(0, &upd(vec![1, 2], vec![10.0, 20.0], 2, 4))
            .unwrap();
        let f = &out[0].frame;
        assert_eq!(out[0].kind, UpdateKind::Snapshot);
        assert_eq!(f.value(0, "s").unwrap(), Value::Float(20.0));
        assert_eq!(f.value(1, "s").unwrap(), Value::Float(40.0));
        // Remaining data arrives: exact, unscaled.
        let out = op
            .on_update(0, &upd(vec![1, 2], vec![1.0, 2.0], 4, 4))
            .unwrap();
        let f = &out[0].frame;
        assert_eq!(f.value(0, "s").unwrap(), Value::Float(11.0));
        assert_eq!(f.value(1, "s").unwrap(), Value::Float(22.0));
        assert!(out[0].progress.is_complete());
    }

    #[test]
    fn group_on_clustering_key_is_unscaled() {
        let mut op = AggOp::new(
            &clustered_meta(),
            vec!["k".into()],
            vec![AggSpec::sum(col("v"), "s")],
            false,
        )
        .unwrap();
        // Prior w=0: raw values are already the right estimates.
        let out = op
            .on_update(0, &upd(vec![1, 1], vec![3.0, 4.0], 2, 8))
            .unwrap();
        assert_eq!(out[0].frame.value(0, "s").unwrap(), Value::Float(7.0));
    }

    #[test]
    fn snapshot_input_is_recomputed_per_version() {
        let meta = EdfMeta::new(
            kv_frame(vec![], vec![]).schema().clone(),
            vec!["k".into()],
            UpdateKind::Snapshot,
        );
        let mut op =
            AggOp::new(&meta, vec![], vec![AggSpec::sum(col("v"), "total")], false).unwrap();
        let s1 = Update::snapshot(
            kv_frame(vec![1, 2], vec![10.0, 10.0]),
            Progress::single(0, 1, 2),
        );
        let out = op.on_update(0, &s1).unwrap();
        assert_eq!(out[0].frame.value(0, "total").unwrap(), Value::Float(20.0));
        // Refreshed snapshot REPLACES, it does not accumulate.
        let s2 = Update::snapshot(
            kv_frame(vec![1, 2], vec![7.0, 8.0]),
            Progress::single(0, 2, 2),
        );
        let out = op.on_update(0, &s2).unwrap();
        assert_eq!(out[0].frame.value(0, "total").unwrap(), Value::Float(15.0));
    }

    #[test]
    fn growth_fit_corrects_flat_groups() {
        // Low-cardinality group-by where all groups appear immediately and
        // keep growing linearly: w should stay near 1 and estimates track
        // the final sums.
        let mut op = AggOp::new(
            &delta_meta(),
            vec!["k".into()],
            vec![AggSpec::sum(col("v"), "s")],
            false,
        )
        .unwrap();
        let mut last = None;
        for p in 1..=10u64 {
            let out = op
                .on_update(0, &upd(vec![1, 2], vec![5.0, 5.0], p * 2, 20))
                .unwrap();
            last = Some(out[0].frame.clone());
        }
        let f = last.unwrap();
        // Exact final sums: 50 per group.
        assert_eq!(f.as_ref().value(0, "s").unwrap(), Value::Float(50.0));
    }

    #[test]
    fn estimates_improve_monotonically_for_uniform_data() {
        let mut op =
            AggOp::new(&delta_meta(), vec![], vec![AggSpec::count_star("n")], false).unwrap();
        let mut errs = Vec::new();
        for p in 1..=5u64 {
            let out = op
                .on_update(0, &upd(vec![1, 2, 3, 4], vec![0.0; 4], p * 4, 20))
                .unwrap();
            let est = out[0].frame.value(0, "n").unwrap().as_f64().unwrap();
            errs.push((est - 20.0).abs());
        }
        // Uniform stream: every estimate is exact under linear growth.
        for e in errs {
            assert!(e < 1e-9);
        }
    }

    #[test]
    fn variance_columns_emitted_when_enabled() {
        let mut op = AggOp::new(
            &delta_meta(),
            vec!["k".into()],
            vec![AggSpec::sum(col("v"), "s")],
            true,
        )
        .unwrap();
        assert!(op.meta().schema.contains("s__var"));
        let out = op
            .on_update(0, &upd(vec![1, 1], vec![1.0, 5.0], 2, 4))
            .unwrap();
        let var = out[0].frame.value(0, "s__var").unwrap().as_f64().unwrap();
        assert!(var >= 0.0);
    }

    #[test]
    fn eof_guarantees_complete_emission() {
        let mut op = AggOp::new(
            &delta_meta(),
            vec!["k".into()],
            vec![AggSpec::sum(col("v"), "s")],
            false,
        )
        .unwrap();
        // Updates stop at t < 1 (source lied about totals / trailing empty
        // partition); EOF must still flush an exact state.
        op.on_update(0, &upd(vec![1], vec![2.0], 1, 2)).unwrap();
        let out = op.on_eof(0).unwrap();
        assert_eq!(out.len(), 1);
        // After EOF flush the raw (unscaled) value is reported.
        assert_eq!(out[0].frame.value(0, "s").unwrap(), Value::Float(2.0));
        // Second EOF is a no-op.
        assert!(op.on_eof(0).unwrap().is_empty());
    }

    #[test]
    fn empty_global_aggregate_emits_zero_rows() {
        let mut op = AggOp::new(
            &delta_meta(),
            vec![],
            vec![AggSpec::sum(col("v"), "s")],
            false,
        )
        .unwrap();
        let out = op.on_update(0, &upd(vec![], vec![], 0, 0)).unwrap();
        assert_eq!(out[0].frame.num_rows(), 0);
    }

    #[test]
    fn null_keys_form_one_group_sorted_first() {
        let mut op = AggOp::new(
            &delta_meta(),
            vec!["k".into()],
            vec![AggSpec::count_star("n")],
            false,
        )
        .unwrap();
        let schema = kv_frame(vec![], vec![]).schema().clone();
        let frame = DataFrame::from_rows(
            schema,
            &[
                vec![Value::Null, Value::Float(1.0)],
                vec![Value::Int(3), Value::Float(2.0)],
                vec![Value::Null, Value::Float(3.0)],
            ],
        )
        .unwrap();
        let out = op
            .on_update(0, &Update::delta(frame, Progress::single(0, 3, 3)))
            .unwrap();
        let f = &out[0].frame;
        assert_eq!(f.num_rows(), 2, "nulls must coalesce into one group");
        assert!(f.value(0, "k").unwrap().is_null(), "null group sorts first");
        assert_eq!(f.value(0, "n").unwrap(), Value::Float(2.0));
        assert_eq!(f.value(1, "k").unwrap(), Value::Int(3));
        assert_eq!(f.value(1, "n").unwrap(), Value::Float(1.0));
    }

    #[test]
    fn duplicate_keys_rejected() {
        let err = AggOp::new(
            &delta_meta(),
            vec!["k".into(), "k".into()],
            vec![AggSpec::count_star("n")],
            false,
        );
        assert!(err.is_err());
    }

    #[test]
    fn output_sorted_by_key() {
        let mut op = AggOp::new(
            &delta_meta(),
            vec!["k".into()],
            vec![AggSpec::count_star("n")],
            false,
        )
        .unwrap();
        let out = op
            .on_update(0, &upd(vec![5, 1, 3, 1], vec![0.0; 4], 4, 4))
            .unwrap();
        let f = &out[0].frame;
        let ks: Vec<Value> = f.column("k").unwrap().iter().collect();
        assert_eq!(ks, vec![Value::Int(1), Value::Int(3), Value::Int(5)]);
    }

    #[test]
    fn budget_spilled_group_by_is_bit_identical_to_resident() {
        // A budget small enough to evict on every update: snapshots (all
        // of them, not just the final one) must be bit-equal to the
        // unbounded operator — fold order, growth stats, and key order
        // are all preserved across evict/rehydrate cycles.
        use wake_store::governor::SpillConfig;
        let schema = kv_frame(vec![], vec![]).schema().clone();
        let frame = |step: i64| {
            let rows: Vec<Vec<Value>> = (0..40)
                .map(|i| {
                    let k = (i * 11 + step) % 17;
                    vec![
                        if k == 0 { Value::Null } else { Value::Int(k) },
                        Value::Float((i * step) as f64 * 0.125),
                    ]
                })
                .collect();
            DataFrame::from_rows(schema.clone(), &rows).unwrap()
        };
        let specs = || {
            vec![
                AggSpec::sum(col("v"), "s"),
                AggSpec::count_star("n"),
                AggSpec::min(col("v"), "mn"),
                AggSpec::avg(col("v"), "a"),
                AggSpec::count_distinct(col("v"), "cd"),
                AggSpec::median(col("v"), "med"),
            ]
        };
        for shards in [1usize, 3] {
            let plan = SpillConfig::with_budget(2048)
                .build_plan(1)
                .unwrap()
                .unwrap();
            let governor = plan.governor.clone();
            let mut reference = AggOp::new(&delta_meta(), vec!["k".into()], specs(), true)
                .unwrap()
                .with_shards(ShardPlan::new(shards, ShardMode::Inline));
            let mut spilled = AggOp::new(&delta_meta(), vec!["k".into()], specs(), true)
                .unwrap()
                .with_spill(Some(plan))
                .with_shards(ShardPlan::new(shards, ShardMode::Inline));
            for step in 1..=4i64 {
                let u = Update::delta(frame(step), Progress::single(0, step as u64 * 40, 160));
                let a = reference.on_update(0, &u).unwrap();
                let b = spilled.on_update(0, &u).unwrap();
                assert_eq!(
                    a[0].frame.as_ref(),
                    b[0].frame.as_ref(),
                    "S={shards} step {step}"
                );
            }
            assert_eq!(
                reference.on_eof(0).unwrap().len(),
                spilled.on_eof(0).unwrap().len()
            );
            let m = governor.metrics();
            assert!(m.evictions > 0, "S={shards}: budget never triggered");
            assert!(m.spilled_bytes > 0 && m.rehydrations > 0);
        }
    }

    #[test]
    fn delta_log_is_bit_identical_at_every_compaction_ratio() {
        // The write-behind delta log is an I/O policy, never a semantics
        // change: whatever the compaction ratio — 0 (compact every fold,
        // the legacy path), tiny (compact almost every fold), default,
        // or effectively-never — every estimate must be bit-equal to the
        // resident operator, and the policy must show up in the ledger.
        use wake_store::governor::SpillConfig;
        let schema = kv_frame(vec![], vec![]).schema().clone();
        let frame = |step: i64| {
            let rows: Vec<Vec<Value>> = (0..60)
                .map(|i| {
                    let k = (i * 13 + step) % 23;
                    vec![Value::Int(k), Value::Float((i * step) as f64 * 0.125)]
                })
                .collect();
            DataFrame::from_rows(schema.clone(), &rows).unwrap()
        };
        let specs = || {
            vec![
                AggSpec::sum(col("v"), "s"),
                AggSpec::count_star("n"),
                AggSpec::count_distinct(col("v"), "cd"),
            ]
        };
        for ratio in [0.0, 0.05, 0.5, 1e12] {
            let mut cfg = SpillConfig::with_budget(1024);
            cfg.delta_ratio = Some(ratio);
            let plan = cfg.build_plan(1).unwrap().unwrap();
            let governor = plan.governor.clone();
            let mut reference = AggOp::new(&delta_meta(), vec!["k".into()], specs(), true).unwrap();
            let mut spilled = AggOp::new(&delta_meta(), vec!["k".into()], specs(), true)
                .unwrap()
                .with_spill(Some(plan));
            for step in 1..=6i64 {
                let u = Update::delta(frame(step), Progress::single(0, step as u64 * 60, 360));
                let a = reference.on_update(0, &u).unwrap();
                let b = spilled.on_update(0, &u).unwrap();
                assert_eq!(
                    a[0].frame.as_ref(),
                    b[0].frame.as_ref(),
                    "ratio {ratio} step {step}"
                );
            }
            let m = governor.metrics();
            assert!(m.evictions > 0, "ratio {ratio}: budget never triggered");
            if ratio == 0.0 {
                // Legacy compact-on-every-fold: no delta appends at all.
                assert_eq!(m.delta_bytes, 0, "ratio 0 must never append deltas");
                assert!(m.compactions > 0);
            } else if ratio == 0.05 {
                // Tiny ratio: both sides of the policy fire.
                assert!(m.compactions > 0, "tiny ratio must compact: {m:?}");
            } else if ratio == 1e12 {
                // Effectively-never compaction: pure delta appends.
                assert!(m.delta_bytes > 0, "huge ratio must append deltas: {m:?}");
                assert_eq!(m.compactions, 0, "huge ratio must not compact: {m:?}");
            }
        }
    }

    #[test]
    fn enospc_poisons_then_degrades_bit_identically() {
        // The spill device fills up mid-query: the governor is poisoned,
        // the shard rehydrates its spilled partitions (disk reads still
        // work on a full disk) and finishes resident — and because agg
        // folds are bit-identical resident or spilled, every estimate
        // still matches the unbounded reference exactly.
        use wake_store::governor::SpillConfig;
        use wake_store::{FaultIo, FaultSchedule};
        let schema = kv_frame(vec![], vec![]).schema().clone();
        let frame = |step: i64| {
            let rows: Vec<Vec<Value>> = (0..60)
                .map(|i| {
                    let k = (i * 13 + step) % 23;
                    vec![Value::Int(k), Value::Float((i * step) as f64 * 0.125)]
                })
                .collect();
            DataFrame::from_rows(schema.clone(), &rows).unwrap()
        };
        let specs = || {
            vec![
                AggSpec::sum(col("v"), "s"),
                AggSpec::count_star("n"),
                AggSpec::count_distinct(col("v"), "cd"),
            ]
        };
        let mut cfg = SpillConfig::with_budget(1024);
        cfg.io = Some(Arc::new(FaultIo::new(FaultSchedule {
            enospc_after_bytes: Some(8 << 10),
            ..FaultSchedule::default()
        })));
        cfg.retry_attempts = Some(1);
        cfg.retry_base_delay = Some(std::time::Duration::from_micros(10));
        let plan = cfg.build_plan(1).unwrap().unwrap();
        let governor = plan.governor.clone();
        let mut reference = AggOp::new(&delta_meta(), vec!["k".into()], specs(), true).unwrap();
        let mut spilled = AggOp::new(&delta_meta(), vec!["k".into()], specs(), true)
            .unwrap()
            .with_spill(Some(plan));
        for step in 1..=8i64 {
            let u = Update::delta(frame(step), Progress::single(0, step as u64 * 60, 480));
            let a = reference.on_update(0, &u).unwrap();
            let b = spilled.on_update(0, &u).unwrap();
            assert_eq!(a[0].frame.as_ref(), b[0].frame.as_ref(), "step {step}");
        }
        let m = governor.metrics();
        assert!(m.evictions > 0, "budget never triggered: {m:?}");
        assert!(
            governor.is_poisoned(),
            "8 KiB of device never filled up: {m:?}"
        );
        assert!(m.io_retries > 0, "retries must precede poisoning");
    }

    #[test]
    fn torn_final_delta_chunk_recovers_to_last_acked_state() {
        // Crash consistency of the write-behind log: the final delta
        // append is torn mid-chunk (the crash case — every acked chunk
        // intact, then garbage). Rehydration must recover base + all
        // intact deltas bit for bit and report the tear so the caller
        // compacts the truncation durably.
        use wake_store::colfile::encode_chunk;
        use wake_store::{FaultIo, FaultSchedule, MemoryGovernor, SpillDir, TornWrite};
        let op = AggOp::new(
            &delta_meta(),
            vec!["k".into()],
            vec![AggSpec::sum(col("v"), "s"), AggSpec::count_star("n")],
            false,
        )
        .unwrap();
        let cfg = op.cfg.clone();
        let schema = kv_frame(vec![], vec![]).schema().clone();
        let frame = |step: i64| {
            let rows: Vec<Vec<Value>> = (0..20)
                .map(|i| {
                    let k = (i * 7 + step) % 13;
                    vec![Value::Int(k), Value::Float((i * step) as f64 * 0.5)]
                })
                .collect();
            DataFrame::from_rows(schema.clone(), &rows).unwrap()
        };
        let io = Arc::new(FaultIo::new(FaultSchedule {
            torn_write: Some(TornWrite {
                tag: "aggd".to_string(),
                nth: 2, // the third delta append (after steps 2 and 3 land)
                keep_bytes: 9,
            }),
            ..FaultSchedule::default()
        }));
        let dir = Arc::new(SpillDir::new_temp_with(io).unwrap());
        let gov = Arc::new(MemoryGovernor::new(Some(1 << 20)));
        let mut base = RunWriter::new(dir.clone(), gov.clone(), "agg").with_flush_threshold(1);
        let mut delta = RunWriter::new(dir, gov, "aggd").with_flush_threshold(1);
        // Base: full state after step 1; deltas: touched groups per step.
        let mut core = AggCore::new(cfg.clone());
        let mut reference = AggCore::new(cfg.clone());
        for step in 1..=4i64 {
            let f = frame(step);
            let hashes = hash_keys(&f, &cfg.key_idx).hashes;
            let mut touched = core.fold_frame_slots(&f, &hashes).unwrap();
            if step <= 3 {
                reference.fold_frame(&f, &hashes).unwrap();
            }
            if step == 1 {
                base.push(&core.to_chunk().unwrap()).unwrap();
                base.flush().unwrap();
            } else {
                touched.sort_unstable();
                touched.dedup();
                delta.push(&core.to_chunk_for(&touched).unwrap()).unwrap();
                delta.flush().unwrap(); // step 4's append is the torn one
            }
        }
        let (recovered, torn) = AggShard::rehydrate(&cfg, &base, &delta).unwrap();
        assert!(torn, "the torn tail must be reported");
        // Recovered = state after step 3 (base ⊕ intact deltas), bit for
        // bit — compare full encoded states.
        let mut a = Vec::new();
        encode_chunk(&recovered.to_chunk().unwrap(), &mut a).unwrap();
        let mut b = Vec::new();
        encode_chunk(&reference.to_chunk().unwrap(), &mut b).unwrap();
        assert_eq!(a, b, "recovered state != last acked state");
        // The strict read path must keep rejecting the torn run.
        assert!(delta.read_all_untracked().is_err());
    }

    #[test]
    fn snapshot_input_replace_clears_spilled_state() {
        // A snapshot-kind input replaces state wholesale; spilled
        // partitions must be dropped too, not merged into the refresh.
        use wake_store::governor::SpillConfig;
        let meta = EdfMeta::new(
            kv_frame(vec![], vec![]).schema().clone(),
            vec!["k".into()],
            UpdateKind::Snapshot,
        );
        let plan = SpillConfig::with_budget(512)
            .build_plan(1)
            .unwrap()
            .unwrap();
        let mut op = AggOp::new(
            &meta,
            vec!["k".into()],
            vec![AggSpec::sum(col("v"), "s")],
            false,
        )
        .unwrap()
        .with_spill(Some(plan));
        let big: Vec<i64> = (0..200).collect();
        let vals: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let s1 = Update::snapshot(kv_frame(big, vals), Progress::single(0, 1, 2));
        op.on_update(0, &s1).unwrap();
        // Refresh shrinks to two groups: result must reflect only them.
        let s2 = Update::snapshot(
            kv_frame(vec![1, 2], vec![5.0, 6.0]),
            Progress::single(0, 2, 2),
        );
        let out = op.on_update(0, &s2).unwrap();
        let f = &out[0].frame;
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.value(0, "s").unwrap(), Value::Float(5.0));
        assert_eq!(f.value(1, "s").unwrap(), Value::Float(6.0));
    }

    #[test]
    fn sharded_group_by_is_identical_to_unsharded() {
        // Every shard count, every shard mode, every estimate: bit-equal
        // output frames (group fold order is preserved within a shard, the
        // growth model is global, and the merged emission restores the
        // global key order). Null keys ride in shard 0.
        let schema = kv_frame(vec![], vec![]).schema().clone();
        let frame = |step: i64| {
            let rows: Vec<Vec<Value>> = (0..25)
                .map(|i| {
                    let k = (i * 7 + step) % 11;
                    vec![
                        if k == 0 { Value::Null } else { Value::Int(k) },
                        Value::Float((i * step) as f64 * 0.25),
                    ]
                })
                .collect();
            DataFrame::from_rows(schema.clone(), &rows).unwrap()
        };
        let specs = || {
            vec![
                AggSpec::sum(col("v"), "s"),
                AggSpec::count_star("n"),
                AggSpec::min(col("v"), "mn"),
                AggSpec::avg(col("v"), "a"),
                AggSpec::count_distinct(col("v"), "cd"),
            ]
        };
        for shards in [2usize, 3, 8] {
            for mode in [ShardMode::Inline, ShardMode::Scoped, ShardMode::Pool] {
                let mut reference =
                    AggOp::new(&delta_meta(), vec!["k".into()], specs(), true).unwrap();
                let mut sharded = AggOp::new(&delta_meta(), vec!["k".into()], specs(), true)
                    .unwrap()
                    .with_shards(ShardPlan::new(shards, mode));
                for step in 1..=4i64 {
                    let u = Update::delta(frame(step), Progress::single(0, step as u64 * 25, 100));
                    let a = reference.on_update(0, &u).unwrap();
                    let b = sharded.on_update(0, &u).unwrap();
                    assert_eq!(a.len(), b.len());
                    assert_eq!(
                        a[0].frame.as_ref(),
                        b[0].frame.as_ref(),
                        "S={shards} {mode:?} step {step}"
                    );
                }
                let a = reference.on_eof(0).unwrap();
                let b = sharded.on_eof(0).unwrap();
                assert_eq!(a.len(), b.len());
                assert!(sharded.state_bytes() > 0);
            }
        }
    }
}

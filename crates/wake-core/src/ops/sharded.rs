//! Intra-operator partition parallelism: hash-range sharded operator state.
//!
//! A hash-keyed operator (join, group-by) splits its keyed state into `S`
//! independent **shards**; every input frame is routed row-wise to shards
//! by key hash (`wake_data::partition`), so equal keys always meet in the
//! same shard and shards never need to coordinate while folding. The
//! operator then runs as a three-stage fork-join per consumed update:
//!
//! 1. **split** — one vectorized `hash_keys` pass plus per-shard selection
//!    vectors; sub-frames are materialised with a typed columnar gather,
//! 2. **apply** — each shard folds its sub-frame into its private state
//!    ([`ShardWork::run`]), potentially on its own worker thread,
//! 3. **merge** — a join-point collects per-shard partials in shard order
//!    and the operator emits one merged update downstream (group states
//!    combine with the `⊕` merge family; join outputs concatenate, since
//!    shards are key-disjoint).
//!
//! [`ShardedState`] owns stage 2 and hides three execution strategies:
//!
//! - **Inline** (`S = 1`, and the forced mode of `Parallelism(1)`): the
//!   single shard runs on the caller's thread; no scatter, no threads —
//!   byte-identical to the pre-sharding operators.
//! - **Scoped**: shards run on `std::thread::scope` workers spawned per
//!   call and re-joined before returning. Used by the deterministic
//!   `SteppedExecutor`: no persistent threads outlive a step, results are
//!   merged in shard order, and a panicking shard surfaces as an error on
//!   the calling thread.
//! - **Pool**: `S` persistent worker threads, each owning its shard's
//!   state for the lifetime of the operator, fed by per-shard **bounded**
//!   channels (capacity [`POOL_TASK_CAPACITY`]) so a slow shard
//!   backpressures the splitter instead of queueing unboundedly. Used by
//!   the pipelined `ThreadedExecutor`. Worker panics are caught and
//!   reported as a typed query error — never a hang.
//!
//! All three strategies produce identical results for identical inputs:
//! the fork-join barrier plus shard-ordered merge keeps sharded execution
//! deterministic in value regardless of scheduling.

use crate::Result;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread::JoinHandle;
use wake_data::DataError;

/// Per-shard bounded task-channel capacity in Pool mode. [`ShardedState::
/// run`] is a strict fork-join barrier — it collects every dispatched
/// result before returning — so at most one task per shard is ever in
/// flight and capacity 1 suffices; the bound exists so any future
/// split-ahead pipelining inherits blocking-send backpressure rather than
/// an unbounded queue.
pub const POOL_TASK_CAPACITY: usize = 1;

/// One shard's private state: receives owned tasks, returns owned partial
/// results. Implementations must not share mutable state across shards —
/// that independence is what makes the fan-out safe.
pub trait ShardWork: Send + 'static {
    type Task: Send + 'static;
    type Out: Send + 'static;

    fn run(&mut self, task: Self::Task) -> Self::Out;
}

/// How a sharded operator executes its per-shard folds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardMode {
    /// Run every shard on the calling thread, in shard order.
    #[default]
    Inline,
    /// Fork scoped worker threads per call; join before returning.
    Scoped,
    /// Persistent per-shard worker threads fed by bounded channels.
    Pool,
}

/// Shard count plus execution mode — the resolved form of the user-facing
/// [`Parallelism`](crate::graph::Parallelism) knob that executors hand to
/// [`build_operator_with`](crate::graph::build_operator_with).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    pub shards: usize,
    pub mode: ShardMode,
}

impl ShardPlan {
    /// The unsharded plan: one shard, inline — today's single-threaded
    /// operator code path, byte for byte.
    pub fn serial() -> Self {
        ShardPlan {
            shards: 1,
            mode: ShardMode::Inline,
        }
    }

    pub fn new(shards: usize, mode: ShardMode) -> Self {
        let shards = shards.max(1);
        ShardPlan {
            shards,
            // A single shard gains nothing from workers; force inline so
            // Parallelism(1) cannot diverge from the serial path.
            mode: if shards == 1 { ShardMode::Inline } else { mode },
        }
    }
}

impl Default for ShardPlan {
    fn default() -> Self {
        Self::serial()
    }
}

enum Inner<W: ShardWork> {
    /// Shards live on the operator; folds run inline or under a scope.
    Local { shards: Vec<W>, scoped: bool },
    /// Shards live on persistent worker threads.
    Pool(Pool<W>),
}

/// `S` shards of operator state plus the machinery to run tasks against
/// them. See the module docs for the execution strategies.
pub struct ShardedState<W: ShardWork> {
    inner: Inner<W>,
    num_shards: usize,
}

impl<W: ShardWork> ShardedState<W> {
    /// Build from per-shard states (`shards.len()` = S ≥ 1).
    pub fn new(mode: ShardMode, shards: Vec<W>) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        let num_shards = shards.len();
        let inner = match mode {
            _ if num_shards == 1 => Inner::Local {
                shards,
                scoped: false,
            },
            ShardMode::Inline => Inner::Local {
                shards,
                scoped: false,
            },
            ShardMode::Scoped => Inner::Local {
                shards,
                scoped: true,
            },
            ShardMode::Pool => Inner::Pool(Pool::spawn(shards)),
        };
        ShardedState { inner, num_shards }
    }

    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Scatter `tasks` (one optional task per shard; `None` skips the
    /// shard) and gather the outputs in shard order. This is the fork-join
    /// barrier: it returns only when every dispatched shard has finished.
    ///
    /// A panicking shard — under any mode — surfaces as a typed
    /// [`DataError`] so a malformed frame can fail the query instead of
    /// hanging or poisoning the process.
    pub fn run(&mut self, mut tasks: Vec<Option<W::Task>>) -> Result<Vec<Option<W::Out>>> {
        debug_assert_eq!(tasks.len(), self.num_shards);
        let live = tasks.iter().filter(|t| t.is_some()).count();
        match &mut self.inner {
            Inner::Local { shards, scoped } => {
                let scoped = *scoped && live > 1;
                if !scoped {
                    let mut outs: Vec<Option<W::Out>> = Vec::with_capacity(tasks.len());
                    for (shard, task) in shards.iter_mut().zip(tasks) {
                        outs.push(task.map(|t| shard.run(t)));
                    }
                    return Ok(outs);
                }
                // Fork one scoped worker per dispatched shard; join returns
                // Err on panic, which we convert to a query error.
                let mut outs: Vec<Option<W::Out>> =
                    std::iter::repeat_with(|| None).take(tasks.len()).collect();
                let mut panicked = false;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = shards
                        .iter_mut()
                        .zip(tasks.drain(..))
                        .map(|(shard, task)| task.map(|t| scope.spawn(move || shard.run(t))))
                        .collect();
                    for (slot, handle) in outs.iter_mut().zip(handles) {
                        if let Some(h) = handle {
                            match h.join() {
                                Ok(out) => *slot = Some(out),
                                Err(_) => panicked = true,
                            }
                        }
                    }
                });
                if panicked {
                    return Err(shard_panic_error());
                }
                Ok(outs)
            }
            Inner::Pool(pool) => pool.run(tasks),
        }
    }

    /// Run the same-task-per-shard broadcast built by `f` on every shard.
    pub fn broadcast(&mut self, f: impl Fn(usize) -> W::Task) -> Result<Vec<Option<W::Out>>> {
        let tasks = (0..self.num_shards).map(|s| Some(f(s))).collect();
        self.run(tasks)
    }
}

fn shard_panic_error() -> DataError {
    DataError::Invalid("shard worker panicked; query aborted".into())
}

struct Pool<W: ShardWork> {
    txs: Vec<mpsc::SyncSender<W::Task>>,
    results: mpsc::Receiver<(usize, std::thread::Result<W::Out>)>,
    handles: Vec<JoinHandle<()>>,
    /// Set after a worker panic or disconnect: the shard states may be
    /// inconsistent, so every further call fails fast.
    poisoned: bool,
}

impl<W: ShardWork> Pool<W> {
    fn spawn(shards: Vec<W>) -> Self {
        let (result_tx, results) = mpsc::channel();
        let mut txs = Vec::with_capacity(shards.len());
        let mut handles = Vec::with_capacity(shards.len());
        for (idx, mut shard) in shards.into_iter().enumerate() {
            let (tx, rx) = mpsc::sync_channel::<W::Task>(POOL_TASK_CAPACITY);
            let result_tx = result_tx.clone();
            txs.push(tx);
            handles.push(std::thread::spawn(move || {
                while let Ok(task) = rx.recv() {
                    let out = catch_unwind(AssertUnwindSafe(|| shard.run(task)));
                    let died = out.is_err();
                    if result_tx.send((idx, out)).is_err() || died {
                        break; // operator dropped, or state is poisoned
                    }
                }
            }));
        }
        Pool {
            txs,
            results,
            handles,
            poisoned: false,
        }
    }

    fn run(&mut self, tasks: Vec<Option<W::Task>>) -> Result<Vec<Option<W::Out>>> {
        if self.poisoned {
            return Err(shard_panic_error());
        }
        let mut outs: Vec<Option<W::Out>> =
            std::iter::repeat_with(|| None).take(tasks.len()).collect();
        let mut pending = 0usize;
        for (tx, task) in self.txs.iter().zip(tasks) {
            if let Some(task) = task {
                // Bounded send: blocks (backpressure) while the shard is
                // still chewing on earlier tasks.
                if tx.send(task).is_err() {
                    self.poisoned = true;
                    return Err(shard_panic_error());
                }
                pending += 1;
            }
        }
        // Join-point: collect exactly the dispatched shards' results.
        for _ in 0..pending {
            match self.results.recv() {
                Ok((idx, Ok(out))) => outs[idx] = Some(out),
                Ok((_, Err(_))) | Err(_) => {
                    self.poisoned = true;
                    return Err(shard_panic_error());
                }
            }
        }
        Ok(outs)
    }
}

impl<W: ShardWork> Drop for Pool<W> {
    fn drop(&mut self) {
        self.txs.clear(); // disconnect: workers exit their recv loop
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler {
        total: i64,
    }

    impl ShardWork for Doubler {
        type Task = i64;
        type Out = i64;

        fn run(&mut self, task: i64) -> i64 {
            if task == i64::MIN {
                panic!("poison task");
            }
            self.total += task;
            self.total
        }
    }

    fn doubled(mode: ShardMode) {
        let mut st = ShardedState::new(mode, vec![Doubler { total: 0 }, Doubler { total: 100 }]);
        assert_eq!(st.num_shards(), 2);
        let outs = st.run(vec![Some(1), Some(2)]).unwrap();
        assert_eq!(outs, vec![Some(1), Some(102)]);
        // Skipped shards keep their state untouched.
        let outs = st.run(vec![None, Some(3)]).unwrap();
        assert_eq!(outs, vec![None, Some(105)]);
        let outs = st.broadcast(|s| s as i64).unwrap();
        assert_eq!(outs, vec![Some(1), Some(106)]);
    }

    #[test]
    fn all_modes_scatter_gather_in_shard_order() {
        doubled(ShardMode::Inline);
        doubled(ShardMode::Scoped);
        doubled(ShardMode::Pool);
    }

    #[test]
    fn worker_panic_surfaces_as_error_not_hang() {
        for mode in [ShardMode::Scoped, ShardMode::Pool] {
            let mut st = ShardedState::new(mode, vec![Doubler { total: 0 }, Doubler { total: 0 }]);
            let err = st.run(vec![Some(i64::MIN), Some(1)]);
            assert!(err.is_err(), "{mode:?}");
            if mode == ShardMode::Pool {
                // Poisoned pool fails fast afterwards.
                assert!(st.run(vec![Some(1), None]).is_err());
            }
        }
    }

    struct SpilledPanicker {
        run: wake_store::RunWriter,
    }

    impl ShardWork for SpilledPanicker {
        type Task = bool;
        type Out = usize;

        fn run(&mut self, panic_now: bool) -> usize {
            if panic_now {
                panic!("mid-fold panic while holding spilled state");
            }
            self.run.chunk_count()
        }
    }

    #[test]
    fn mid_fold_panic_with_spilled_state_is_typed_and_leak_free() {
        // A worker that panics while its shard owns a *flushed* spill run
        // (the mid-fold-while-spilled case): the panic must surface as a
        // typed error under every threaded mode, and dropping the state
        // must delete the spill files the panicking shard held.
        use std::sync::Arc;
        use wake_data::{DataFrame, Field, Schema};
        use wake_store::colfile::Chunk;
        use wake_store::{MemoryGovernor, RunWriter, SpillDir};
        for mode in [ShardMode::Scoped, ShardMode::Pool] {
            let dir = Arc::new(SpillDir::new_temp().unwrap());
            let gov = Arc::new(MemoryGovernor::new(Some(1 << 20)));
            let root = dir.root().to_path_buf();
            let shard = |tag: &str| {
                let mut run = RunWriter::new(dir.clone(), gov.clone(), tag).with_flush_threshold(1);
                let schema = Arc::new(Schema::new(vec![Field::new(
                    "x",
                    wake_data::DataType::Int64,
                )]));
                run.push(&Chunk::frame_only(Arc::new(DataFrame::empty(schema))))
                    .unwrap();
                SpilledPanicker { run }
            };
            let mut st = ShardedState::new(mode, vec![shard("a"), shard("b")]);
            assert_eq!(root.read_dir().unwrap().count(), 2, "{mode:?}: flushed");
            let err = st.run(vec![Some(true), Some(false)]).unwrap_err();
            assert!(matches!(err, DataError::Invalid(_)), "{mode:?}: {err}");
            // Dropping the sharded state (pool workers join on drop) must
            // release every shard's run and delete its files.
            drop(st);
            assert_eq!(
                root.read_dir().unwrap().count(),
                0,
                "{mode:?}: spill files leaked past a worker panic"
            );
        }
    }

    #[test]
    fn single_shard_forces_inline() {
        let mut st = ShardedState::new(ShardMode::Pool, vec![Doubler { total: 0 }]);
        match st.inner {
            Inner::Local { .. } => {}
            Inner::Pool(_) => panic!("S=1 must not spawn workers"),
        }
        assert_eq!(st.run(vec![Some(5)]).unwrap(), vec![Some(5)]);
    }
}

//! Filter (selection) operator — paper §3.2 "Filter".
//!
//! An alias of map that may produce empty outputs (Case 1 for predicates on
//! constant attributes). For snapshot inputs — e.g. filtering an evolving
//! aggregate on a mutable attribute like `sum_qty > 300` — each arriving
//! snapshot is re-filtered in full, which is exactly the paper's Case 3
//! recompute semantics, obtained here for free from the snapshot protocol.

use crate::meta::EdfMeta;
use crate::ops::Operator;
use crate::update::Update;
use crate::Result;
use std::sync::Arc;
use wake_expr::{eval_selection, infer_type, Expr};

/// Selection: keep rows satisfying `predicate`.
pub struct FilterOp {
    predicate: Expr,
    meta: EdfMeta,
}

impl FilterOp {
    pub fn new(input: &EdfMeta, predicate: Expr) -> Result<Self> {
        // Validate the predicate against the schema now (consistency).
        let dtype = infer_type(&predicate, &input.schema)?;
        if dtype != wake_data::DataType::Bool {
            return Err(wake_data::DataError::TypeMismatch {
                expected: "Bool predicate".into(),
                found: dtype.to_string(),
            });
        }
        // Schema, keys, clustering, and stream kind all pass through.
        Ok(FilterOp {
            predicate,
            meta: input.clone(),
        })
    }
}

impl Operator for FilterOp {
    fn on_update(&mut self, port: usize, update: &Update) -> Result<Vec<Update>> {
        debug_assert_eq!(port, 0);
        // Fused predicate → selection-vector kernel; the gather consumes
        // the same `u32` representation as the partition scatter.
        let sel = eval_selection(&self.predicate, &update.frame)?;
        let filtered = update.frame.select(&sel);
        Ok(vec![Update {
            frame: Arc::new(filtered),
            progress: update.progress.clone(),
            kind: update.kind,
        }])
    }

    fn on_eof(&mut self, _port: usize) -> Result<Vec<Update>> {
        Ok(Vec::new())
    }

    fn meta(&self) -> &EdfMeta {
        &self.meta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{delta, kv_frame, snapshot};
    use crate::update::UpdateKind;
    use wake_data::Value;
    use wake_expr::{col, lit_f64};

    fn meta(kind: UpdateKind) -> EdfMeta {
        EdfMeta::new(
            kv_frame(vec![], vec![]).schema().clone(),
            vec!["k".into()],
            kind,
        )
    }

    #[test]
    fn filters_deltas() {
        let mut op = FilterOp::new(&meta(UpdateKind::Delta), col("v").gt(lit_f64(1.0))).unwrap();
        let out = op
            .on_update(
                0,
                &delta(kv_frame(vec![1, 2, 3], vec![0.5, 1.5, 2.5]), 3, 3),
            )
            .unwrap();
        assert_eq!(out[0].frame.num_rows(), 2);
        assert_eq!(out[0].frame.value(0, "k").unwrap(), Value::Int(2));
        assert_eq!(out[0].kind, UpdateKind::Delta);
    }

    #[test]
    fn empty_result_is_fine() {
        let mut op = FilterOp::new(&meta(UpdateKind::Delta), col("v").gt(lit_f64(99.0))).unwrap();
        let out = op
            .on_update(0, &delta(kv_frame(vec![1], vec![1.0]), 1, 1))
            .unwrap();
        assert_eq!(out[0].frame.num_rows(), 0);
    }

    #[test]
    fn snapshot_refiltered_in_full() {
        let mut op = FilterOp::new(&meta(UpdateKind::Snapshot), col("v").gt(lit_f64(1.0))).unwrap();
        // First snapshot: both rows above threshold.
        let out = op
            .on_update(0, &snapshot(kv_frame(vec![1, 2], vec![2.0, 3.0]), 1, 2))
            .unwrap();
        assert_eq!(out[0].frame.num_rows(), 2);
        // Refined snapshot: row 1's value dropped below the threshold — the
        // new output no longer contains it (Case 3 recompute).
        let out = op
            .on_update(0, &snapshot(kv_frame(vec![1, 2], vec![0.5, 3.0]), 2, 2))
            .unwrap();
        assert_eq!(out[0].frame.num_rows(), 1);
        assert_eq!(out[0].frame.value(0, "k").unwrap(), Value::Int(2));
    }

    #[test]
    fn non_boolean_predicate_rejected() {
        assert!(FilterOp::new(&meta(UpdateKind::Delta), col("v").add(lit_f64(1.0))).is_err());
    }
}

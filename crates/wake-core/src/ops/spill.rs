//! Bit-exact serialization of aggregate intrinsic states for spilling.
//!
//! An evicted aggregate partition is one spill chunk: the partition's
//! distinct key tuples as a typed WCF frame (exported straight from the
//! [`KeyStore`](wake_data::hash::KeyStore)), and this module's encoding
//! of the per-group states in the chunk's opaque `extra` section. The
//! contract is **bit-exactness**: rehydrating a state and continuing to
//! fold must produce the same float accumulation sequence as never having
//! spilled, so every `f64` travels as its raw IEEE bits (no canonical-
//! ization — `-0.0` and NaN payloads survive) and min/max `Value`s keep
//! their exact variant.

use crate::agg::{AggState, DistinctSet};
use crate::Result;
use std::collections::HashSet;
use std::sync::Arc;
use wake_data::colfile::ByteCursor;
use wake_data::{DataError, Value};
use wake_stats::Moments;

// ---------------------------------------------------------------------------
// primitives
// ---------------------------------------------------------------------------

pub fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

pub fn put_f64(out: &mut Vec<u8>, x: f64) {
    put_u64(out, x.to_bits());
}

fn put_moments(out: &mut Vec<u8>, m: &Moments) {
    put_f64(out, m.count);
    put_f64(out, m.sum);
    put_f64(out, m.sum_sq);
}

fn get_moments(c: &mut ByteCursor<'_>) -> Result<Moments> {
    Ok(Moments {
        count: c.f64()?,
        sum: c.f64()?,
        sum_sq: c.f64()?,
    })
}

const VAL_NONE: u8 = 0;
const VAL_NULL: u8 = 1;
const VAL_INT: u8 = 2;
const VAL_FLOAT: u8 = 3;
const VAL_BOOL: u8 = 4;
const VAL_STR: u8 = 5;
const VAL_DATE: u8 = 6;

/// Encode an `Option<Value>` with exact payload bits.
pub fn put_opt_value(out: &mut Vec<u8>, v: &Option<Value>) {
    match v {
        None => out.push(VAL_NONE),
        Some(Value::Null) => out.push(VAL_NULL),
        Some(Value::Int(x)) => {
            out.push(VAL_INT);
            put_u64(out, *x as u64);
        }
        Some(Value::Float(x)) => {
            out.push(VAL_FLOAT);
            put_f64(out, *x);
        }
        Some(Value::Bool(b)) => {
            out.push(VAL_BOOL);
            out.push(*b as u8);
        }
        Some(Value::Str(s)) => {
            out.push(VAL_STR);
            put_u64(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Some(Value::Date(x)) => {
            out.push(VAL_DATE);
            put_u64(out, *x as u64);
        }
    }
}

pub fn get_opt_value(c: &mut ByteCursor<'_>) -> Result<Option<Value>> {
    Ok(match c.u8()? {
        VAL_NONE => None,
        VAL_NULL => Some(Value::Null),
        VAL_INT => Some(Value::Int(c.i64()?)),
        VAL_FLOAT => Some(Value::Float(c.f64()?)),
        VAL_BOOL => Some(Value::Bool(c.u8()? != 0)),
        VAL_STR => {
            let n = c.u64()? as usize;
            let s = std::str::from_utf8(c.take(n)?)
                .map_err(|_| DataError::Parse("bad utf8 in spilled value".into()))?;
            Some(Value::str(s))
        }
        VAL_DATE => Some(Value::Date(c.i64()?)),
        t => return Err(DataError::Parse(format!("bad spilled value tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// DistinctSet
// ---------------------------------------------------------------------------

const SET_EMPTY: u8 = 0;
const SET_NUM: u8 = 1;
const SET_STR: u8 = 2;
const SET_BOOL: u8 = 3;
const SET_MIXED: u8 = 4;

fn put_distinct(out: &mut Vec<u8>, set: &DistinctSet) {
    match set {
        DistinctSet::Empty => out.push(SET_EMPTY),
        DistinctSet::Num(s) => {
            out.push(SET_NUM);
            put_u64(out, s.len() as u64);
            for &b in s {
                put_u64(out, b);
            }
        }
        DistinctSet::Str(s) => {
            out.push(SET_STR);
            put_u64(out, s.len() as u64);
            for v in s {
                put_u64(out, v.len() as u64);
                out.extend_from_slice(v.as_bytes());
            }
        }
        DistinctSet::Bool {
            seen_true,
            seen_false,
        } => {
            out.push(SET_BOOL);
            out.push((*seen_true as u8) | ((*seen_false as u8) << 1));
        }
        DistinctSet::Mixed(s) => {
            out.push(SET_MIXED);
            put_u64(out, s.len() as u64);
            for v in s {
                put_opt_value(out, &Some(v.clone()));
            }
        }
    }
}

fn get_distinct(c: &mut ByteCursor<'_>) -> Result<DistinctSet> {
    Ok(match c.u8()? {
        SET_EMPTY => DistinctSet::Empty,
        SET_NUM => {
            let n = c.u64()? as usize;
            let mut s = HashSet::with_capacity(n);
            for _ in 0..n {
                s.insert(c.u64()?);
            }
            DistinctSet::Num(s)
        }
        SET_STR => {
            let n = c.u64()? as usize;
            let mut s: HashSet<Arc<str>> = HashSet::with_capacity(n);
            for _ in 0..n {
                let len = c.u64()? as usize;
                let v = std::str::from_utf8(c.take(len)?)
                    .map_err(|_| DataError::Parse("bad utf8 in spilled set".into()))?;
                s.insert(Arc::from(v));
            }
            DistinctSet::Str(s)
        }
        SET_BOOL => {
            let bits = c.u8()?;
            DistinctSet::Bool {
                seen_true: bits & 1 != 0,
                seen_false: bits & 2 != 0,
            }
        }
        SET_MIXED => {
            let n = c.u64()? as usize;
            let mut s = HashSet::with_capacity(n);
            for _ in 0..n {
                let v = get_opt_value(c)?
                    .ok_or_else(|| DataError::Parse("None in mixed distinct set".into()))?;
                s.insert(v);
            }
            DistinctSet::Mixed(s)
        }
        t => return Err(DataError::Parse(format!("bad distinct-set tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// AggState
// ---------------------------------------------------------------------------

const ST_COUNT: u8 = 1;
const ST_SUM: u8 = 2;
const ST_AVG: u8 = 3;
const ST_WAVG: u8 = 4;
const ST_EXTREME: u8 = 5;
const ST_DISTINCT: u8 = 6;
const ST_DISPERSION: u8 = 7;
const ST_SAMPLE: u8 = 8;

/// Encode one aggregate state (tagged; the tag is validated on decode
/// against the spec-derived template).
pub fn put_agg_state(out: &mut Vec<u8>, st: &AggState) {
    match st {
        AggState::Count { n } => {
            out.push(ST_COUNT);
            put_f64(out, *n);
        }
        AggState::Sum { m } => {
            out.push(ST_SUM);
            put_moments(out, m);
        }
        AggState::Avg { m } => {
            out.push(ST_AVG);
            put_moments(out, m);
        }
        AggState::WeightedAvg { m_wv, m_w } => {
            out.push(ST_WAVG);
            put_moments(out, m_wv);
            put_moments(out, m_w);
        }
        AggState::Extreme { best, second, .. } => {
            out.push(ST_EXTREME);
            put_opt_value(out, best);
            put_opt_value(out, second);
        }
        AggState::Distinct { set, n } => {
            out.push(ST_DISTINCT);
            put_distinct(out, set);
            put_f64(out, *n);
        }
        AggState::Dispersion { m, .. } => {
            out.push(ST_DISPERSION);
            put_moments(out, m);
        }
        AggState::Sample { values, .. } => {
            out.push(ST_SAMPLE);
            put_u64(out, values.len() as u64);
            for &v in values {
                put_f64(out, v);
            }
        }
    }
}

/// Decode one state into `template` (a fresh `spec.new_state()`), which
/// supplies the spec-side fields (`is_min`, `stddev`, `q`) the encoding
/// deliberately omits.
pub fn get_agg_state(template: &mut AggState, c: &mut ByteCursor<'_>) -> Result<()> {
    let tag = c.u8()?;
    match (template, tag) {
        (AggState::Count { n }, ST_COUNT) => *n = c.f64()?,
        (AggState::Sum { m }, ST_SUM)
        | (AggState::Avg { m }, ST_AVG)
        | (AggState::Dispersion { m, .. }, ST_DISPERSION) => *m = get_moments(c)?,
        (AggState::WeightedAvg { m_wv, m_w }, ST_WAVG) => {
            *m_wv = get_moments(c)?;
            *m_w = get_moments(c)?;
        }
        (AggState::Extreme { best, second, .. }, ST_EXTREME) => {
            *best = get_opt_value(c)?;
            *second = get_opt_value(c)?;
        }
        (AggState::Distinct { set, n }, ST_DISTINCT) => {
            *set = get_distinct(c)?;
            *n = c.f64()?;
        }
        (AggState::Sample { values, .. }, ST_SAMPLE) => {
            let n = c.u64()? as usize;
            let mut vs = Vec::with_capacity(n);
            for _ in 0..n {
                vs.push(c.f64()?);
            }
            *values = vs;
        }
        (t, tag) => {
            return Err(DataError::Parse(format!(
                "spilled state tag {tag} does not match spec state {t:?}"
            )))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggSpec, ScaleContext};
    use wake_expr::col;

    #[test]
    fn every_state_roundtrips_bit_exactly() {
        let specs = [
            AggSpec::count_star("c"),
            AggSpec::sum(col("x"), "s"),
            AggSpec::avg(col("x"), "a"),
            AggSpec::weighted_avg(col("x"), col("w"), "wa"),
            AggSpec::min(col("x"), "mn"),
            AggSpec::max(col("x"), "mx"),
            AggSpec::count_distinct(col("x"), "cd"),
            AggSpec::var(col("x"), "v"),
            AggSpec::stddev(col("x"), "sd"),
            AggSpec::median(col("x"), "med"),
        ];
        // Hostile payloads: -0.0, huge ints (NaN is checked separately —
        // the quantile finalizer rejects NaN inputs by contract).
        let values = [
            Value::Float(-0.0),
            Value::Float(0.5),
            Value::Int(i64::MAX),
            Value::Float(0.25),
            Value::Int(-3),
        ];
        for spec in &specs {
            let mut st = spec.new_state();
            for v in &values {
                let w = Value::Float(2.0);
                st.observe(v, Some(&w));
            }
            let mut bytes = Vec::new();
            put_agg_state(&mut bytes, &st);
            let mut back = spec.new_state();
            get_agg_state(&mut back, &mut ByteCursor::new(&bytes)).unwrap();
            // Continue folding on both and require identical finalization
            // (bit-exact accumulators).
            st.observe(&Value::Float(0.1), Some(&Value::Float(1.0)));
            back.observe(&Value::Float(0.1), Some(&Value::Float(1.0)));
            let ctx = ScaleContext::exact();
            assert_eq!(
                st.finalize(6.0, &ctx),
                back.finalize(6.0, &ctx),
                "spec {:?}",
                spec.func
            );
        }
    }

    #[test]
    fn nan_payloads_survive_raw_bits() {
        // Sum accumulators and count-distinct sets may legitimately hold
        // NaN; serialization must keep the exact bit pattern.
        for spec in [
            AggSpec::sum(col("x"), "s"),
            AggSpec::count_distinct(col("x"), "cd"),
            AggSpec::max(col("x"), "mx"),
        ] {
            let mut st = spec.new_state();
            st.observe(&Value::Float(f64::NAN), None);
            st.observe(&Value::Float(1.0), None);
            let mut bytes = Vec::new();
            put_agg_state(&mut bytes, &st);
            let mut back = spec.new_state();
            get_agg_state(&mut back, &mut ByteCursor::new(&bytes)).unwrap();
            let ctx = ScaleContext::exact();
            let (a, b) = (st.finalize(2.0, &ctx), back.finalize(2.0, &ctx));
            // Compare through bits so NaN == NaN.
            match (&a.value, &b.value) {
                (Value::Float(x), Value::Float(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "{:?}", spec.func)
                }
                (x, y) => assert_eq!(x, y),
            }
        }
    }

    #[test]
    fn string_and_bool_states_roundtrip() {
        let spec = AggSpec::min(col("x"), "mn");
        let mut st = spec.new_state();
        st.observe(&Value::str("pear"), None);
        st.observe(&Value::str("apple"), None);
        let mut bytes = Vec::new();
        put_agg_state(&mut bytes, &st);
        let mut back = spec.new_state();
        get_agg_state(&mut back, &mut ByteCursor::new(&bytes)).unwrap();
        let ctx = ScaleContext::exact();
        assert_eq!(back.finalize(2.0, &ctx).value, Value::str("apple"));

        let spec = AggSpec::count_distinct(col("x"), "cd");
        for vals in [
            vec![Value::Bool(true), Value::Bool(false)],
            vec![Value::str("a"), Value::str("b"), Value::str("a")],
            vec![Value::Int(1), Value::str("mix")], // mixed fallback
        ] {
            let mut st = spec.new_state();
            for v in &vals {
                st.observe(v, None);
            }
            let mut bytes = Vec::new();
            put_agg_state(&mut bytes, &st);
            let mut back = spec.new_state();
            get_agg_state(&mut back, &mut ByteCursor::new(&bytes)).unwrap();
            assert_eq!(
                back.finalize(3.0, &ScaleContext::exact()),
                st.finalize(3.0, &ScaleContext::exact())
            );
        }
    }

    #[test]
    fn mismatched_tag_rejected() {
        let mut bytes = Vec::new();
        put_agg_state(&mut bytes, &AggSpec::count_star("c").new_state());
        let mut wrong = AggSpec::sum(col("x"), "s").new_state();
        assert!(get_agg_state(&mut wrong, &mut ByteCursor::new(&bytes)).is_err());
    }
}

//! edf operators: state transformations from input extrinsic states to
//! output intrinsic states, and onward to new extrinsic states (§4.3).
//!
//! Each operator is a push-driven state machine. The executor feeds it
//! [`Update`]s per input port and signals per-port EOF; the operator returns
//! the updates it publishes downstream. Operators declare their output
//! [`EdfMeta`] (schema / keys / stream kind) at build time so the whole
//! DAG's metadata is known before execution — the *consistency* closure
//! property (§3.1).

pub mod agg_op;
pub mod filter;
pub mod join;
pub mod key_index;
pub mod map;
pub mod map_ci;
pub mod sharded;
pub mod sort;
pub mod spill;

pub use agg_op::AggOp;
pub use filter::FilterOp;
pub use join::JoinOp;
pub use map::MapOp;
pub use sharded::{ShardMode, ShardPlan};
pub use sort::SortOp;

use crate::meta::EdfMeta;
use crate::update::Update;
use crate::Result;
use std::sync::Arc;
use wake_data::{Column, DataFrame, Schema};

/// A push-driven edf operator.
pub trait Operator: Send {
    /// Consume one update on `port`; return the updates to publish.
    fn on_update(&mut self, port: usize, update: &Update) -> Result<Vec<Update>>;

    /// Signal that `port`'s upstream is exhausted; return final flushes.
    /// The executor forwards EOF downstream once *all* ports are closed.
    fn on_eof(&mut self, port: usize) -> Result<Vec<Update>>;

    /// Static description of the output edf.
    fn meta(&self) -> &EdfMeta;

    /// Approximate bytes of buffered operator state (peak-memory metric).
    fn state_bytes(&self) -> usize {
        0
    }

    /// Observability detail beyond `state_bytes`. Sharded operators
    /// override this to expose per-shard buffered state; the default is
    /// the empty report (unsharded / stateless operators).
    fn report(&self) -> OpReport {
        OpReport::default()
    }
}

/// Point-in-time operator detail for per-node profiles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpReport {
    /// Buffered state bytes per shard (`state_bytes()` = the sum).
    /// Empty for unsharded operators.
    pub shard_state_bytes: Vec<usize>,
}

/// A growable row store over shared frames: operators buffer their inputs
/// as `Arc<DataFrame>`s and address rows as `(frame, row)` pairs, so
/// buffering never copies payloads.
#[derive(Debug, Default, Clone)]
pub struct RowStore {
    frames: Vec<Arc<DataFrame>>,
    rows: usize,
}

/// Address of one buffered row.
pub type RowRef = (u32, u32);

impl RowStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a frame; returns the index assigned to it.
    pub fn push(&mut self, frame: Arc<DataFrame>) -> u32 {
        self.rows += frame.num_rows();
        self.frames.push(frame);
        (self.frames.len() - 1) as u32
    }

    pub fn clear(&mut self) {
        self.frames.clear();
        self.rows = 0;
    }

    pub fn num_rows(&self) -> usize {
        self.rows
    }

    pub fn frames(&self) -> &[Arc<DataFrame>] {
        &self.frames
    }

    pub fn frame(&self, idx: u32) -> &Arc<DataFrame> {
        &self.frames[idx as usize]
    }

    /// Iterate all row refs in insertion order.
    pub fn iter_refs(&self) -> impl Iterator<Item = RowRef> + '_ {
        self.frames
            .iter()
            .enumerate()
            .flat_map(|(fi, f)| (0..f.num_rows() as u32).map(move |ri| (fi as u32, ri)))
    }

    /// Materialise the whole store as one frame with the given schema.
    pub fn concat(&self, schema: &Arc<Schema>) -> Result<DataFrame> {
        if self.frames.is_empty() {
            return Ok(DataFrame::empty(schema.clone()));
        }
        let refs: Vec<&DataFrame> = self.frames.iter().map(|f| f.as_ref()).collect();
        DataFrame::concat(&refs)
    }

    /// Gather the given rows into fresh columns, in order, producing a
    /// frame with this store's schema. Fully typed: no `Value` cells are
    /// materialised.
    pub fn gather(&self, refs: &[RowRef]) -> Result<DataFrame> {
        let schema = self
            .frames
            .first()
            .map(|f| f.schema().clone())
            .ok_or_else(|| wake_data::DataError::Invalid("gather from empty row store".into()))?;
        let columns = self.gather_columns(refs)?;
        DataFrame::new(schema, columns)
    }

    /// Typed gather of every column at `refs` (frames must be non-empty).
    pub fn gather_columns(&self, refs: &[RowRef]) -> Result<Vec<Column>> {
        let schema = self.frames[0].schema().clone();
        let refs: Vec<Option<RowRef>> = refs.iter().map(|&r| Some(r)).collect();
        self.gather_opt_columns(&refs, &schema)
    }

    /// Typed gather where `None` refs produce null cells (the unmatched
    /// side of a left join). Returns one column per store column, or a
    /// typed error when a buffered frame does not match the store schema —
    /// a malformed input must fail the query, not panic a worker thread.
    pub fn gather_opt_columns(
        &self,
        refs: &[Option<RowRef>],
        schema: &Arc<Schema>,
    ) -> Result<Vec<Column>> {
        use wake_data::column::ColumnData;
        let ncols = schema.len();
        (0..ncols)
            .map(|c| {
                if self.frames.is_empty() {
                    // No buffered rows at all: every ref must be None.
                    debug_assert!(refs.iter().all(Option::is_none));
                    return Ok(Column::nulls(schema.fields()[c].dtype, refs.len()));
                }
                let cols: Vec<&Column> = self.frames.iter().map(|f| f.column_at(c)).collect();
                let any_none = refs.iter().any(Option::is_none);
                let any_mask = cols.iter().any(|col| col.validity().is_some());
                let validity = (any_none || any_mask).then(|| {
                    refs.iter()
                        .map(|r| match r {
                            Some((fi, ri)) => cols[*fi as usize].is_valid(*ri as usize),
                            None => false,
                        })
                        .collect::<Vec<bool>>()
                });
                macro_rules! gather {
                    ($variant:ident, $slice:ident, $default:expr) => {{
                        let slices = cols
                            .iter()
                            .map(|col| {
                                col.$slice()
                                    .ok_or_else(|| wake_data::DataError::TypeMismatch {
                                        expected: format!(
                                            "{} for buffered column {}",
                                            self.frames[0].column_at(c).data_type(),
                                            schema.fields()[c].name
                                        ),
                                        found: col.data_type().to_string(),
                                    })
                            })
                            .collect::<Result<Vec<_>>>()?;
                        ColumnData::$variant(
                            refs.iter()
                                .map(|r| match r {
                                    Some((fi, ri)) => slices[*fi as usize][*ri as usize].clone(),
                                    None => $default,
                                })
                                .collect(),
                        )
                    }};
                }
                let data = match self.frames[0].column_at(c).data() {
                    ColumnData::Int64(_) => gather!(Int64, as_i64_slice, 0),
                    ColumnData::Date(_) => gather!(Date, as_i64_slice, 0),
                    ColumnData::Float64(_) => gather!(Float64, as_f64_slice, 0.0),
                    ColumnData::Bool(_) => gather!(Bool, as_bool_slice, false),
                    ColumnData::Utf8(_) => {
                        gather!(Utf8, as_str_slice, std::sync::Arc::from(""))
                    }
                };
                Column::with_validity_opt(data, validity)
            })
            .collect()
    }

    /// Approximate buffered bytes.
    pub fn byte_size(&self) -> usize {
        self.frames.iter().map(|f| f.byte_size()).sum()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::progress::Progress;
    use crate::update::Update;
    use std::sync::Arc;
    use wake_data::{Column, DataFrame, DataType, Field, Schema};

    /// Two-column (k: Int64, v: Float64) frame for operator tests.
    pub fn kv_frame(ks: Vec<i64>, vs: Vec<f64>) -> DataFrame {
        let schema = Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Float64),
        ]));
        DataFrame::new(schema, vec![Column::from_i64(ks), Column::from_f64(vs)]).unwrap()
    }

    pub fn delta(frame: DataFrame, processed: u64, total: u64) -> Update {
        Update::delta(frame, Progress::single(0, processed, total))
    }

    pub fn snapshot(frame: DataFrame, processed: u64, total: u64) -> Update {
        Update::snapshot(frame, Progress::single(0, processed, total))
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::kv_frame;
    use super::*;

    #[test]
    fn row_store_gather_and_concat() {
        let mut store = RowStore::new();
        store.push(Arc::new(kv_frame(vec![1, 2], vec![1.0, 2.0])));
        store.push(Arc::new(kv_frame(vec![3], vec![3.0])));
        assert_eq!(store.num_rows(), 3);
        let gathered = store.gather(&[(1, 0), (0, 0)]).unwrap();
        assert_eq!(gathered.num_rows(), 2);
        assert_eq!(gathered.value(0, "k").unwrap(), wake_data::Value::Int(3));
        let schema = store.frame(0).schema().clone();
        let all = store.concat(&schema).unwrap();
        assert_eq!(all.num_rows(), 3);
        assert_eq!(store.iter_refs().count(), 3);
        assert!(store.byte_size() > 0);
    }

    #[test]
    fn empty_store_behaviour() {
        let store = RowStore::new();
        let schema = kv_frame(vec![], vec![]).schema().clone();
        assert_eq!(store.concat(&schema).unwrap().num_rows(), 0);
        assert!(store.gather(&[]).is_err());
    }
}

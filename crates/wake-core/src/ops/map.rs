//! Map (projection) operator — paper §3.2 "Map".
//!
//! Applies a list of named expressions to each arriving state. The function
//! is applied to whole partitions (not rows), an order-preserving local
//! operation (Case 1): `op([p1, p2]) = [op(p1), op(p2)]`, so delta inputs
//! yield delta outputs and clustering is preserved.

use crate::ci::variance_column;
use crate::meta::EdfMeta;
use crate::ops::map_ci::{detect_var_inputs, propagate_variance, VarInputs};
use crate::ops::Operator;
use crate::update::Update;
use crate::Result;
use std::sync::Arc;
use wake_data::{DataFrame, Field, Schema};
use wake_expr::{eval, infer_type, Expr};

/// Projection: compute `exprs` (with output names) over every state.
///
/// When an input column carries a `{col}__var` variance companion (from a
/// CI-enabled aggregation upstream), each output expression referencing it
/// gains its own `{alias}__var` column computed by first-order variance
/// propagation (§6, Appendix B) — so confidence intervals survive
/// projections like Q14's final `100 * promo / total` ratio.
pub struct MapOp {
    exprs: Vec<(Expr, String)>,
    /// Per-expr variance-propagation plan (None = no variance output).
    var_plans: Vec<Option<VarInputs>>,
    meta: EdfMeta,
}

impl MapOp {
    /// Build against the input's metadata; the output schema is inferred.
    /// An output attribute is mutable iff it references a mutable input
    /// attribute (§2.3). The primary key survives when every key column is
    /// projected through (by name).
    pub fn new(input: &EdfMeta, exprs: Vec<(Expr, String)>) -> Result<Self> {
        let mut fields = Vec::with_capacity(exprs.len());
        for (expr, alias) in &exprs {
            let dtype = infer_type(expr, &input.schema)?;
            let mutable = expr
                .referenced_columns()
                .iter()
                .any(|c| input.schema.field(c).map(|f| f.mutable).unwrap_or(false));
            fields.push(Field {
                name: alias.clone(),
                dtype,
                mutable,
            });
        }
        // Variance propagation: outputs referencing CI-carrying inputs get
        // their own variance column (unless the user already projects one
        // with that name explicitly).
        let var_plans = detect_var_inputs(&exprs, &input.schema);
        for ((_, alias), plan) in exprs.iter().zip(&var_plans) {
            if plan.is_some() {
                let vc = variance_column(alias);
                if !fields.iter().any(|f| f.name == vc) {
                    fields.push(Field::mutable(vc, wake_data::DataType::Float64));
                }
            }
        }
        let schema = Arc::new(Schema::new(fields));
        let key_survives = !input.primary_key.is_empty()
            && input.primary_key.iter().all(|k| {
                exprs.iter().any(|(e, alias)| {
                    alias == k && matches!(e, Expr::Col(c) if c.as_ref() == k.as_str())
                })
            });
        let primary_key = if key_survives {
            input.primary_key.clone()
        } else {
            Vec::new()
        };
        let clustering = input.clustering_key.clone().filter(|ck| {
            ck.iter().all(|k| {
                exprs.iter().any(|(e, alias)| {
                    alias == k && matches!(e, Expr::Col(c) if c.as_ref() == k.as_str())
                })
            })
        });
        let meta = EdfMeta::new(schema, primary_key, input.kind).with_clustering(clustering);
        Ok(MapOp {
            exprs,
            var_plans,
            meta,
        })
    }

    fn apply(&self, frame: &DataFrame) -> Result<DataFrame> {
        let mut columns = self
            .exprs
            .iter()
            .map(|(e, _)| eval(e, frame))
            .collect::<Result<Vec<_>>>()?;
        // Append propagated variance columns in schema order.
        for (i, plan) in self.var_plans.iter().enumerate() {
            if let Some(plan) = plan {
                let vc = variance_column(&self.exprs[i].1);
                // Skip if the user's own projection already supplies a
                // column with this name (it occupies a slot among the
                // first `exprs.len()` schema fields).
                if self.meta.schema.index_of(&vc)? < self.exprs.len() {
                    continue;
                }
                columns.push(propagate_variance(
                    &self.exprs[i].0,
                    frame,
                    plan,
                    &columns[i],
                )?);
            }
        }
        DataFrame::new(self.meta.schema.clone(), columns)
    }
}

impl Operator for MapOp {
    fn on_update(&mut self, port: usize, update: &Update) -> Result<Vec<Update>> {
        debug_assert_eq!(port, 0);
        let mapped = self.apply(&update.frame)?;
        Ok(vec![Update {
            frame: Arc::new(mapped),
            progress: update.progress.clone(),
            kind: update.kind,
        }])
    }

    fn on_eof(&mut self, _port: usize) -> Result<Vec<Update>> {
        Ok(Vec::new())
    }

    fn meta(&self) -> &EdfMeta {
        &self.meta
    }
}

/// Convenience: identity projections for the named columns.
pub fn passthrough(names: &[&str]) -> Vec<(Expr, String)> {
    names
        .iter()
        .map(|n| (wake_expr::col(n), n.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{delta, kv_frame, snapshot};
    use crate::update::UpdateKind;
    use wake_data::{DataType, Value};
    use wake_expr::{col, lit_f64};

    fn input_meta(kind: UpdateKind) -> EdfMeta {
        let frame = kv_frame(vec![], vec![]);
        EdfMeta::new(frame.schema().clone(), vec!["k".into()], kind)
            .with_clustering(Some(vec!["k".into()]))
    }

    #[test]
    fn projects_and_preserves_kind() {
        let mut op = MapOp::new(
            &input_meta(UpdateKind::Delta),
            vec![
                (col("k"), "k".into()),
                (col("v").mul(lit_f64(2.0)), "v2".into()),
            ],
        )
        .unwrap();
        assert_eq!(op.meta().kind, UpdateKind::Delta);
        assert_eq!(op.meta().primary_key, vec!["k".to_string()]);
        assert!(op.meta().clustered_on(&["k".into()]));
        let out = op
            .on_update(0, &delta(kv_frame(vec![1, 2], vec![1.5, 2.5]), 2, 4))
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, UpdateKind::Delta);
        assert_eq!(out[0].frame.value(1, "v2").unwrap(), Value::Float(5.0));
        assert!((out[0].t() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dropping_key_clears_it() {
        let op = MapOp::new(&input_meta(UpdateKind::Delta), vec![(col("v"), "v".into())]).unwrap();
        assert!(op.meta().primary_key.is_empty());
        assert!(op.meta().clustering_key.is_none());
    }

    #[test]
    fn renaming_key_clears_it() {
        let op = MapOp::new(
            &input_meta(UpdateKind::Delta),
            vec![(col("k"), "key_renamed".into()), (col("v"), "v".into())],
        )
        .unwrap();
        assert!(op.meta().primary_key.is_empty());
    }

    #[test]
    fn snapshot_passes_through() {
        let mut op = MapOp::new(
            &input_meta(UpdateKind::Snapshot),
            vec![(col("k"), "k".into())],
        )
        .unwrap();
        let out = op
            .on_update(0, &snapshot(kv_frame(vec![7], vec![0.0]), 1, 2))
            .unwrap();
        assert_eq!(out[0].kind, UpdateKind::Snapshot);
    }

    #[test]
    fn mutability_propagates_from_inputs() {
        let schema = Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::mutable("sum_v", DataType::Float64),
        ]));
        let input = EdfMeta::new(schema, vec!["k".into()], UpdateKind::Snapshot);
        let op = MapOp::new(
            &input,
            vec![
                (col("k"), "k".into()),
                (col("sum_v").mul(lit_f64(0.5)), "half".into()),
            ],
        )
        .unwrap();
        assert!(!op.meta().schema.field("k").unwrap().mutable);
        assert!(op.meta().schema.field("half").unwrap().mutable);
    }

    #[test]
    fn type_errors_surface_at_build_time() {
        let err = MapOp::new(
            &input_meta(UpdateKind::Delta),
            vec![(col("missing"), "m".into())],
        );
        assert!(err.is_err());
    }

    #[test]
    fn variance_propagation_through_map() {
        // Input carries s__var: mapped output s/2 must carry its own var.
        let schema = Arc::new(Schema::new(vec![
            Field::mutable("s", DataType::Float64),
            Field::mutable("s__var", DataType::Float64),
        ]));
        let input = EdfMeta::new(schema.clone(), vec![], UpdateKind::Snapshot);
        let mut op = MapOp::new(&input, vec![(col("s").mul(lit_f64(0.5)), "half".into())]).unwrap();
        assert!(op.meta().schema.contains("half__var"));
        let frame = wake_data::DataFrame::new(
            schema,
            vec![
                wake_data::Column::from_f64(vec![10.0]),
                wake_data::Column::from_f64(vec![4.0]),
            ],
        )
        .unwrap();
        let out = op
            .on_update(
                0,
                &crate::update::Update::snapshot(frame, crate::progress::Progress::single(0, 1, 2)),
            )
            .unwrap();
        // Var(0.5·s) = 0.25·Var(s) = 1.0.
        let v = out[0]
            .frame
            .value(0, "half__var")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((v - 1.0).abs() < 1e-3, "propagated var {v}");
    }

    #[test]
    fn explicit_var_projection_is_not_duplicated() {
        let schema = Arc::new(Schema::new(vec![
            Field::mutable("s", DataType::Float64),
            Field::mutable("s__var", DataType::Float64),
        ]));
        let input = EdfMeta::new(schema.clone(), vec![], UpdateKind::Snapshot);
        // The user projects the variance themselves under the output name.
        let mut op = MapOp::new(
            &input,
            vec![(col("s"), "s".into()), (col("s__var"), "s__var".into())],
        )
        .unwrap();
        assert_eq!(op.meta().schema.len(), 2, "no duplicate var column");
        let frame = wake_data::DataFrame::new(
            schema,
            vec![
                wake_data::Column::from_f64(vec![1.0]),
                wake_data::Column::from_f64(vec![2.0]),
            ],
        )
        .unwrap();
        let out = op
            .on_update(
                0,
                &crate::update::Update::snapshot(frame, crate::progress::Progress::single(0, 1, 1)),
            )
            .unwrap();
        assert_eq!(out[0].frame.num_columns(), 2);
    }

    #[test]
    fn passthrough_builder() {
        let exprs = passthrough(&["a", "b"]);
        assert_eq!(exprs.len(), 2);
        assert_eq!(exprs[0].1, "a");
    }
}

//! The message type flowing along edf edges.

use crate::progress::Progress;
use std::sync::Arc;
use wake_data::DataFrame;

/// How an [`Update`]'s frame relates to the edf's current state.
///
/// This encodes the paper's case analysis (§2.2):
/// - [`UpdateKind::Delta`]: *order-preserving local* output — the frame
///   contains only **new rows** to append (Case 1). Readers, maps/filters
///   over constant attributes, and streaming joins produce deltas.
/// - [`UpdateKind::Snapshot`]: *complete refresh* — the frame **replaces**
///   the edf's previous state (Cases 2–3). Aggregations (whose earlier
///   output rows change) and sort/limit produce snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    Delta,
    Snapshot,
}

/// One state transition of an edf: a frame plus progress metadata.
///
/// Frames are shared via `Arc` so that fan-out edges and pipeline threads
/// never copy payloads (§7.3 "shared pointers of data to reduce cloning
/// costs").
#[derive(Debug, Clone)]
pub struct Update {
    pub frame: Arc<DataFrame>,
    pub progress: Progress,
    pub kind: UpdateKind,
}

impl Update {
    pub fn delta(frame: DataFrame, progress: Progress) -> Self {
        Update {
            frame: Arc::new(frame),
            progress,
            kind: UpdateKind::Delta,
        }
    }

    pub fn snapshot(frame: DataFrame, progress: Progress) -> Self {
        Update {
            frame: Arc::new(frame),
            progress,
            kind: UpdateKind::Snapshot,
        }
    }

    pub fn shared(frame: Arc<DataFrame>, progress: Progress, kind: UpdateKind) -> Self {
        Update {
            frame,
            progress,
            kind,
        }
    }

    /// Progress ratio carried by this update.
    pub fn t(&self) -> f64 {
        self.progress.t()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wake_data::{Column, DataType, Field, Schema};

    #[test]
    fn constructors_set_kind() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let df = DataFrame::new(schema, vec![Column::from_i64(vec![1])]).unwrap();
        let d = Update::delta(df.clone(), Progress::single(0, 1, 2));
        assert_eq!(d.kind, UpdateKind::Delta);
        assert!((d.t() - 0.5).abs() < 1e-12);
        let s = Update::snapshot(df, Progress::single(0, 2, 2));
        assert_eq!(s.kind, UpdateKind::Snapshot);
        assert_eq!(s.t(), 1.0);
    }

    #[test]
    fn sharing_is_zero_copy() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let df = Arc::new(DataFrame::new(schema, vec![Column::from_i64(vec![1])]).unwrap());
        let u = Update::shared(df.clone(), Progress::new(), UpdateKind::Delta);
        assert!(Arc::ptr_eq(&u.frame, &df));
    }
}

//! End-to-end through the CSV path: write a generated table to partitioned
//! CSV files on disk, read it back through `CsvDirSource` (the paper's
//! "list of file names + per-file tuple counts" metadata, §4.4), and get
//! the same OLA results as the in-memory source.

use std::sync::Arc;
use wake::core::agg::AggSpec;
use wake::core::graph::QueryGraph;
use wake::data::csv::write_csv_file;
use wake::data::source::CsvDirSource;
use wake::data::TableSource;
use wake::engine::SteppedExecutor;
use wake::expr::{col, lit_date};
use wake::tpch::TpchData;
use wake_engine::SeriesExt;

#[test]
fn csv_backed_query_matches_memory_backed() {
    let data = TpchData::generate(0.001, 42);
    let dir = std::env::temp_dir().join(format!("wake_csv_pipeline_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Partition lineitem into 4 CSV files.
    let li = &data.lineitem;
    let per = li.num_rows().div_ceil(4);
    let mut files = Vec::new();
    let mut rows = Vec::new();
    for (p, start) in (0..li.num_rows()).step_by(per).enumerate() {
        let end = (start + per).min(li.num_rows());
        let idx: Vec<usize> = (start..end).collect();
        let chunk = li.take(&idx);
        let path = dir.join(format!("lineitem-{p:02}.csv"));
        write_csv_file(&chunk, &path).unwrap();
        files.push(path);
        rows.push(chunk.num_rows());
    }
    let csv_src = CsvDirSource::new(
        "lineitem",
        li.schema().clone(),
        files.clone(),
        rows,
        vec!["l_orderkey".into(), "l_linenumber".into()],
        Some(vec!["l_orderkey".into()]),
    )
    .unwrap();
    assert_eq!(csv_src.meta().total_rows(), li.num_rows());

    let build = |g: &mut QueryGraph, read_node| {
        let f = g.filter(read_node, col("l_shipdate").ge(lit_date(1994, 1, 1)));
        let a = g.agg(
            f,
            vec!["l_returnflag"],
            vec![
                AggSpec::sum(col("l_quantity"), "s"),
                AggSpec::count_star("n"),
            ],
        );
        g.sink(a);
    };

    let mut g_csv = QueryGraph::new();
    let r = g_csv.read(csv_src);
    build(&mut g_csv, r);
    let csv_series = SteppedExecutor::new(g_csv).unwrap().run_collect().unwrap();

    let mem_src = data.source("lineitem", 4);
    let mut g_mem = QueryGraph::new();
    let r = g_mem.read(mem_src);
    build(&mut g_mem, r);
    let mem_series = SteppedExecutor::new(g_mem).unwrap().run_collect().unwrap();

    // Same number of estimates and identical final state.
    assert_eq!(csv_series.len(), mem_series.len());
    assert_eq!(
        csv_series.final_frame().as_ref(),
        mem_series.final_frame().as_ref()
    );
    // And intermediate estimates agree too (deterministic read order).
    for (a, b) in csv_series.iter().zip(mem_series.iter()) {
        assert_eq!(a.frame.as_ref(), b.frame.as_ref());
    }

    let _ = Arc::strong_count(csv_series.final_frame());
    std::fs::remove_dir_all(&dir).ok();
}

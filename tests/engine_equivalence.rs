//! The pipelined multi-threaded engine (§7.2) must agree with the
//! deterministic stepper on the final (exact) state of every TPC-H query,
//! and estimate streams must be well-formed under concurrency.

use std::sync::Arc;
use wake::core::graph::Parallelism;
use wake::core::metrics;
use wake::engine::{SteppedExecutor, ThreadedExecutor};
use wake::tpch::{all_queries, TpchData, TpchDb};
use wake_engine::SeriesExt;

#[test]
fn threaded_and_stepped_agree_on_all_queries() {
    let data = Arc::new(TpchData::generate(0.002, 42));
    let db = TpchDb::new(data, 6);
    for spec in all_queries() {
        let stepped = SteppedExecutor::new((spec.build)(&db))
            .unwrap()
            .run_collect()
            .unwrap();
        let threaded = ThreadedExecutor::new((spec.build)(&db))
            .run_collect()
            .unwrap();
        let sf = stepped.final_frame();
        let tf = threaded.final_frame();
        assert_eq!(
            sf.num_rows(),
            tf.num_rows(),
            "{}: stepped {} rows vs threaded {} rows",
            spec.name,
            sf.num_rows(),
            tf.num_rows()
        );
        if sf.num_rows() == 0 {
            continue;
        }
        let r = metrics::compare(tf, sf, spec.keys, spec.values).unwrap();
        assert!(
            r.recall > 0.999 && r.precision > 0.999 && r.mape < 1e-6,
            "{}: {r:?}",
            spec.name
        );
    }
}

#[test]
fn threaded_estimate_streams_are_well_formed() {
    let data = Arc::new(TpchData::generate(0.002, 9));
    let db = TpchDb::new(data, 8);
    for name in ["q1", "q3", "q6", "q13", "q18"] {
        let spec = wake::tpch::query_by_name(name).unwrap();
        let series = ThreadedExecutor::new((spec.build)(&db))
            .run_collect()
            .unwrap();
        assert!(!series.is_empty(), "{name}");
        assert!(series.last().unwrap().is_final, "{name}");
        assert!(
            series.windows(2).all(|w| w[0].elapsed <= w[1].elapsed),
            "{name}: timestamps must be monotone"
        );
        assert!(
            series.windows(2).all(|w| w[0].seq + 1 == w[1].seq),
            "{name}: sequence numbers must be dense"
        );
    }
}

#[test]
fn sharded_stepped_agrees_with_serial_on_all_queries() {
    // Partition parallelism must not change answers: every TPC-H query at
    // Parallelism::Fixed(4) (scoped shard workers under the deterministic
    // stepper) against Fixed(1) (the exact pre-sharding code path). The
    // estimate cadence is deterministic either way, so series lengths
    // match; values agree up to the float reassociation a sharded join's
    // row reordering induces in downstream aggregates.
    let data = Arc::new(TpchData::generate(0.002, 11));
    let db = TpchDb::new(data, 6);
    for spec in all_queries() {
        let serial =
            SteppedExecutor::new((spec.build)(&db).with_parallelism(Parallelism::Fixed(1)))
                .unwrap()
                .run_collect()
                .unwrap();
        let sharded =
            SteppedExecutor::new((spec.build)(&db).with_parallelism(Parallelism::Fixed(4)))
                .unwrap()
                .run_collect()
                .unwrap();
        assert_eq!(
            serial.len(),
            sharded.len(),
            "{}: estimate cadence changed under sharding",
            spec.name
        );
        let sf = serial.final_frame();
        let tf = sharded.final_frame();
        assert_eq!(sf.num_rows(), tf.num_rows(), "{}", spec.name);
        if sf.num_rows() == 0 {
            continue;
        }
        let r = metrics::compare(tf, sf, spec.keys, spec.values).unwrap();
        assert!(
            r.recall > 0.999 && r.precision > 0.999 && r.mape < 1e-9,
            "{}: {r:?}",
            spec.name
        );
    }
}

#[test]
fn threaded_sharded_pool_matches_serial_reference() {
    // The pool-mode fan-out (persistent per-shard workers behind bounded
    // channels) under the pipelined executor must still produce the serial
    // answer — including non-power-of-two shard counts.
    let data = Arc::new(TpchData::generate(0.002, 5));
    let db = TpchDb::new(data, 8);
    for name in ["q3", "q13", "q18"] {
        let spec = wake::tpch::query_by_name(name).unwrap();
        let reference =
            SteppedExecutor::new((spec.build)(&db).with_parallelism(Parallelism::Fixed(1)))
                .unwrap()
                .run_collect()
                .unwrap();
        let pooled =
            ThreadedExecutor::new((spec.build)(&db).with_parallelism(Parallelism::Fixed(3)))
                .run_collect()
                .unwrap();
        let sf = reference.final_frame();
        let tf = pooled.final_frame();
        assert_eq!(sf.num_rows(), tf.num_rows(), "{name}");
        if sf.num_rows() == 0 {
            continue;
        }
        let r = metrics::compare(tf, sf, spec.keys, spec.values).unwrap();
        assert!(
            r.recall > 0.999 && r.precision > 0.999 && r.mape < 1e-9,
            "{name}: {r:?}"
        );
    }
}

#[test]
fn threaded_runs_are_reproducible_in_value() {
    // Thread scheduling may change the estimate cadence but never the
    // final answer.
    let data = Arc::new(TpchData::generate(0.002, 3));
    let db = TpchDb::new(data, 8);
    let spec = wake::tpch::query_by_name("q5").unwrap();
    let a = ThreadedExecutor::new((spec.build)(&db))
        .run_collect()
        .unwrap();
    let b = ThreadedExecutor::new((spec.build)(&db))
        .run_collect()
        .unwrap();
    assert_eq!(a.final_frame().as_ref(), b.final_frame().as_ref());
}

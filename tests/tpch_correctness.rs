//! End-to-end correctness of all 22 TPC-H queries.
//!
//! The central closure property (§3.1 "Convergence") says the final edf
//! state equals the answer a conventional system computes. We check it two
//! ways: (a) running each query with many partitions (full incremental
//! merge machinery) must produce the same final frame as running with a
//! single partition per table (one-shot path), and (b) recall/precision
//! of the final state are exactly 1 under the query's output keys.

use std::sync::Arc;
use wake::core::metrics;
use wake::engine::SteppedExecutor;
use wake::tpch::{all_queries, TpchData, TpchDb};
use wake_engine::SeriesExt;

fn run_final(db: &TpchDb, name: &str) -> Arc<wake::data::DataFrame> {
    let spec = wake::tpch::query_by_name(name).unwrap();
    let g = (spec.build)(db);
    let series = SteppedExecutor::new(g)
        .unwrap_or_else(|e| panic!("{name}: build failed: {e}"))
        .run_collect()
        .unwrap_or_else(|e| panic!("{name}: run failed: {e}"));
    assert!(!series.is_empty(), "{name}: no estimates produced");
    assert!(series.last().unwrap().is_final);
    series.final_frame().clone()
}

#[test]
fn all_queries_partitioned_equals_single_shot() {
    let data = Arc::new(TpchData::generate(0.002, 42));
    let incremental = TpchDb::ambient(data.clone(), 8).unwrap();
    let oneshot = TpchDb::ambient(data, 1).unwrap();
    for spec in all_queries() {
        let inc = run_final(&incremental, spec.name);
        let one = run_final(&oneshot, spec.name);
        assert_eq!(
            inc.num_rows(),
            one.num_rows(),
            "{}: row count {} (incremental) vs {} (one-shot)\ninc:\n{}\none:\n{}",
            spec.name,
            inc.num_rows(),
            one.num_rows(),
            inc.pretty(12),
            one.pretty(12)
        );
        if inc.num_rows() == 0 {
            continue;
        }
        // Key-matched numeric comparison (order-insensitive, fp-tolerant).
        let report = metrics::compare(&inc, &one, spec.keys, spec.values)
            .unwrap_or_else(|e| panic!("{}: compare failed: {e}", spec.name));
        assert!(
            report.recall > 0.999 && report.precision > 0.999,
            "{}: recall {} precision {}",
            spec.name,
            report.recall,
            report.precision
        );
        assert!(
            report.mape < 1e-6,
            "{}: final MAPE {} should be ~0\ninc:\n{}\none:\n{}",
            spec.name,
            report.mape,
            inc.pretty(12),
            one.pretty(12)
        );
    }
}

#[test]
fn estimates_converge_monotonically_in_progress() {
    let data = Arc::new(TpchData::generate(0.002, 7));
    let db = TpchDb::ambient(data, 10).unwrap();
    // Q1 is the canonical OLA query: check error decreases broadly.
    let spec = wake::tpch::query_by_name("q1").unwrap();
    let series = SteppedExecutor::new((spec.build)(&db))
        .unwrap()
        .run_collect()
        .unwrap();
    let truth = series.final_frame().clone();
    let mut errors = Vec::new();
    for est in &series {
        let r = metrics::compare(&est.frame, &truth, spec.keys, spec.values).unwrap();
        errors.push(r.mape);
    }
    assert_eq!(*errors.last().unwrap(), 0.0);
    // First-half mean error should exceed second-half mean error.
    let mid = errors.len() / 2;
    let first: f64 = errors[..mid].iter().sum::<f64>() / mid.max(1) as f64;
    let second: f64 = errors[mid..].iter().sum::<f64>() / (errors.len() - mid) as f64;
    assert!(
        second <= first + 1e-9,
        "error should shrink: first half {first}, second half {second} ({errors:?})"
    );
}

#[test]
fn first_estimates_arrive_before_final() {
    let data = Arc::new(TpchData::generate(0.002, 11));
    let db = TpchDb::ambient(data, 10).unwrap();
    for name in ["q1", "q6", "q18"] {
        let spec = wake::tpch::query_by_name(name).unwrap();
        let series = SteppedExecutor::new((spec.build)(&db))
            .unwrap()
            .run_collect()
            .unwrap();
        assert!(
            series.len() >= 5,
            "{name}: expected a stream of estimates, got {}",
            series.len()
        );
        assert!(series.first_latency().unwrap() <= series.final_latency().unwrap());
        // Progress is monotone and finishes complete.
        assert!(series.windows(2).all(|w| w[0].t <= w[1].t + 1e-12));
        assert!((series.last().unwrap().t - 1.0).abs() < 1e-9);
    }
}

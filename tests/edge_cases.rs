//! Failure injection and degenerate inputs: empty tables, single rows,
//! all-null aggregation inputs, empty partitions mid-stream, zero-match
//! joins, and deeply chained snapshots. None of these may panic, and all
//! must satisfy convergence (final = exact).

use std::sync::Arc;
use wake::core::agg::AggSpec;
use wake::core::graph::{JoinKind, QueryGraph};
use wake::data::{Column, DataFrame, DataType, Field, MemorySource, Schema, Value};
use wake::engine::{SteppedExecutor, ThreadedExecutor};
use wake::expr::{col, lit_f64};
use wake_engine::SeriesExt;

fn schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Float64),
    ]))
}

fn frame(ks: Vec<i64>, vs: Vec<f64>) -> DataFrame {
    DataFrame::new(schema(), vec![Column::from_i64(ks), Column::from_f64(vs)]).unwrap()
}

#[test]
fn empty_table_through_full_pipeline() {
    let src = MemorySource::from_frame("t", &frame(vec![], vec![]), 4, vec![], None).unwrap();
    let mut g = QueryGraph::new();
    let r = g.read(src);
    let f = g.filter(r, col("v").gt(lit_f64(0.0)));
    let a = g.agg(f, vec!["k"], vec![AggSpec::sum(col("v"), "s")]);
    let s = g.sort(a, vec!["s"], vec![true], Some(5));
    g.sink(s);
    let series = SteppedExecutor::new(g).unwrap().run_collect().unwrap();
    assert!(series.last().unwrap().is_final);
    assert_eq!(series.final_frame().num_rows(), 0);
}

#[test]
fn single_row_table() {
    let src = MemorySource::from_frame("t", &frame(vec![7], vec![3.5]), 10, vec![], None).unwrap();
    let mut g = QueryGraph::new();
    let r = g.read(src);
    let a = g.agg(
        r,
        vec![],
        vec![
            AggSpec::avg(col("v"), "a"),
            AggSpec::var(col("v"), "var"),
            AggSpec::stddev(col("v"), "sd"),
        ],
    );
    g.sink(a);
    let series = SteppedExecutor::new(g).unwrap().run_collect().unwrap();
    let f = series.final_frame();
    assert_eq!(f.value(0, "a").unwrap(), Value::Float(3.5));
    // Variance of a single observation is undefined -> NULL, not a panic.
    assert!(f.value(0, "var").unwrap().is_null());
    assert!(f.value(0, "sd").unwrap().is_null());
}

#[test]
fn all_null_aggregation_input() {
    let s = Arc::new(Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Float64),
    ]));
    let df = DataFrame::from_rows(
        s,
        &[
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(2), Value::Null],
        ],
    )
    .unwrap();
    let src = MemorySource::from_frame("t", &df, 2, vec![], None).unwrap();
    let mut g = QueryGraph::new();
    let r = g.read(src);
    let a = g.agg(
        r,
        vec!["k"],
        vec![
            AggSpec::count(col("v"), "c"),
            AggSpec::sum(col("v"), "s"),
            AggSpec::min(col("v"), "mn"),
            AggSpec::count_distinct(col("v"), "d"),
        ],
    );
    g.sink(a);
    let f = SteppedExecutor::new(g)
        .unwrap()
        .run_collect()
        .unwrap()
        .final_frame()
        .clone();
    assert_eq!(f.num_rows(), 2);
    assert_eq!(f.value(0, "c").unwrap(), Value::Float(0.0));
    assert_eq!(f.value(0, "s").unwrap(), Value::Float(0.0));
    assert!(f.value(0, "mn").unwrap().is_null());
    assert_eq!(f.value(0, "d").unwrap(), Value::Float(0.0));
}

#[test]
fn empty_partitions_mid_stream() {
    // Partitions: [2 rows][0 rows][1 row] — zero-row partitions must not
    // break progress accounting or scaling.
    let parts = vec![
        frame(vec![1, 2], vec![1.0, 2.0]),
        frame(vec![], vec![]),
        frame(vec![3], vec![3.0]),
    ];
    let src = MemorySource::new("t", parts, vec![], None).unwrap();
    let mut g = QueryGraph::new();
    let r = g.read(src);
    let a = g.agg(r, vec![], vec![AggSpec::sum(col("v"), "s")]);
    g.sink(a);
    let series = SteppedExecutor::new(g).unwrap().run_collect().unwrap();
    assert_eq!(
        series.final_frame().value(0, "s").unwrap(),
        Value::Float(6.0)
    );
}

#[test]
fn zero_match_joins_of_all_kinds() {
    let left =
        MemorySource::from_frame("l", &frame(vec![1, 2], vec![1.0, 2.0]), 1, vec![], None).unwrap();
    let right =
        MemorySource::from_frame("r", &frame(vec![8, 9], vec![0.0, 0.0]), 1, vec![], None).unwrap();
    for (kind, expected_rows) in [
        (JoinKind::Inner, 0usize),
        (JoinKind::Left, 2),
        (JoinKind::Semi, 0),
        (JoinKind::Anti, 2),
    ] {
        let mut g = QueryGraph::new();
        let l = g.read(left.clone());
        let r = g.read(right.clone());
        let j = g.join_kind(l, r, vec!["k"], vec!["k"], kind);
        g.sink(j);
        let series = SteppedExecutor::new(g).unwrap().run_collect().unwrap();
        assert_eq!(
            series.final_frame().num_rows(),
            expected_rows,
            "join kind {kind:?}"
        );
    }
}

#[test]
fn deep_snapshot_chain_converges() {
    // agg -> filter -> agg -> filter -> agg over random-ish data.
    let rows: Vec<(i64, f64)> = (0..300).map(|i| (i % 30, ((i * 7) % 13) as f64)).collect();
    let df = frame(
        rows.iter().map(|r| r.0).collect(),
        rows.iter().map(|r| r.1).collect(),
    );
    let build = |parts: usize| {
        let src = MemorySource::from_frame("t", &df, df.num_rows().div_ceil(parts), vec![], None)
            .unwrap();
        let mut g = QueryGraph::new();
        let r = g.read(src);
        let a1 = g.agg(r, vec!["k"], vec![AggSpec::sum(col("v"), "s1")]);
        let f1 = g.filter(a1, col("s1").gt(lit_f64(10.0)));
        let a2 = g.agg(
            f1,
            vec![],
            vec![AggSpec::avg(col("s1"), "m"), AggSpec::count_star("n")],
        );
        g.sink(a2);
        g
    };
    let multi = SteppedExecutor::new(build(15))
        .unwrap()
        .run_collect()
        .unwrap();
    let single = SteppedExecutor::new(build(1))
        .unwrap()
        .run_collect()
        .unwrap();
    assert_eq!(multi.final_frame().as_ref(), single.final_frame().as_ref());
}

#[test]
fn threaded_engine_handles_empty_everything() {
    let src = MemorySource::from_frame("t", &frame(vec![], vec![]), 4, vec![], None).unwrap();
    let mut g = QueryGraph::new();
    let r = g.read(src);
    let a = g.agg(r, vec!["k"], vec![AggSpec::count_star("n")]);
    g.sink(a);
    let series = ThreadedExecutor::new(g).run_collect().unwrap();
    assert!(series.last().unwrap().is_final);
    assert_eq!(series.final_frame().num_rows(), 0);
}

#[test]
fn filter_dropping_everything_then_aggregating() {
    let src = MemorySource::from_frame(
        "t",
        &frame(vec![1, 2, 3], vec![1.0, 2.0, 3.0]),
        1,
        vec![],
        None,
    )
    .unwrap();
    let mut g = QueryGraph::new();
    let r = g.read(src);
    let f = g.filter(r, col("v").gt(lit_f64(1e9)));
    let a = g.agg(f, vec![], vec![AggSpec::count_star("n")]);
    g.sink(a);
    let series = SteppedExecutor::new(g).unwrap().run_collect().unwrap();
    // Global aggregate of an empty stream: zero rows (SQL would give one
    // row; edf reports the empty group set, which downstream ops accept).
    assert_eq!(series.final_frame().num_rows(), 0);
}

//! Cross-validation of Wake's final answers against the *independent*
//! naive engine (`wake-baseline::naive`) — different algorithms, different
//! code — for a representative subset of TPC-H queries covering every
//! operator: filter/map (Q1, Q6), semi join (Q4), left join + deep agg
//! (Q13), join + weighted avg (Q14), clustered agg + filter-on-mutable +
//! joins (Q18), anti join + scalar sub-query (Q22).

use std::sync::Arc;
use wake::baseline::naive::{NaiveAgg, NaiveJoin, Table};
use wake::core::metrics;
use wake::data::DataFrame;
use wake::engine::SteppedExecutor;
use wake::expr::{case_when, col, lit_date, lit_f64, lit_str};
use wake::tpch::{query_by_name, TpchData, TpchDb};
use wake_engine::SeriesExt;

fn wake_final(db: &TpchDb, name: &str) -> Arc<DataFrame> {
    let spec = query_by_name(name).unwrap();
    SteppedExecutor::new((spec.build)(db))
        .unwrap()
        .run_collect()
        .unwrap()
        .final_frame()
        .clone()
}

fn check(name: &str, wake: &DataFrame, naive: &DataFrame, keys: &[&str], values: &[&str]) {
    assert_eq!(
        wake.num_rows(),
        naive.num_rows(),
        "{name} row count\nwake:\n{}\nnaive:\n{}",
        wake.pretty(15),
        naive.pretty(15)
    );
    if naive.num_rows() == 0 {
        return;
    }
    let r = metrics::compare(wake, naive, keys, values).unwrap();
    assert!(r.recall > 0.999 && r.precision > 0.999, "{name}: {r:?}");
    assert!(
        r.mape < 1e-6,
        "{name}: MAPE {}\nwake:\n{}\nnaive:\n{}",
        r.mape,
        wake.pretty(15),
        naive.pretty(15)
    );
}

fn data() -> Arc<TpchData> {
    Arc::new(TpchData::generate(0.002, 42))
}

fn rev() -> wake::expr::Expr {
    col("l_extendedprice").mul(lit_f64(1.0).sub(col("l_discount")))
}

#[test]
fn q1_matches_naive() {
    let d = data();
    let db = TpchDb::new(d.clone(), 6);
    let w = wake_final(&db, "q1");
    let naive = Table::new(d.lineitem.clone())
        .filter(&col("l_shipdate").le(lit_date(1998, 9, 2)))
        .unwrap()
        .map(&[
            (col("l_returnflag"), "l_returnflag"),
            (col("l_linestatus"), "l_linestatus"),
            (col("l_quantity"), "l_quantity"),
            (col("l_extendedprice"), "l_extendedprice"),
            (col("l_discount"), "l_discount"),
            (rev(), "disc_price"),
            (rev().mul(lit_f64(1.0).add(col("l_tax"))), "charge"),
        ])
        .unwrap()
        .group_by(
            &["l_returnflag", "l_linestatus"],
            &[
                (NaiveAgg::Sum, col("l_quantity"), "sum_qty"),
                (NaiveAgg::Sum, col("l_extendedprice"), "sum_base_price"),
                (NaiveAgg::Sum, col("disc_price"), "sum_disc_price"),
                (NaiveAgg::Sum, col("charge"), "sum_charge"),
                (NaiveAgg::Avg, col("l_quantity"), "avg_qty"),
                (NaiveAgg::Avg, col("l_extendedprice"), "avg_price"),
                (NaiveAgg::Avg, col("l_discount"), "avg_disc"),
                (NaiveAgg::CountStar, col("l_quantity"), "count_order"),
            ],
        )
        .unwrap();
    check(
        "q1",
        &w,
        naive.frame(),
        &["l_returnflag", "l_linestatus"],
        &[
            "sum_qty",
            "sum_base_price",
            "sum_disc_price",
            "sum_charge",
            "avg_qty",
            "avg_price",
            "avg_disc",
            "count_order",
        ],
    );
}

#[test]
fn q4_matches_naive() {
    let d = data();
    let db = TpchDb::new(d.clone(), 6);
    let w = wake_final(&db, "q4");
    let orders = Table::new(d.orders.clone())
        .filter(
            &col("o_orderdate")
                .ge(lit_date(1993, 7, 1))
                .and(col("o_orderdate").lt(lit_date(1993, 10, 1))),
        )
        .unwrap();
    let lineitem = Table::new(d.lineitem.clone())
        .filter(&col("l_commitdate").lt(col("l_receiptdate")))
        .unwrap();
    let naive = orders
        .join(&lineitem, &["o_orderkey"], &["l_orderkey"], NaiveJoin::Semi)
        .unwrap()
        .group_by(
            &["o_orderpriority"],
            &[(NaiveAgg::CountStar, col("o_orderkey"), "order_count")],
        )
        .unwrap();
    check(
        "q4",
        &w,
        naive.frame(),
        &["o_orderpriority"],
        &["order_count"],
    );
}

#[test]
fn q6_matches_naive() {
    let d = data();
    let db = TpchDb::new(d.clone(), 6);
    let w = wake_final(&db, "q6");
    let naive = Table::new(d.lineitem.clone())
        .filter(
            &col("l_shipdate")
                .ge(lit_date(1994, 1, 1))
                .and(col("l_shipdate").lt(lit_date(1995, 1, 1)))
                .and(col("l_discount").between(lit_f64(0.05), lit_f64(0.07)))
                .and(col("l_quantity").lt(lit_f64(24.0))),
        )
        .unwrap()
        .map(&[(col("l_extendedprice").mul(col("l_discount")), "r")])
        .unwrap()
        .group_by(&[], &[(NaiveAgg::Sum, col("r"), "revenue")])
        .unwrap();
    check("q6", &w, naive.frame(), &[], &["revenue"]);
}

#[test]
fn q13_matches_naive() {
    let d = data();
    let db = TpchDb::new(d.clone(), 6);
    let w = wake_final(&db, "q13");
    let orders = Table::new(d.orders.clone())
        .filter(&col("o_comment").not_like("%special%requests%"))
        .unwrap();
    let naive = Table::new(d.customer.clone())
        .map(&[(col("c_custkey"), "c_custkey")])
        .unwrap()
        .join(&orders, &["c_custkey"], &["o_custkey"], NaiveJoin::Left)
        .unwrap()
        .group_by(
            &["c_custkey"],
            &[(NaiveAgg::Count, col("o_orderkey"), "c_count")],
        )
        .unwrap()
        .group_by(
            &["c_count"],
            &[(NaiveAgg::CountStar, col("c_count"), "custdist")],
        )
        .unwrap();
    check("q13", &w, naive.frame(), &["c_count"], &["custdist"]);
}

#[test]
fn q14_matches_naive() {
    let d = data();
    let db = TpchDb::new(d.clone(), 6);
    let w = wake_final(&db, "q14");
    let li = Table::new(d.lineitem.clone())
        .filter(
            &col("l_shipdate")
                .ge(lit_date(1995, 9, 1))
                .and(col("l_shipdate").lt(lit_date(1995, 10, 1))),
        )
        .unwrap()
        .map(&[(col("l_partkey"), "l_partkey"), (rev(), "r")])
        .unwrap();
    let joined = li
        .join(
            &Table::new(d.part.clone()),
            &["l_partkey"],
            &["p_partkey"],
            NaiveJoin::Inner,
        )
        .unwrap()
        .map(&[
            (
                case_when(vec![(col("p_type").like("PROMO%"), col("r"))], lit_f64(0.0))
                    .mul(lit_f64(100.0)),
                "promo",
            ),
            (col("r"), "r"),
        ])
        .unwrap()
        .group_by(
            &[],
            &[
                (NaiveAgg::Sum, col("promo"), "p"),
                (NaiveAgg::Sum, col("r"), "t"),
            ],
        )
        .unwrap()
        .map(&[(col("p").div(col("t")), "promo_revenue")])
        .unwrap();
    check("q14", &w, joined.frame(), &[], &["promo_revenue"]);
}

#[test]
fn q18_matches_naive() {
    let d = data();
    let db = TpchDb::new(d.clone(), 6);
    let w = wake_final(&db, "q18");
    let oq = Table::new(d.lineitem.clone())
        .group_by(
            &["l_orderkey"],
            &[(NaiveAgg::Sum, col("l_quantity"), "sum_qty")],
        )
        .unwrap()
        // Mirror q18's scale-aware threshold (200 below SF 0.5).
        .filter(&col("sum_qty").gt(lit_f64(200.0)))
        .unwrap();
    let naive = oq
        .join(
            &Table::new(d.orders.clone()),
            &["l_orderkey"],
            &["o_orderkey"],
            NaiveJoin::Inner,
        )
        .unwrap()
        .join(
            &Table::new(d.customer.clone()),
            &["o_custkey"],
            &["c_custkey"],
            NaiveJoin::Inner,
        )
        .unwrap()
        .group_by(
            &[
                "c_name",
                "c_custkey",
                "o_orderkey",
                "o_orderdate",
                "o_totalprice",
            ],
            &[(NaiveAgg::Sum, col("sum_qty"), "total_qty")],
        )
        .unwrap()
        // Mirror the query's ORDER BY ... LIMIT 100 (o_totalprice floats
        // make cutoff ties vanishingly unlikely).
        .sort(&["o_totalprice", "o_orderdate"], &[true, false])
        .unwrap()
        .head(100);
    check("q18", &w, naive.frame(), &["o_orderkey"], &["total_qty"]);
}

#[test]
fn q22_matches_naive() {
    let d = data();
    let db = TpchDb::new(d.clone(), 6);
    let w = wake_final(&db, "q22");
    let codes: Vec<wake::data::Value> = ["13", "31", "23", "29", "30", "18", "17"]
        .iter()
        .map(|c| wake::data::Value::str(*c))
        .collect();
    let cust = Table::new(d.customer.clone())
        .map(&[
            (col("c_custkey"), "c_custkey"),
            (col("c_acctbal"), "c_acctbal"),
            (col("c_phone").substr(1, 2), "cntrycode"),
        ])
        .unwrap()
        .filter(&col("cntrycode").in_list(codes))
        .unwrap();
    let avg_bal = cust
        .filter(&col("c_acctbal").gt(lit_f64(0.0)))
        .unwrap()
        .group_by(&[], &[(NaiveAgg::Avg, col("c_acctbal"), "avg_bal")])
        .unwrap()
        .frame()
        .value(0, "avg_bal")
        .unwrap()
        .as_f64()
        .unwrap();
    let naive = cust
        .join(
            &Table::new(d.orders.clone()),
            &["c_custkey"],
            &["o_custkey"],
            NaiveJoin::Anti,
        )
        .unwrap()
        .filter(&col("c_acctbal").gt(lit_f64(avg_bal)))
        .unwrap()
        .group_by(
            &["cntrycode"],
            &[
                (NaiveAgg::CountStar, col("c_acctbal"), "numcust"),
                (NaiveAgg::Sum, col("c_acctbal"), "totacctbal"),
            ],
        )
        .unwrap();
    check(
        "q22",
        &w,
        naive.frame(),
        &["cntrycode"],
        &["numcust", "totacctbal"],
    );
}

#[test]
fn q19_matches_naive() {
    let d = data();
    let db = TpchDb::new(d.clone(), 6);
    let w = wake_final(&db, "q19");
    use wake::data::Value;
    let li = Table::new(d.lineitem.clone())
        .filter(
            &col("l_shipmode")
                .in_list(vec![Value::str("AIR"), Value::str("REG AIR")])
                .and(col("l_shipinstruct").eq(lit_str("DELIVER IN PERSON"))),
        )
        .unwrap();
    let joined = li
        .join(
            &Table::new(d.part.clone()),
            &["l_partkey"],
            &["p_partkey"],
            NaiveJoin::Inner,
        )
        .unwrap();
    let branch = |brand: &str, pre: &str, qlo: f64, qhi: f64, smax: i64| {
        col("p_brand")
            .eq(lit_str(brand))
            .and(col("p_container").like(&format!("{pre}%")))
            .and(
                col("p_container").in_list(
                    match pre {
                        "SM" => ["SM CASE", "SM BOX", "SM PACK", "SM PKG"],
                        "MED" => ["MED BAG", "MED BOX", "MED PKG", "MED PACK"],
                        _ => ["LG CASE", "LG BOX", "LG PACK", "LG PKG"],
                    }
                    .iter()
                    .map(|s| Value::str(*s))
                    .collect(),
                ),
            )
            .and(col("l_quantity").between(lit_f64(qlo), lit_f64(qhi)))
            .and(col("p_size").between(wake::expr::lit_i64(1), wake::expr::lit_i64(smax)))
    };
    let naive = joined
        .filter(
            &branch("Brand#12", "SM", 1.0, 11.0, 5)
                .or(branch("Brand#23", "MED", 10.0, 20.0, 10))
                .or(branch("Brand#34", "LG", 20.0, 30.0, 15)),
        )
        .unwrap()
        .map(&[(rev(), "r")])
        .unwrap()
        .group_by(&[], &[(NaiveAgg::Sum, col("r"), "revenue")])
        .unwrap();
    check("q19", &w, naive.frame(), &[], &["revenue"]);
}

//! Property-based tests of the edf model's core guarantees:
//!
//! - convergence: the final state equals a one-shot exact computation for
//!   arbitrary data and partitionings,
//! - partition-order invariance (the CI experiment's premise, §8.5),
//! - merge `⊕` associativity for aggregate intrinsic states,
//! - kernel invariants (filter/sort/take) on random frames,
//! - growth-model recovery of monomial powers.

use proptest::prelude::*;
use std::sync::Arc;
use wake::core::agg::{AggSpec, ScaleContext};
use wake::core::graph::QueryGraph;
use wake::core::growth::GrowthModel;
use wake::core::update::UpdateKind;
use wake::data::{Column, DataFrame, DataType, Field, MemorySource, Schema, Value};
use wake::engine::SteppedExecutor;
use wake::expr::col;
use wake_engine::SeriesExt;

fn kv_frame(rows: &[(i64, f64)]) -> DataFrame {
    let schema = Arc::new(Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Float64),
    ]));
    DataFrame::new(
        schema,
        vec![
            Column::from_i64(rows.iter().map(|r| r.0).collect()),
            Column::from_f64(rows.iter().map(|r| r.1).collect()),
        ],
    )
    .unwrap()
}

fn run_sum_by_key(rows: &[(i64, f64)], per_part: usize) -> DataFrame {
    let frame = kv_frame(rows);
    let src = MemorySource::from_frame("t", &frame, per_part, vec![], None).unwrap();
    let mut g = QueryGraph::new();
    let r = g.read(src);
    let a = g.agg(
        r,
        vec!["k"],
        vec![
            AggSpec::sum(col("v"), "s"),
            AggSpec::count_star("n"),
            AggSpec::min(col("v"), "mn"),
            AggSpec::max(col("v"), "mx"),
            AggSpec::count_distinct(col("v"), "d"),
        ],
    );
    g.sink(a);
    SteppedExecutor::new(g)
        .unwrap()
        .run_collect()
        .unwrap()
        .final_frame()
        .as_ref()
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn convergence_to_exact_for_any_partitioning(
        rows in prop::collection::vec((0i64..8, -100.0f64..100.0), 1..200),
        per_part in 1usize..40,
    ) {
        let partitioned = run_sum_by_key(&rows, per_part);
        let oneshot = run_sum_by_key(&rows, rows.len().max(1));
        prop_assert_eq!(&partitioned, &oneshot);
        // And both match a direct computation.
        let mut sums: std::collections::BTreeMap<i64, f64> = Default::default();
        for (k, v) in &rows {
            *sums.entry(*k).or_default() += v;
        }
        prop_assert_eq!(partitioned.num_rows(), sums.len());
        for (i, (k, s)) in sums.iter().enumerate() {
            prop_assert_eq!(partitioned.value(i, "k").unwrap(), Value::Int(*k));
            let got = partitioned.value(i, "s").unwrap().as_f64().unwrap();
            prop_assert!((got - s).abs() < 1e-6);
        }
    }

    #[test]
    fn partition_order_invariance(
        rows in prop::collection::vec((0i64..5, 0.0f64..50.0), 8..120),
        seed in 0u64..1000,
    ) {
        let frame = kv_frame(&rows);
        let src = MemorySource::from_frame("t", &frame, 7, vec![], None).unwrap();
        let n = wake::data::TableSource::meta(&src).num_partitions();
        // Deterministic pseudo-shuffle of partition order.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
        for i in (1..n).rev() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            order.swap(i, (s as usize) % (i + 1));
        }
        let shuffled = src.shuffled_partitions(&order).unwrap();
        let run = |src: MemorySource| {
            let mut g = QueryGraph::new();
            let r = g.read(src);
            let a = g.agg(r, vec!["k"], vec![AggSpec::sum(col("v"), "s")]);
            g.sink(a);
            SteppedExecutor::new(g).unwrap().run_collect().unwrap().final_frame().as_ref().clone()
        };
        let a = run(src);
        let b = run(shuffled);
        // Equal up to floating-point summation order (within a few ulps).
        prop_assert_eq!(a.num_rows(), b.num_rows());
        for i in 0..a.num_rows() {
            prop_assert_eq!(a.value(i, "k").unwrap(), b.value(i, "k").unwrap());
            let (x, y) = (
                a.value(i, "s").unwrap().as_f64().unwrap(),
                b.value(i, "s").unwrap().as_f64().unwrap(),
            );
            prop_assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs()), "{} vs {}", x, y);
        }
    }

    #[test]
    fn merge_is_associative_and_commutative_in_value(
        xs in prop::collection::vec(-50.0f64..50.0, 1..40),
        split in 1usize..39,
    ) {
        let split = split.min(xs.len() - 1).max(1);
        for spec in [
            AggSpec::sum(col("x"), "a"),
            AggSpec::count_star("a"),
            AggSpec::avg(col("x"), "a"),
            AggSpec::min(col("x"), "a"),
            AggSpec::max(col("x"), "a"),
            AggSpec::count_distinct(col("x"), "a"),
            AggSpec::var(col("x"), "a"),
        ] {
            let observe = |vals: &[f64]| {
                let mut st = spec.new_state();
                for v in vals {
                    st.observe(&Value::Float(*v), None);
                }
                st
            };
            let whole = observe(&xs);
            let (l, r) = xs.split_at(split);
            // left ⊕ right
            let mut ab = observe(l);
            ab.merge(&observe(r)).unwrap();
            // right ⊕ left
            let mut ba = observe(r);
            ba.merge(&observe(l)).unwrap();
            let ctx = ScaleContext::exact();
            let w = whole.finalize(xs.len() as f64, &ctx).value;
            let vab = ab.finalize(xs.len() as f64, &ctx).value;
            let vba = ba.finalize(xs.len() as f64, &ctx).value;
            let close = |a: &Value, b: &Value| match (a.as_f64(), b.as_f64()) {
                (Some(a), Some(b)) => (a - b).abs() < 1e-9 * (1.0 + a.abs()),
                _ => a == b,
            };
            prop_assert!(close(&vab, &w), "{:?}: {:?} vs {:?}", spec.func, vab, w);
            prop_assert!(close(&vba, &w), "{:?}: {:?} vs {:?}", spec.func, vba, w);
        }
    }

    #[test]
    fn growth_model_recovers_monomials(
        w in 0.0f64..2.5,
        c in 1.0f64..500.0,
    ) {
        let mut m = GrowthModel::for_input(UpdateKind::Delta);
        for i in 1..=12 {
            let t = i as f64 / 12.0;
            m.observe(t, c * t.powf(w));
        }
        prop_assert!((m.w() - w).abs() < 1e-6, "fit {} vs true {}", m.w(), w);
        // Extrapolation from any mid-point lands on the final value c·1^w.
        let t: f64 = 0.5;
        let x = c * t.powf(w);
        prop_assert!((m.estimate_final_cardinality(x, t) - c).abs() / c < 1e-6);
    }

    #[test]
    fn filter_sort_take_kernel_invariants(
        rows in prop::collection::vec((0i64..20, -1e6f64..1e6), 0..120),
    ) {
        let frame = kv_frame(&rows);
        // filter + complement partition the rows.
        let mask: Vec<bool> = rows.iter().map(|(k, _)| k % 2 == 0).collect();
        let inv: Vec<bool> = mask.iter().map(|b| !b).collect();
        let a = frame.filter(&mask).unwrap();
        let b = frame.filter(&inv).unwrap();
        prop_assert_eq!(a.num_rows() + b.num_rows(), frame.num_rows());
        // sort is a permutation and is ordered.
        let sorted = frame.sort_by(&["v"], &[false]).unwrap();
        prop_assert_eq!(sorted.num_rows(), frame.num_rows());
        let vs: Vec<f64> = sorted.column("v").unwrap().as_f64_slice().unwrap().to_vec();
        prop_assert!(vs.windows(2).all(|w| w[0] <= w[1]));
        let mut orig: Vec<f64> = frame.column("v").unwrap().as_f64_slice().unwrap().to_vec();
        orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(vs, orig);
        // head truncates.
        prop_assert_eq!(frame.head(5).num_rows(), frame.num_rows().min(5));
    }
}

#[test]
fn estimates_are_unbiased_for_uniform_streams() {
    // A stream whose per-partition distribution matches the whole (the
    // paper's core assumption): every scaled estimate should be near-exact.
    let rows: Vec<(i64, f64)> = (0..400).map(|i| (i % 4, 2.5)).collect();
    let frame = kv_frame(&rows);
    let src = MemorySource::from_frame("t", &frame, 40, vec![], None).unwrap();
    let mut g = QueryGraph::new();
    let r = g.read(src);
    let a = g.agg(r, vec!["k"], vec![AggSpec::sum(col("v"), "s")]);
    g.sink(a);
    let series = SteppedExecutor::new(g).unwrap().run_collect().unwrap();
    for est in &series {
        for row in 0..est.frame.num_rows() {
            let v = est.frame.value(row, "s").unwrap().as_f64().unwrap();
            assert!((v - 250.0).abs() < 1e-6, "estimate {v} at t={}", est.t);
        }
    }
}

//! Spill-vs-in-memory equivalence: out-of-core execution is an
//! implementation detail, never a semantics change.
//!
//! Every TPC-H query runs twice on the deterministic stepper — once
//! unbounded (resident state, the pre-spill code path byte for byte) and
//! once under a memory budget small enough to force partition evictions
//! and multi-pass (recursive) grace-hash resolution — and the final
//! states must agree. Aggregation-only pipelines must agree **bit for
//! bit** (spilled group folds preserve accumulation order exactly); join
//! pipelines agree up to the float reassociation that deferred match
//! emission induces in downstream aggregates (the same tolerance the
//! sharding suite uses, `mape < 1e-9`).

use std::sync::Arc;
use wake::core::metrics;
use wake::engine::{EngineConfig, SpillConfig, SteppedExecutor};
use wake::tpch::{all_queries, TpchData, TpchDb};
use wake_engine::SeriesExt;

/// Small enough to evict at SF 0.002 (per-operator slices land around a
/// few KiB against hundreds of KiB of join/agg state), large enough to
/// keep the suite fast.
const BUDGET: usize = 64 << 10;

#[test]
fn all_queries_spill_to_the_same_final_answer() {
    let data = Arc::new(TpchData::generate(0.002, 42));
    let db = TpchDb::new(data, 6);
    let mut total_evictions = 0usize;
    let mut total_spilled = 0usize;
    for spec in all_queries() {
        let reference = SteppedExecutor::with_engine_config(
            (spec.build)(&db),
            &EngineConfig::new().unbounded_memory(),
        )
        .unwrap()
        .run_collect()
        .unwrap();
        let (bounded, stats) = SteppedExecutor::with_engine_config(
            (spec.build)(&db),
            &EngineConfig::new().with_memory_budget(BUDGET),
        )
        .unwrap()
        .run_collect_stats()
        .unwrap();
        total_evictions += stats.spill.evictions;
        total_spilled += stats.spill.spilled_bytes;
        let sf = reference.final_frame();
        let tf = bounded.final_frame();
        assert_eq!(
            sf.num_rows(),
            tf.num_rows(),
            "{}: resident {} rows vs spilled {} rows",
            spec.name,
            sf.num_rows(),
            tf.num_rows()
        );
        if sf.num_rows() == 0 {
            continue;
        }
        let r = metrics::compare(tf, sf, spec.keys, spec.values).unwrap();
        assert!(
            r.recall > 0.999 && r.precision > 0.999 && r.mape < 1e-9,
            "{}: {r:?}",
            spec.name
        );
    }
    // The budget must actually have bitten — this suite is worthless if
    // the workload fits in memory.
    assert!(
        total_evictions > 20,
        "only {total_evictions} evictions across 22 queries"
    );
    assert!(
        total_spilled > BUDGET,
        "spilled {total_spilled} bytes — less than one budget"
    );
}

#[test]
fn aggregation_pipelines_spill_bit_identically() {
    // No joins => no emission reordering: the whole estimate stream,
    // not just the final state, must be bit-equal under the budget.
    // q1/q6 pin the low-cardinality shapes; the custom high-cardinality
    // group-by (one group per orderkey) is the one that actually evicts.
    let data = Arc::new(TpchData::generate(0.002, 7));
    let db = TpchDb::new(data, 8);
    let high_card = || {
        use wake::core::agg::AggSpec;
        use wake::core::graph::QueryGraph;
        use wake::expr::col;
        let mut g = QueryGraph::new();
        let li = db.read(&mut g, "lineitem");
        let a = g.agg(
            li,
            vec!["l_orderkey"],
            vec![
                AggSpec::sum(col("l_extendedprice"), "revenue"),
                AggSpec::count_star("items"),
                AggSpec::count_distinct(col("l_suppkey"), "supps"),
                AggSpec::median(col("l_quantity"), "med_qty"),
            ],
        );
        g.sink(a);
        g
    };
    let mut ran_high_card = false;
    for name in ["q1", "q6", "group-by-orderkey"] {
        let build = |db: &TpchDb| -> wake::core::graph::QueryGraph {
            if name == "group-by-orderkey" {
                high_card()
            } else {
                (wake::tpch::query_by_name(name).unwrap().build)(db)
            }
        };
        let reference = SteppedExecutor::with_engine_config(
            build(&db),
            &EngineConfig::new().unbounded_memory(),
        )
        .unwrap()
        .run_collect()
        .unwrap();
        let (bounded, stats) = SteppedExecutor::with_engine_config(
            build(&db),
            &EngineConfig::new().with_memory_budget(16 << 10),
        )
        .unwrap()
        .run_collect_stats()
        .unwrap();
        assert_eq!(reference.len(), bounded.len(), "{name}: estimate cadence");
        for (a, b) in reference.iter().zip(bounded.iter()) {
            assert_eq!(a.frame.as_ref(), b.frame.as_ref(), "{name} @ t={}", a.t);
        }
        if name == "group-by-orderkey" {
            assert!(
                stats.spill.evictions > 0 && stats.spill.rehydrations > 0,
                "{name}: high-cardinality group-by must spill at 16 KiB ({:?})",
                stats.spill
            );
            ran_high_card = true;
        }
    }
    assert!(ran_high_card);
}

#[test]
fn delta_log_is_estimate_invariant_across_the_tpch_suite() {
    // The write-behind delta log under stress: a 64 KiB budget plus a
    // small compaction ratio forces both sides of the policy — delta
    // appends whenever a fold touches a small slice of a spilled
    // partition, compactions whenever the delta run outgrows its share
    // of the base. The log must be invisible in the estimates:
    //
    // - per-estimate bit-equality with the compact-on-every-fold spill
    //   path (ratio 0, the pre-delta-log behavior) for EVERY query —
    //   same budget ⇒ same evictions, and replaying base + deltas must
    //   reconstruct each partition bit for bit;
    // - per-estimate bit-equality with UNBOUNDED execution for the
    //   aggregation-only pipelines (join spilling defers match emission,
    //   so mid-query join estimates legitimately differ from resident
    //   execution — the same caveat as the rest of this suite);
    // - final-state agreement with unbounded for every query.
    let data = Arc::new(TpchData::generate(0.002, 42));
    let db = TpchDb::new(data, 6);
    let agg_only = ["q1", "q6"];
    let mut total_compactions = 0usize;
    let mut total_delta_bytes = 0usize;
    let mut total_delta_chunks = 0usize;
    for spec in all_queries() {
        let reference = SteppedExecutor::with_engine_config(
            (spec.build)(&db),
            &EngineConfig::new().unbounded_memory(),
        )
        .unwrap()
        .run_collect()
        .unwrap();
        let (legacy, legacy_stats) = SteppedExecutor::with_engine_config(
            (spec.build)(&db),
            &EngineConfig::new()
                .with_memory_budget(BUDGET)
                .with_spill_delta_ratio(0.0),
        )
        .unwrap()
        .run_collect_stats()
        .unwrap();
        let (delta, stats) = SteppedExecutor::with_engine_config(
            (spec.build)(&db),
            &EngineConfig::new()
                .with_memory_budget(BUDGET)
                .with_spill_delta_ratio(0.25),
        )
        .unwrap()
        .run_collect_stats()
        .unwrap();
        assert_eq!(legacy_stats.spill.delta_bytes, 0, "{}", spec.name);
        total_compactions += stats.spill.compactions;
        total_delta_bytes += stats.spill.delta_bytes;
        total_delta_chunks += stats.spill.delta_chunks;
        assert_eq!(legacy.len(), delta.len(), "{}: estimate cadence", spec.name);
        for (a, b) in legacy.iter().zip(delta.iter()) {
            assert_eq!(
                a.frame.as_ref(),
                b.frame.as_ref(),
                "{}: delta log changed an estimate at t={}",
                spec.name,
                a.t
            );
        }
        if agg_only.contains(&spec.name) {
            assert_eq!(reference.len(), delta.len(), "{}", spec.name);
            for (a, b) in reference.iter().zip(delta.iter()) {
                assert_eq!(
                    a.frame.as_ref(),
                    b.frame.as_ref(),
                    "{}: not bit-equal to resident at t={}",
                    spec.name,
                    a.t
                );
            }
        }
        let sf = reference.final_frame();
        let tf = delta.final_frame();
        assert_eq!(sf.num_rows(), tf.num_rows(), "{}", spec.name);
        if sf.num_rows() == 0 {
            continue;
        }
        let r = metrics::compare(tf, sf, spec.keys, spec.values).unwrap();
        assert!(
            r.recall > 0.999 && r.precision > 0.999 && r.mape < 1e-9,
            "{}: {r:?}",
            spec.name
        );
    }
    // The policy must actually have exercised both paths across the
    // suite: folds that appended deltas and folds that compacted.
    assert!(
        total_compactions >= 1,
        "no compactions across 22 queries at ratio 0.25"
    );
    assert!(
        total_delta_bytes > 0 && total_delta_chunks > 0,
        "no delta appends across 22 queries at ratio 0.25"
    );
}

#[test]
fn threaded_executor_honours_the_budget_knob() {
    let data = Arc::new(TpchData::generate(0.002, 5));
    let db = TpchDb::new(data, 6);
    for name in ["q3", "q13", "q18"] {
        let spec = wake::tpch::query_by_name(name).unwrap();
        let reference = SteppedExecutor::with_engine_config(
            (spec.build)(&db),
            &EngineConfig::new().unbounded_memory(),
        )
        .unwrap()
        .run_collect()
        .unwrap();
        let bounded = EngineConfig::threaded()
            .with_memory_budget(BUDGET)
            .run_collect((spec.build)(&db))
            .unwrap();
        let sf = reference.final_frame();
        let tf = bounded.final_frame();
        assert_eq!(sf.num_rows(), tf.num_rows(), "{name}");
        if sf.num_rows() == 0 {
            continue;
        }
        let r = metrics::compare(tf, sf, spec.keys, spec.values).unwrap();
        assert!(
            r.recall > 0.999 && r.precision > 0.999 && r.mape < 1e-9,
            "{name}: {r:?}"
        );
    }
}

#[test]
#[allow(deprecated)] // exercises the legacy `with_config` shim on purpose
fn unbounded_default_is_byte_identical_to_explicit_unbounded() {
    // `SteppedExecutor::new` (the default every other suite uses) and an
    // explicit config — passed through the deprecated `with_config` shim,
    // which must stay a faithful alias of the EngineConfig path — must be
    // the same machine for the same budget. Guards the "budget = ∞ is
    // pre-PR behavior" acceptance criterion.
    // Mutating the process environment from a test would race with
    // concurrent `getenv`s in sibling tests (UB on glibc), so instead
    // read the ambient value once and compare `new` against an explicit
    // config reproducing it — ambient unset means both are unbounded.
    let ambient = SpillConfig::from_env();
    let data = Arc::new(TpchData::generate(0.002, 3));
    let db = TpchDb::new(data, 4);
    let spec = wake::tpch::query_by_name("q18").unwrap();
    let a = SteppedExecutor::new((spec.build)(&db))
        .unwrap()
        .run_collect()
        .unwrap();
    let b = SteppedExecutor::with_config((spec.build)(&db), ambient.clone())
        .unwrap()
        .run_collect()
        .unwrap();
    assert_eq!(a.len(), b.len());
    if ambient.budget_bytes.is_none() {
        // Truly unbounded: the resident path must be reproduced bit for
        // bit, estimate by estimate.
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.frame.as_ref(), y.frame.as_ref());
        }
    } else {
        // Ambient budget set (the CI low-memory lane): both runs spill
        // identically under the deterministic stepper; final frames
        // agree up to deferred-emission reassociation.
        let sf = a.final_frame();
        let tf = b.final_frame();
        assert_eq!(sf.num_rows(), tf.num_rows());
        let r = metrics::compare(tf, sf, spec.keys, spec.values).unwrap();
        assert!(
            r.recall > 0.999 && r.precision > 0.999 && r.mape < 1e-9,
            "{r:?}"
        );
    }
}

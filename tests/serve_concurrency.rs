//! The wake-serve service contract under concurrency and pressure:
//!
//! - N clients share one server under a **global memory budget smaller
//!   than any single query's resident footprint** — every query spills
//!   (instead of OOMing) and still answers exactly, and the global
//!   ledger returns to idle afterwards.
//! - Disconnecting mid-stream cancels through the drop-cancel contract:
//!   no leaked OS threads, no leaked spill temp directories.
//! - An over-admission burst gets *typed* overload refusals, never a
//!   hang; a query cancelled while still queued stays readable in the
//!   registry and reports zero work.
//! - With an ambient `WAKE_SPILL_ENOSPC_AFTER` (the CI serve lane's
//!   fault-injection variant) the degraded server still answers exactly
//!   and says so: `degraded=true` in the wire telemetry.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use wake::prelude::*;
use wake::serve::{http_get, serve, QueryCatalog, QueryStatus, ServeClient};
use wake::tpch::{TpchData, TpchDb};

/// A global budget far below the high-card query's resident footprint
/// (asserted against the serial run's `peak_state_bytes` in the
/// concurrency test), so three resident queries must all spill.
const GLOBAL_BUDGET: usize = 64 << 10;

/// Serialises every test: they all spawn server/pipeline threads and two
/// of them read process-wide state (`/proc` thread counts, the spill
/// temp directory), so overlap would cross-contaminate snapshots.
static SERVER: Mutex<()> = Mutex::new(());

fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("linux /proc")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

fn settled_thread_count(baseline: usize) -> usize {
    let mut count = thread_count();
    for _ in 0..200 {
        if count <= baseline {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        count = thread_count();
    }
    count
}

/// This process's spill temp directories (`wake-spill-<pid>-<nonce>`).
/// Scoped to the pid so concurrently running test binaries are invisible.
fn spill_dirs() -> BTreeSet<String> {
    let prefix = format!("wake-spill-{}-", std::process::id());
    std::fs::read_dir(std::env::temp_dir())
        .expect("temp dir")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|name| name.starts_with(&prefix))
        .collect()
}

/// Wait (briefly) for the process's spill dir set to return to
/// `baseline`; returns the final set.
fn settled_spill_dirs(baseline: &BTreeSet<String>) -> BTreeSet<String> {
    let mut dirs = spill_dirs();
    for _ in 0..200 {
        if &dirs == baseline {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        dirs = spill_dirs();
    }
    dirs
}

/// A high-cardinality group-by over lineitem — the shape that provably
/// spills under a small budget (same as the spill-equivalence suites).
fn high_card_graph(db: &TpchDb) -> QueryGraph {
    let mut g = QueryGraph::new();
    let li = db.read(&mut g, "lineitem");
    let a = g.agg(
        li,
        vec!["l_orderkey"],
        vec![AggSpec::sum(col("l_extendedprice"), "rev")],
    );
    g.sink(a);
    g
}

/// The serve-side `value` telemetry for a watch column: the sum over the
/// frame's rows (order-independent, so serial and concurrent runs agree).
fn frame_sum(frame: &DataFrame, column: &str) -> f64 {
    let col = frame.column(column).expect("watch column");
    (0..col.len())
        .map(|i| col.f64_at(i).expect("numeric"))
        .sum()
}

fn tpch_db(sf: f64, partitions: usize) -> TpchDb {
    TpchDb::new(Arc::new(TpchData::generate(sf, 77)), partitions)
}

fn catalog_for(db: &TpchDb) -> QueryCatalog {
    let mut catalog = QueryCatalog::new();
    catalog.register_watch("rev_by_order", high_card_graph(db), "rev");
    catalog
}

/// Poll the registry until `id`'s record reaches a terminal status.
fn wait_terminal(server: &wake::serve::ServerHandle, id: u64) -> wake::serve::QueryRecord {
    for _ in 0..2000 {
        if let Some(rec) = server.registry().get(id) {
            if !matches!(rec.status, QueryStatus::Queued | QueryStatus::Running) {
                return rec;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("query {id} never reached a terminal status");
}

#[test]
fn three_concurrent_clients_under_one_tight_global_budget_answer_exactly() {
    let _guard = SERVER.lock().unwrap_or_else(|e| e.into_inner());
    let db = tpch_db(0.005, 24);

    // Serial reference: the unbudgeted run's exact answer and resident
    // footprint. The global budget must be smaller than ONE query's
    // footprint — three concurrent queries then all execute under
    // leases that force out-of-core state.
    let (series, stats) = EngineConfig::stepped()
        .with_obs(ObsLevel::Stats)
        .start(high_card_graph(&db))
        .unwrap()
        .collect_with_stats()
        .unwrap();
    let reference = frame_sum(&series.last().unwrap().frame, "rev");
    assert!(
        stats.peak_state_bytes > GLOBAL_BUDGET,
        "budget {GLOBAL_BUDGET} must be under the serial footprint {}",
        stats.peak_state_bytes
    );

    let server = serve(
        EngineConfig::stepped()
            .with_serve_global_budget(GLOBAL_BUDGET)
            .with_serve_max_concurrent(3),
        catalog_for(&db),
    )
    .unwrap();
    let global = server.global_governor().expect("global budget configured");
    assert!(global.is_idle());

    let addr = server.addr();
    let clients: Vec<_> = (0..3)
        .map(|i| {
            std::thread::Builder::new()
                .name(format!("serve-test-client-{i}"))
                .spawn(move || {
                    let mut client = ServeClient::connect(addr)?;
                    client.query("rev_by_order")
                })
                .unwrap()
        })
        .collect();

    for handle in clients {
        let outcome = handle.join().expect("client thread").expect("query io");
        assert!(outcome.error.is_none(), "{:?}", outcome.error);
        let done = outcome.done.expect("terminal event");
        assert_eq!(done.status, "completed");
        assert!(
            done.spill_bytes > 0,
            "a lease under the footprint must spill, not OOM"
        );
        let last = outcome.estimates.last().expect("estimates");
        assert!(last.is_final);
        let value = last.value.expect("watch value");
        assert!(
            ((value - reference) / reference).abs() < 1e-9,
            "concurrent answer {value} diverged from serial {reference}"
        );
        // Estimates stream in order with monotone progress.
        for pair in outcome.estimates.windows(2) {
            assert!(pair[1].seq > pair[0].seq, "stream order");
            assert!(
                pair[1].rows_processed >= pair[0].rows_processed,
                "monotone progress"
            );
        }
    }

    assert!(
        global.is_idle(),
        "global ledger must return to idle: {} bytes still leased",
        global.leased_bytes()
    );
    server.shutdown();
}

#[test]
fn disconnect_mid_stream_leaks_no_threads_and_no_spill_dirs() {
    let _guard = SERVER.lock().unwrap_or_else(|e| e.into_inner());
    // Big and slow: 96 partitions of SF 0.01 spilling under a tiny
    // lease, so the disconnect lands well before completion.
    let db = tpch_db(0.01, 96);
    let baseline_threads = thread_count();
    let baseline_dirs = spill_dirs();

    let server = serve(
        EngineConfig::stepped().with_serve_global_budget(GLOBAL_BUDGET),
        catalog_for(&db),
    )
    .unwrap();
    let global = server.global_governor().unwrap();

    let mut client = ServeClient::connect(server.addr()).unwrap();
    let id = client
        .query_no_wait("rev_by_order")
        .unwrap()
        .expect("admitted");
    drop(client); // hang up mid-stream

    let rec = wait_terminal(&server, id);
    assert_eq!(
        rec.status,
        QueryStatus::Cancelled,
        "disconnect must cancel the in-flight query"
    );
    let dirs = settled_spill_dirs(&baseline_dirs);
    assert_eq!(
        dirs, baseline_dirs,
        "cancelled query left spill temp directories behind"
    );
    assert!(global.is_idle(), "lease returned after cancellation");

    server.shutdown();
    let after = settled_thread_count(baseline_threads);
    assert!(
        after <= baseline_threads,
        "leaked threads: {baseline_threads} before, {after} after shutdown"
    );
}

#[test]
fn over_admission_burst_gets_typed_overload_not_hangs() {
    let _guard = SERVER.lock().unwrap_or_else(|e| e.into_inner());
    let db = tpch_db(0.005, 48);
    let server = serve(
        EngineConfig::stepped()
            .with_serve_global_budget(GLOBAL_BUDGET)
            .with_serve_max_concurrent(1)
            .with_serve_max_queued(1),
        catalog_for(&db),
    )
    .unwrap();

    // Fill the single execution slot and the single queue slot with
    // clients that hold their streams open...
    let mut running = ServeClient::connect(server.addr()).unwrap();
    let running_id = running.query_no_wait("rev_by_order").unwrap().unwrap();
    let mut queued = ServeClient::connect(server.addr()).unwrap();
    let queued_id = queued.query_no_wait("rev_by_order").unwrap().unwrap();

    // ...so the burst beyond capacity is refused with typed errors on
    // both protocols, immediately.
    let mut burst = ServeClient::connect(server.addr()).unwrap();
    let outcome = burst.query("rev_by_order").unwrap();
    assert_eq!(
        outcome.error.as_ref().map(|e| e.0.as_str()),
        Some("overloaded"),
        "TCP burst must get the typed overload error"
    );
    let (status, body) = http_get(server.addr(), "/query/rev_by_order").unwrap();
    assert_eq!(status, 429, "HTTP burst must get 429: {body}");
    assert!(body.contains("\"overloaded\""));

    // Releasing the slots drains everything; nothing hangs.
    drop(running);
    drop(queued);
    assert_ne!(
        wait_terminal(&server, running_id).status,
        QueryStatus::Running
    );
    assert_ne!(
        wait_terminal(&server, queued_id).status,
        QueryStatus::Running
    );
    server.shutdown();
}

#[test]
fn query_cancelled_while_queued_is_readable_and_reports_zero_work() {
    let _guard = SERVER.lock().unwrap_or_else(|e| e.into_inner());
    let db = tpch_db(0.005, 48);
    let server = serve(
        EngineConfig::stepped()
            .with_serve_global_budget(GLOBAL_BUDGET)
            .with_serve_max_concurrent(1)
            .with_serve_max_queued(1),
        catalog_for(&db),
    )
    .unwrap();
    let global = server.global_governor().unwrap();

    let mut running = ServeClient::connect(server.addr()).unwrap();
    running.query_no_wait("rev_by_order").unwrap().unwrap();
    let mut queued = ServeClient::connect(server.addr()).unwrap();
    let queued_id = queued.query_no_wait("rev_by_order").unwrap().unwrap();

    // The queued client hangs up before its query ever runs; give its
    // connection thread a moment to notice, then free the worker.
    drop(queued);
    std::thread::sleep(Duration::from_millis(200));
    drop(running);

    let rec = wait_terminal(&server, queued_id);
    assert_eq!(rec.status, QueryStatus::Cancelled);
    // Zero work: no stream was ever built, so no phantom governor lease
    // and no statistics.
    assert_eq!(rec.stats.peak_state_bytes, 0);
    assert_eq!(rec.stats.spill.spilled_bytes, 0);
    assert_eq!(rec.stats.spill.evictions, 0);
    assert!(rec.profile_json.is_none());
    assert!(
        global.is_idle(),
        "global budget must be back to idle after every query"
    );
    server.shutdown();
}

#[test]
fn fault_injected_server_still_answers_exactly_and_reports_degraded() {
    let _guard = SERVER.lock().unwrap_or_else(|e| e.into_inner());
    // The CI serve lane runs this binary with an ambient
    // WAKE_SPILL_ENOSPC_AFTER: the spill device fills mid-query, the
    // engine degrades to memory-resident execution, and the server must
    // surface that in its telemetry while the answer stays exact. The
    // env var is only read here — never set — so the test composes with
    // the in-process test harness.
    let injected = std::env::var("WAKE_SPILL_ENOSPC_AFTER").is_ok();
    let db = tpch_db(0.01, 24);

    let reference = {
        let series = EngineConfig::stepped()
            .run_collect(high_card_graph(&db))
            .unwrap();
        frame_sum(&series.last().unwrap().frame, "rev")
    };

    let server = serve(
        EngineConfig::stepped().with_serve_global_budget(GLOBAL_BUDGET),
        catalog_for(&db),
    )
    .unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let outcome = client.query("rev_by_order").unwrap();
    let done = outcome.done.expect("terminal event");
    assert_eq!(done.status, "completed");
    let value = outcome.estimates.last().unwrap().value.unwrap();
    assert!(
        ((value - reference) / reference).abs() < 1e-9,
        "answer must stay exact under spill-device faults: {value} vs {reference}"
    );
    assert_eq!(
        done.degraded, injected,
        "degraded telemetry must reflect the (possibly faulted) spill device"
    );
    assert!(server.global_governor().unwrap().is_idle());
    server.shutdown();
}

//! Fault-injected spill I/O: the recovery ladder end to end.
//!
//! Every test runs real TPC-H queries under a memory budget small enough
//! to force spilling, with a deterministic [`FaultIo`] device injected
//! between the engine and the filesystem. The contract under test:
//!
//! - **Transient** device errors are invisible: bounded-backoff retries
//!   absorb them and the estimate stream is bit-identical to a fault-free
//!   run (telemetry aside).
//! - A **persistently failing** device poisons the governor: queries fall
//!   back to memory-resident execution and still produce exact answers
//!   (`RunStats::degraded`), or — when spilled state cannot be read back —
//!   fail with a typed error. Never a panic, never a hang, never a leaked
//!   thread or spill directory.

use std::sync::{Arc, Mutex};
use wake::core::metrics;
use wake::data::DataError;
use wake::engine::{EngineConfig, FaultIo, FaultSchedule, SpillIo};
use wake::prelude::*;
use wake::tpch::{all_queries, TpchData, TpchDb};

/// Small enough to evict at SF 0.002 (same constant as the spill
/// equivalence suite), so the fault schedules actually see I/O traffic.
const BUDGET: usize = 64 << 10;

/// Serialises the tests that count OS threads (threaded pipelines from a
/// concurrently running test would pollute the `/proc` snapshot).
static THREADS: Mutex<()> = Mutex::new(());

fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("linux /proc")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

fn settled_thread_count(baseline: usize) -> usize {
    let mut count = thread_count();
    for _ in 0..200 {
        if count <= baseline {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        count = thread_count();
    }
    count
}

/// A high-cardinality group-by over lineitem — guaranteed to spill (and
/// therefore to read spilled state back) under a small budget.
fn high_card_graph(db: &TpchDb) -> QueryGraph {
    let mut g = QueryGraph::new();
    let li = db.read(&mut g, "lineitem");
    let a = g.agg(
        li,
        vec!["l_orderkey"],
        vec![AggSpec::sum(col("l_extendedprice"), "rev")],
    );
    g.sink(a);
    g
}

fn faulted_config(io: &Arc<FaultIo>, budget: usize, retries: u32) -> EngineConfig {
    EngineConfig::stepped()
        .with_memory_budget(budget)
        .with_spill_io(io.clone() as Arc<dyn SpillIo>)
        .with_spill_retries(retries)
        .with_spill_retry_delay(std::time::Duration::from_micros(50))
}

#[test]
fn transient_faults_retry_to_bit_identical_estimates() {
    // Every TPC-H query, stepped (deterministic): a device that fails
    // every few operations — but recovers on retry — must not change a
    // single byte of a single estimate. Only the telemetry may differ.
    let data = Arc::new(TpchData::generate(0.002, 42));
    let db = TpchDb::new(data, 6);
    let mut total_retries = 0usize;
    for spec in all_queries() {
        let reference = EngineConfig::stepped()
            .with_memory_budget(BUDGET)
            .run_collect((spec.build)(&db))
            .unwrap();
        let io = Arc::new(FaultIo::new(FaultSchedule {
            transient_write_every: Some(3),
            transient_read_every: Some(5),
            ..FaultSchedule::default()
        }));
        let (faulted, stats) = faulted_config(&io, BUDGET, 2)
            .start((spec.build)(&db))
            .unwrap()
            .collect_with_stats()
            .unwrap();
        assert!(
            !stats.degraded,
            "{}: transient faults must not poison",
            spec.name
        );
        total_retries += stats.spill.io_retries;
        assert_eq!(reference.len(), faulted.len(), "{}", spec.name);
        for (a, b) in reference.iter().zip(faulted.iter()) {
            assert_eq!(
                a.frame.as_ref(),
                b.frame.as_ref(),
                "{} @ seq {}: estimates diverged under retried transient faults",
                spec.name,
                a.seq
            );
            assert_eq!(a.t, b.t, "{}", spec.name);
            assert_eq!(a.is_final, b.is_final, "{}", spec.name);
        }
    }
    assert!(
        total_retries > 0,
        "the schedule never fired — the suite is not exercising retries"
    );
}

#[test]
fn enospc_degrades_to_resident_execution_with_exact_answers() {
    // A spill device that fills up mid-query: writes start failing
    // permanently, the governor is poisoned, and every query must still
    // run to completion — resident from the point of failure on — with
    // answers equal to the unbounded reference.
    let data = Arc::new(TpchData::generate(0.002, 42));
    let db = TpchDb::new(data, 6);
    let mut degraded_runs = 0usize;
    for spec in all_queries() {
        let reference = EngineConfig::stepped()
            .unbounded_memory()
            .run_collect((spec.build)(&db))
            .unwrap();
        let io = Arc::new(FaultIo::new(FaultSchedule {
            enospc_after_bytes: Some(16 << 10),
            ..FaultSchedule::default()
        }));
        let (bounded, stats) = faulted_config(&io, BUDGET, 1)
            .start((spec.build)(&db))
            .unwrap()
            .collect_with_stats()
            .unwrap();
        if stats.degraded {
            degraded_runs += 1;
        }
        let sf = reference.final_frame();
        let tf = bounded.final_frame();
        assert_eq!(sf.num_rows(), tf.num_rows(), "{}", spec.name);
        if sf.num_rows() == 0 {
            continue;
        }
        let r = metrics::compare(tf, sf, spec.keys, spec.values).unwrap();
        assert!(
            r.recall > 0.999 && r.precision > 0.999 && r.mape < 1e-9,
            "{}: degraded run diverged: {r:?}",
            spec.name
        );
    }
    assert!(
        degraded_runs > 0,
        "no query wrote 16 KiB before finishing — ENOSPC never triggered"
    );
}

#[test]
fn persistent_read_failure_is_a_typed_error_and_the_stream_fuses() {
    // Spilled state that can never be read back cannot be recovered by
    // degrading — the query must fail with the typed `SpillUnavailable`
    // error (not a panic), fuse the stream, and keep stats readable.
    let data = Arc::new(TpchData::generate(0.002, 42));
    let db = TpchDb::new(data, 6);
    let io = Arc::new(FaultIo::new(FaultSchedule {
        persistent_read_from: Some(0),
        ..FaultSchedule::default()
    }));
    let mut stream = faulted_config(&io, 16 << 10, 1)
        .start(high_card_graph(&db))
        .unwrap();
    let spill_root = stream.spill_dir().expect("budgeted query has a spill dir");
    let mut saw_error = false;
    for est in &mut stream {
        match est {
            Ok(_) => {}
            Err(DataError::SpillUnavailable(msg)) => {
                assert!(msg.contains("failed after"), "retry context in: {msg}");
                saw_error = true;
                break;
            }
            Err(other) => panic!("expected SpillUnavailable, got {other:?}"),
        }
    }
    assert!(
        saw_error,
        "an unreadable spill device must surface an error"
    );
    assert!(stream.next().is_none(), "errored stream must fuse");
    let stats = stream.stats();
    assert!(stats.degraded, "read exhaustion poisons the governor");
    assert!(stats.spill.evictions > 0, "the query did spill first");
    drop(stream);
    assert!(
        !spill_root.exists(),
        "spill temp dir must be removed after an errored query: {spill_root:?}"
    );
}

#[test]
fn threaded_error_termination_joins_threads_and_cleans_spill_dir() {
    // The same unreadable device on the pipelined engine: the node error
    // must cascade through the shutdown protocol — every thread joined,
    // the typed error surfaced exactly once, the spill directory gone.
    let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
    let data = Arc::new(TpchData::generate(0.002, 42));
    let db = TpchDb::new(data, 6);
    let baseline = thread_count();
    let io = Arc::new(FaultIo::new(FaultSchedule {
        persistent_read_from: Some(0),
        ..FaultSchedule::default()
    }));
    let mut stream = faulted_config(&io, 16 << 10, 1)
        .with_executor(ExecutorKind::Threaded)
        .start(high_card_graph(&db))
        .unwrap();
    let spill_root = stream.spill_dir().expect("budgeted query has a spill dir");
    let mut saw_error = false;
    for est in &mut stream {
        match est {
            Ok(_) => {}
            Err(DataError::SpillUnavailable(_)) => {
                saw_error = true;
                break;
            }
            Err(other) => panic!("expected SpillUnavailable, got {other:?}"),
        }
    }
    assert!(saw_error, "the node error must reach the estimate stream");
    assert!(
        stream.stats().degraded,
        "stats stay readable after the error"
    );
    drop(stream);
    let after = settled_thread_count(baseline);
    assert!(
        after <= baseline,
        "leaked node threads after error termination: {baseline} before, {after} after"
    );
    assert!(
        !spill_root.exists(),
        "spill temp dir must be removed after error termination: {spill_root:?}"
    );
}

#[test]
fn seeded_fault_sweep_never_panics_hangs_or_leaks() {
    // The fuzz-flavoured acceptance sweep: seeded schedules mixing
    // transient, ENOSPC, and persistent-read faults over real queries.
    // Every run must either complete (degraded or not) or fail with a
    // typed error — and always release its spill directory. Transient-only
    // seeds must additionally reproduce the fault-free run bit for bit.
    // The CI fault lane varies the base seed via WAKE_FAULT_SEED.
    let base: u64 = std::env::var("WAKE_FAULT_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0);
    let data = Arc::new(TpchData::generate(0.002, 42));
    let db = TpchDb::new(data, 6);
    let specs: Vec<_> = all_queries().into_iter().take(3).collect();
    for seed in base..base + 6 {
        let schedule = FaultSchedule::from_seed(seed);
        for spec in &specs {
            let reference = EngineConfig::stepped()
                .with_memory_budget(16 << 10)
                .run_collect((spec.build)(&db))
                .unwrap();
            let io = Arc::new(FaultIo::new(schedule.clone()));
            let mut stream = faulted_config(&io, 16 << 10, 2)
                .start((spec.build)(&db))
                .unwrap();
            let spill_root = stream.spill_dir().unwrap();
            let mut estimates = Vec::new();
            let mut error = None;
            for est in &mut stream {
                match est {
                    Ok(e) => estimates.push(e),
                    Err(e) => {
                        error = Some(e);
                        break;
                    }
                }
            }
            match (&error, schedule.transient_only()) {
                (Some(e), true) => {
                    panic!(
                        "seed {seed} {}: transient-only schedule errored: {e:?}",
                        spec.name
                    )
                }
                (Some(_), false) => {
                    // Typed failure is an accepted outcome for persistent
                    // faults; the stream must be fused.
                    assert!(stream.next().is_none(), "seed {seed} {}", spec.name);
                }
                (None, _) => {
                    assert!(
                        estimates.last().is_some_and(|e| e.is_final),
                        "seed {seed} {}: completed run must end final",
                        spec.name
                    );
                }
            }
            if error.is_none() && schedule.transient_only() {
                assert_eq!(
                    reference.len(),
                    estimates.len(),
                    "seed {seed} {}",
                    spec.name
                );
                for (a, b) in reference.iter().zip(&estimates) {
                    assert_eq!(
                        a.frame.as_ref(),
                        b.frame.as_ref(),
                        "seed {seed} {} @ seq {}",
                        spec.name,
                        a.seq
                    );
                }
            }
            // Stats must be readable whatever happened.
            let _ = stream.stats();
            drop(stream);
            assert!(
                !spill_root.exists(),
                "seed {seed} {}: leaked spill dir {spill_root:?}",
                spec.name
            );
        }
    }
}

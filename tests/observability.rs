//! Observability contract (wake-obs): instrumentation must never change
//! answers, per-node profiles must sum to the `RunStats` rollups, and
//! profiles must stay readable at every point of a stream's life — live,
//! exhausted, cancelled, and error-terminated — on both engines.

use std::sync::Arc;
use wake::data::DataError;
use wake::engine::{EngineConfig, FaultIo, FaultSchedule, SpillIo};
use wake::prelude::*;
use wake::tpch::{all_queries, TpchData, TpchDb};

/// Small enough to evict at SF 0.002 (same constant as the spill and
/// fault suites), so spill attribution sees real traffic.
const BUDGET: usize = 64 << 10;

fn db() -> TpchDb {
    TpchDb::new(Arc::new(TpchData::generate(0.002, 42)), 6)
}

/// A high-cardinality group-by over lineitem — guaranteed to spill under
/// a small budget.
fn high_card_graph(db: &TpchDb) -> QueryGraph {
    let mut g = QueryGraph::new();
    let li = db.read(&mut g, "lineitem");
    let a = g.agg(
        li,
        vec!["l_orderkey"],
        vec![AggSpec::sum(col("l_extendedprice"), "rev")],
    );
    g.sink(a);
    g
}

#[test]
fn obs_off_is_bit_identical_per_estimate_on_all_queries() {
    // The acceptance bar for zero-cost-when-off: every TPC-H query on
    // the deterministic stepper, under a budget small enough to spill,
    // produces the same estimate sequence — frame bytes, progress,
    // numbering, finality — at ObsLevel::Off and at full Profile. (The
    // explicit Off reference also pins the pre-observability execution
    // path: with obs off no per-node child spill plans, instruments, or
    // telemetry hooks exist at all.) Only the estimate's own telemetry
    // fields `spill_bytes` / `scan_bytes` may differ: they are stamped
    // when obs is on and zero when off, by design.
    let db = db();
    for spec in all_queries() {
        let run = |level: ObsLevel| {
            EngineConfig::stepped()
                .with_memory_budget(BUDGET)
                .with_obs(level)
                .run_collect((spec.build)(&db))
                .unwrap()
        };
        let off = run(ObsLevel::Off);
        let profile = run(ObsLevel::Profile);
        assert_eq!(off.len(), profile.len(), "{}", spec.name);
        for (a, b) in off.iter().zip(profile.iter()) {
            assert_eq!(
                a.frame.as_ref(),
                b.frame.as_ref(),
                "{} @ seq {}: estimates diverged under observability",
                spec.name,
                a.seq
            );
            assert_eq!(a.t, b.t, "{}", spec.name);
            assert_eq!(a.seq, b.seq, "{}", spec.name);
            assert_eq!(a.rows_processed, b.rows_processed, "{}", spec.name);
            assert_eq!(a.is_final, b.is_final, "{}", spec.name);
            assert_eq!(a.spill_bytes, 0, "{}: off stamps no telemetry", spec.name);
            assert_eq!(a.scan_bytes, 0, "{}: off stamps no telemetry", spec.name);
        }
    }
}

#[test]
fn obs_off_reports_no_profile() {
    // Off really is off: no nodes in RunStats, no profile surface.
    let db = db();
    let mut stream = EngineConfig::stepped()
        .with_obs(ObsLevel::Off)
        .start(high_card_graph(&db))
        .unwrap();
    stream.next().unwrap().unwrap();
    assert!(stream.profile().is_none());
    assert!(stream.stats().nodes.is_empty());
    assert!(stream.explain_analyze().contains("observability is off"));
}

#[test]
fn per_node_profiles_sum_to_rollups_on_both_engines() {
    // The per-node attribution must reconcile with the query-wide
    // ledgers: scan bytes exactly (every source is somebody's read
    // node), spill within the documented slack (operators without a
    // child ledger — non-shardable ones — account against the parent
    // only), and the peak upper bound must hold.
    let db = db();
    for kind in [ExecutorKind::Stepped, ExecutorKind::Threaded] {
        let mut stream = EngineConfig::new()
            .with_executor(kind)
            .with_memory_budget(BUDGET)
            .with_obs(ObsLevel::Profile)
            .start(high_card_graph(&db))
            .unwrap();
        for est in &mut stream {
            est.unwrap();
        }
        let stats = stream.stats();
        let profile = stream.profile().expect("profile at Profile level");
        assert_eq!(profile.nodes.len(), 2, "{kind:?}: read, agg");

        // Scan attribution: per read node, exact.
        assert_eq!(
            profile.total_scan().decompressed_bytes,
            stats.scan.decompressed_bytes,
            "{kind:?}"
        );
        // Spill attribution: children forward to the parent, so their
        // sum can never exceed the rollup — and the spilling node here
        // (the group-by) has a child ledger, so it must show traffic.
        let spill_sum = profile.total_spill();
        assert!(
            spill_sum.spilled_bytes <= stats.spill.spilled_bytes,
            "{kind:?}: child ledgers exceed parent"
        );
        assert!(
            stats.spill.evictions > 0,
            "{kind:?}: the budget never bit — suite is not testing attribution"
        );
        assert!(
            spill_sum.evictions > 0,
            "{kind:?}: evictions not attributed to any node"
        );
        // Peak: the sum of per-node peaks bounds the reported rollup.
        assert!(
            profile.peak_state_upper_bound() >= stats.peak_state_bytes,
            "{kind:?}: {} < {}",
            profile.peak_state_upper_bound(),
            stats.peak_state_bytes
        );
        // Work actually got recorded on every node.
        for node in &profile.nodes {
            assert!(
                node.rows_out > 0,
                "{kind:?}: node {} [{}] recorded no output",
                node.id,
                node.label
            );
            assert!(node.frames_out > 0, "{kind:?}: node {}", node.id);
        }
        // Profile level extras: per-update histograms on worked nodes,
        // per-shard state detail on the sharded aggregate.
        let agg = profile
            .nodes
            .iter()
            .find(|n| n.label.starts_with("Agg"))
            .expect("agg node");
        assert!(agg.rows_in > 0 && agg.busy.as_nanos() > 0, "{kind:?}");
        assert!(
            agg.batch_nanos.as_ref().is_some_and(|h| !h.is_empty()),
            "{kind:?}: Profile level must fill histograms"
        );
        assert!(
            !agg.shard_state_bytes.is_empty(),
            "{kind:?}: sharded agg must report per-shard state"
        );
    }
}

#[test]
fn estimates_carry_monotone_telemetry_deltas() {
    // With obs on, every estimate is stamped with the cumulative spill
    // and scan bytes at publish time — monotone, and reconciling with
    // the final rollup on the deterministic engine. A persisted segment
    // table gives the scan path real decode work (memory sources carry
    // no scan telemetry); the budget forces spilling.
    let data = TpchData::generate(0.002, 42);
    let dir = std::env::temp_dir().join("wake-obs-telemetry-test");
    let mut s = Session::new();
    s.set_table_dir(&dir);
    s.set_zone_rows(256);
    s.set_memory_budget(Some(BUDGET));
    s.set_obs_level(ObsLevel::Stats);
    let li = s
        .persist_table(
            "obs_lineitem",
            data.table("lineitem"),
            vec!["l_orderkey".into()],
            None,
        )
        .unwrap();
    let q = li.sum("l_extendedprice", &["l_orderkey"], "rev");
    let mut stream = q.stream().unwrap();
    let mut series = Vec::new();
    for est in &mut stream {
        series.push(est.unwrap());
    }
    let stats = stream.stats();
    assert!(series
        .windows(2)
        .all(|w| w[0].spill_bytes <= w[1].spill_bytes));
    assert!(series
        .windows(2)
        .all(|w| w[0].scan_bytes <= w[1].scan_bytes));
    let last = series.last().unwrap();
    assert!(last.scan_bytes > 0, "scan telemetry must be stamped");
    assert_eq!(last.scan_bytes, stats.scan.decompressed_bytes as u64);
    assert_eq!(last.spill_bytes, stats.spill.spilled_bytes as u64);
    // Per-node attribution over a real segment scan: the read node owns
    // every decompressed byte of the rollup.
    let profile = stream.profile().expect("profile at Stats level");
    let read = profile
        .nodes
        .iter()
        .find(|n| n.label.starts_with("Read"))
        .expect("read node");
    assert!(read.scan.decompressed_bytes > 0);
    assert_eq!(read.scan.decompressed_bytes, stats.scan.decompressed_bytes);
    assert!(read.scan.zones_scanned > 0);
}

#[test]
fn profiles_survive_cancellation_on_both_engines() {
    // Cancel mid-query (the paper's stop-early loop) and read the full
    // profile afterwards: the work done before the stop must be there.
    let db = db();
    for kind in [ExecutorKind::Stepped, ExecutorKind::Threaded] {
        let stream = EngineConfig::new()
            .with_executor(kind)
            .with_obs(ObsLevel::Profile)
            .start(high_card_graph(&db))
            .unwrap();
        let mut stop = stream.until_rows_processed(1_000);
        for est in &mut stop {
            est.unwrap();
        }
        assert!(stop.stopped_early(), "{kind:?}");
        let profile = stop.profile().expect("profile after cancellation");
        let read = profile
            .nodes
            .iter()
            .find(|n| n.label.starts_with("Read"))
            .expect("read node");
        assert!(
            read.rows_out >= 1_000,
            "{kind:?}: pre-cancel work missing from the profile"
        );
        let rendered = stop.explain_analyze();
        assert!(rendered.contains("Agg"), "{kind:?}: {rendered}");
        assert!(rendered.contains("rows"), "{kind:?}: {rendered}");
    }
}

#[test]
fn profiles_survive_error_termination_on_both_engines() {
    // An unreadable spill device kills the query with a typed error; the
    // profile must stay readable (and populated) afterwards, with no
    // leaked threads — the drop path already enforced by the fault
    // suite.
    let db = db();
    for kind in [ExecutorKind::Stepped, ExecutorKind::Threaded] {
        let io = Arc::new(FaultIo::new(FaultSchedule {
            persistent_read_from: Some(0),
            ..FaultSchedule::default()
        }));
        let mut stream = EngineConfig::new()
            .with_executor(kind)
            .with_memory_budget(16 << 10)
            .with_spill_io(io.clone() as Arc<dyn SpillIo>)
            .with_spill_retries(1)
            .with_spill_retry_delay(std::time::Duration::from_micros(50))
            .with_obs(ObsLevel::Profile)
            .start(high_card_graph(&db))
            .unwrap();
        let mut saw_error = false;
        for est in &mut stream {
            match est {
                Ok(_) => {}
                Err(DataError::SpillUnavailable(_)) => {
                    saw_error = true;
                    break;
                }
                Err(other) => panic!("{kind:?}: expected SpillUnavailable, got {other:?}"),
            }
        }
        assert!(saw_error, "{kind:?}: the fault must surface");
        let profile = stream
            .profile()
            .expect("profile readable after error termination");
        assert!(
            profile.nodes.iter().any(|n| n.rows_out > 0),
            "{kind:?}: pre-error work missing"
        );
        assert!(stream.stats().degraded, "{kind:?}");
        assert!(!stream.explain_analyze().is_empty(), "{kind:?}");
    }
}

#[test]
fn explain_analyze_annotates_the_plan_tree() {
    // The rendered tree names every operator with its observed work, and
    // the JSON export round-trips the same nodes.
    let db = db();
    let mut stream = EngineConfig::stepped()
        .with_obs(ObsLevel::Stats)
        .start(high_card_graph(&db))
        .unwrap();
    for est in &mut stream {
        est.unwrap();
    }
    let rendered = stream.explain_analyze();
    for label in ["Read", "Agg", "rows"] {
        assert!(rendered.contains(label), "missing {label} in:\n{rendered}");
    }
    let json = stream.profile().unwrap().to_json();
    assert!(json.contains("\"nodes\""), "{json}");
    assert!(json.contains("\"rows_out\""), "{json}");
    assert_eq!(
        json.matches("\"label\"").count(),
        2,
        "one label per plan node: {json}"
    );
}

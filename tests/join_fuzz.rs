//! Property-based equivalence of Wake's streaming/recompute joins against
//! the naive build-probe join on random tables, across all join kinds,
//! partitionings, duplicate-key densities, null keys, and hash-hostile key
//! distributions. The wake side runs the vectorized hash-key path; the
//! naive side materialises `Row` keys — agreement means the hashed
//! implementation preserves the reference semantics.

use proptest::prelude::*;
use std::sync::Arc;
use wake::baseline::naive::{NaiveJoin, Table};
use wake::core::graph::{JoinKind, Parallelism, QueryGraph};
use wake::data::{Column, DataFrame, DataType, Field, MemorySource, Schema, Value};
use wake::engine::SteppedExecutor;
use wake_engine::SeriesExt;

/// Keys drawn from a hash-hostile palette: clustered small values, extreme
/// magnitudes, and values differing only in high bits.
const NASTY_KEYS: [i64; 12] = [
    0,
    1,
    -1,
    2,
    1 << 32,
    (1 << 32) + 1,
    1 << 62,
    i64::MAX,
    i64::MIN,
    i64::MAX - 1,
    7,
    -7,
];

fn left_frame(rows: &[(i64, i64)]) -> DataFrame {
    let schema = Arc::new(Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("lv", DataType::Int64),
    ]));
    DataFrame::new(
        schema,
        vec![
            Column::from_i64(rows.iter().map(|r| r.0).collect()),
            Column::from_i64(rows.iter().map(|r| r.1).collect()),
        ],
    )
    .unwrap()
}

fn right_frame(rows: &[(i64, i64)]) -> DataFrame {
    let schema = Arc::new(Schema::new(vec![
        Field::new("rk", DataType::Int64),
        Field::new("rv", DataType::Int64),
    ]));
    DataFrame::new(
        schema,
        vec![
            Column::from_i64(rows.iter().map(|r| r.0).collect()),
            Column::from_i64(rows.iter().map(|r| r.1).collect()),
        ],
    )
    .unwrap()
}

/// Multiset of output rows (order-insensitive comparison).
fn row_multiset(f: &DataFrame) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = (0..f.num_rows()).map(|i| f.row(i)).collect();
    rows.sort();
    rows
}

fn wake_join(
    left: &DataFrame,
    right: &DataFrame,
    kind: JoinKind,
    lparts: usize,
    rparts: usize,
) -> DataFrame {
    let lsrc = MemorySource::from_frame(
        "l",
        left,
        left.num_rows().div_ceil(lparts).max(1),
        vec![],
        None,
    )
    .unwrap();
    let rsrc = MemorySource::from_frame(
        "r",
        right,
        right.num_rows().div_ceil(rparts).max(1),
        vec![],
        None,
    )
    .unwrap();
    let mut g = QueryGraph::new();
    let l = g.read(lsrc);
    let r = g.read(rsrc);
    let j = g.join_kind(l, r, vec!["k"], vec!["rk"], kind);
    g.sink(j);
    SteppedExecutor::new(g)
        .unwrap()
        .run_collect()
        .unwrap()
        .final_frame()
        .as_ref()
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn streaming_joins_match_naive(
        lrows in prop::collection::vec((0i64..12, 0i64..100), 0..60),
        rrows in prop::collection::vec((0i64..12, 0i64..100), 0..60),
        lparts in 1usize..5,
        rparts in 1usize..5,
    ) {
        let lf = left_frame(&lrows);
        let rf = right_frame(&rrows);
        let naive_l = Table::new(lf.clone());
        let naive_r = Table::new(rf.clone());
        for (kind, nkind) in [
            (JoinKind::Inner, NaiveJoin::Inner),
            (JoinKind::Left, NaiveJoin::Left),
            (JoinKind::Semi, NaiveJoin::Semi),
            (JoinKind::Anti, NaiveJoin::Anti),
        ] {
            // Skip empty-left sources only when frame construction allows.
            if lf.num_rows() == 0 && rf.num_rows() == 0 {
                continue;
            }
            let wake = wake_join(&lf, &rf, kind, lparts, rparts);
            let naive = naive_l.join(&naive_r, &["k"], &["rk"], nkind).unwrap();
            prop_assert_eq!(
                row_multiset(&wake),
                row_multiset(naive.frame()),
                "kind {:?} lparts {} rparts {}",
                kind,
                lparts,
                rparts
            );
        }
    }

    #[test]
    fn multi_key_join_matches_naive(
        rows in prop::collection::vec((0i64..4, 0i64..4, 0i64..50), 0..50),
    ) {
        // Join a table with itself on a two-column key.
        let schema = Arc::new(Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("v", DataType::Int64),
        ]));
        let frame = DataFrame::new(
            schema,
            vec![
                Column::from_i64(rows.iter().map(|r| r.0).collect()),
                Column::from_i64(rows.iter().map(|r| r.1).collect()),
                Column::from_i64(rows.iter().map(|r| r.2).collect()),
            ],
        )
        .unwrap();
        if frame.num_rows() == 0 {
            return Ok(());
        }
        let src = || MemorySource::from_frame("t", &frame, 10, vec![], None).unwrap();
        let mut g = QueryGraph::new();
        let l = g.read(src());
        let r = g.read(src());
        let j = g.join(l, r, vec!["a", "b"], vec!["a", "b"]);
        g.sink(j);
        let wake = SteppedExecutor::new(g).unwrap().run_collect().unwrap();
        let naive = Table::new(frame.clone())
            .join(&Table::new(frame.clone()), &["a", "b"], &["a", "b"], NaiveJoin::Inner)
            .unwrap();
        prop_assert_eq!(
            row_multiset(wake.final_frame()).len(),
            row_multiset(naive.frame()).len()
        );
    }

    #[test]
    fn null_key_joins_match_naive(
        lrows in prop::collection::vec((0u8..4, 0i64..6, 0i64..100), 0..50),
        rrows in prop::collection::vec((0u8..4, 0i64..6, 0i64..100), 0..50),
        lparts in 1usize..4,
        rparts in 1usize..4,
    ) {
        // First tuple component 0 => null key (~25% nulls).
        let lvals: Vec<(Option<i64>, i64)> =
            lrows.iter().map(|&(n, k, v)| ((n != 0).then_some(k), v)).collect();
        let rvals: Vec<(Option<i64>, i64)> =
            rrows.iter().map(|&(n, k, v)| ((n != 0).then_some(k), v)).collect();
        if lvals.is_empty() && rvals.is_empty() {
            return Ok(());
        }
        let lf = nullable_frame("k", "lv", &lvals);
        let rf = nullable_frame("rk", "rv", &rvals);
        let naive_l = Table::new(lf.clone());
        let naive_r = Table::new(rf.clone());
        for (kind, nkind) in [
            (JoinKind::Inner, NaiveJoin::Inner),
            (JoinKind::Left, NaiveJoin::Left),
            (JoinKind::Semi, NaiveJoin::Semi),
            (JoinKind::Anti, NaiveJoin::Anti),
        ] {
            let wake = wake_join(&lf, &rf, kind, lparts, rparts);
            let naive = naive_l.join(&naive_r, &["k"], &["rk"], nkind).unwrap();
            prop_assert_eq!(
                row_multiset(&wake),
                row_multiset(naive.frame()),
                "kind {:?} with null keys",
                kind
            );
        }
    }

    #[test]
    fn hash_hostile_keys_match_naive(
        lpicks in prop::collection::vec((0usize..12, 0i64..100), 0..40),
        rpicks in prop::collection::vec((0usize..12, 0i64..100), 0..40),
        parts in 1usize..4,
    ) {
        let lrows: Vec<(i64, i64)> =
            lpicks.iter().map(|&(i, v)| (NASTY_KEYS[i], v)).collect();
        let rrows: Vec<(i64, i64)> =
            rpicks.iter().map(|&(i, v)| (NASTY_KEYS[i], v)).collect();
        if lrows.is_empty() && rrows.is_empty() {
            return Ok(());
        }
        let lf = left_frame(&lrows);
        let rf = right_frame(&rrows);
        let naive_l = Table::new(lf.clone());
        let naive_r = Table::new(rf.clone());
        for (kind, nkind) in [
            (JoinKind::Inner, NaiveJoin::Inner),
            (JoinKind::Left, NaiveJoin::Left),
            (JoinKind::Semi, NaiveJoin::Semi),
            (JoinKind::Anti, NaiveJoin::Anti),
        ] {
            let wake = wake_join(&lf, &rf, kind, parts, parts);
            let naive = naive_l.join(&naive_r, &["k"], &["rk"], nkind).unwrap();
            prop_assert_eq!(
                row_multiset(&wake),
                row_multiset(naive.frame()),
                "kind {:?} with extreme keys",
                kind
            );
        }
    }

    #[test]
    fn group_by_with_null_keys_matches_reference(
        rows in prop::collection::vec((0u8..4, 0i64..6, -50i64..50), 1..80),
        per_part in 1usize..20,
    ) {
        // Hashed group-by (nulls form their own group) vs a BTreeMap
        // reference; Option<i64>'s None-first ordering matches Wake's
        // nulls-first output order.
        let vals: Vec<(Option<i64>, i64)> =
            rows.iter().map(|&(n, k, v)| ((n != 0).then_some(k), v)).collect();
        let frame = nullable_frame("k", "v", &vals);
        let src = MemorySource::from_frame("t", &frame, per_part, vec![], None).unwrap();
        let mut g = QueryGraph::new();
        let r = g.read(src);
        let a = g.agg(
            r,
            vec!["k"],
            vec![
                wake::core::agg::AggSpec::sum(wake::expr::col("v"), "s"),
                wake::core::agg::AggSpec::count_star("n"),
            ],
        );
        g.sink(a);
        let out = SteppedExecutor::new(g)
            .unwrap()
            .run_collect()
            .unwrap()
            .final_frame()
            .as_ref()
            .clone();
        let mut expect: std::collections::BTreeMap<Option<i64>, (f64, u64)> =
            Default::default();
        for (k, v) in &vals {
            let e = expect.entry(*k).or_default();
            e.0 += *v as f64;
            e.1 += 1;
        }
        prop_assert_eq!(out.num_rows(), expect.len());
        for (i, (k, (s, n))) in expect.iter().enumerate() {
            let got_k = out.value(i, "k").unwrap();
            match k {
                None => prop_assert!(got_k.is_null(), "row {} key {:?}", i, got_k),
                Some(k) => prop_assert_eq!(&got_k, &Value::Int(*k)),
            }
            prop_assert_eq!(
                out.value(i, "s").unwrap().as_f64().unwrap(),
                *s
            );
            prop_assert_eq!(
                out.value(i, "n").unwrap().as_f64().unwrap(),
                *n as f64
            );
        }
    }
}

/// Stepped estimate series for a join graph at an explicit shard count.
fn join_series(
    left: &DataFrame,
    right: &DataFrame,
    kind: JoinKind,
    parts: usize,
    shards: usize,
) -> wake_engine::EstimateSeries {
    let lsrc = MemorySource::from_frame(
        "l",
        left,
        left.num_rows().div_ceil(parts).max(1),
        vec![],
        None,
    )
    .unwrap();
    let rsrc = MemorySource::from_frame(
        "r",
        right,
        right.num_rows().div_ceil(parts).max(1),
        vec![],
        None,
    )
    .unwrap();
    let mut g = QueryGraph::new().with_parallelism(Parallelism::Fixed(shards));
    let l = g.read(lsrc);
    let r = g.read(rsrc);
    let j = g.join_kind(l, r, vec!["k"], vec!["rk"], kind);
    g.sink(j);
    SteppedExecutor::new(g).unwrap().run_collect().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Sharded-vs-unsharded equivalence: random S ∈ {1, 2, 3, 8}, null
    // keys and hash-hostile keys mixed in. Frame arrival order is
    // deterministic under the stepped executor, so the estimate series
    // must match one-to-one — same length, same progress, and
    // multiset-identical frames (shard concat may permute rows within an
    // emission). Group-by snapshots are key-sorted with global fold
    // order preserved, so they must be *bit*-identical.
    #[test]
    fn sharded_execution_matches_unsharded(
        lrows in prop::collection::vec((0u8..6, 0usize..12, 0i64..100), 0..60),
        rrows in prop::collection::vec((0u8..6, 0usize..12, 0i64..100), 0..60),
        shard_sel in 0usize..4,
        parts in 1usize..4,
    ) {
        let shards = [1usize, 2, 3, 8][shard_sel];
        // tag 0 → null key, tag 1 → hash-hostile palette, else small dense.
        let key = |tag: u8, idx: usize| match tag {
            0 => None,
            1 => Some(NASTY_KEYS[idx]),
            _ => Some(idx as i64 % 6),
        };
        let lvals: Vec<(Option<i64>, i64)> =
            lrows.iter().map(|&(t, i, v)| (key(t, i), v)).collect();
        let rvals: Vec<(Option<i64>, i64)> =
            rrows.iter().map(|&(t, i, v)| (key(t, i), v)).collect();
        if lvals.is_empty() && rvals.is_empty() {
            return Ok(());
        }
        let lf = nullable_frame("k", "lv", &lvals);
        let rf = nullable_frame("rk", "rv", &rvals);
        for kind in [JoinKind::Inner, JoinKind::Left, JoinKind::Semi, JoinKind::Anti] {
            let serial = join_series(&lf, &rf, kind, parts, 1);
            let sharded = join_series(&lf, &rf, kind, parts, shards);
            prop_assert_eq!(serial.len(), sharded.len(), "kind {:?} S={}", kind, shards);
            for (a, b) in serial.iter().zip(&sharded) {
                prop_assert_eq!(a.t, b.t);
                prop_assert_eq!(
                    row_multiset(&a.frame),
                    row_multiset(&b.frame),
                    "kind {:?} S={} seq {}",
                    kind,
                    shards,
                    a.seq
                );
            }
        }
        // Group-by over the same data: snapshots must be identical frames.
        if !lvals.is_empty() {
            let agg_series = |shards: usize| {
                let src = MemorySource::from_frame(
                    "t",
                    &lf,
                    lf.num_rows().div_ceil(parts).max(1),
                    vec![],
                    None,
                )
                .unwrap();
                let mut g = QueryGraph::new().with_parallelism(Parallelism::Fixed(shards));
                let r = g.read(src);
                let a = g.agg(
                    r,
                    vec!["k"],
                    vec![
                        wake::core::agg::AggSpec::sum(wake::expr::col("lv"), "s"),
                        wake::core::agg::AggSpec::count_star("n"),
                        wake::core::agg::AggSpec::max(wake::expr::col("lv"), "mx"),
                    ],
                );
                g.sink(a);
                SteppedExecutor::new(g).unwrap().run_collect().unwrap()
            };
            let serial = agg_series(1);
            let sharded = agg_series(shards);
            prop_assert_eq!(serial.len(), sharded.len());
            for (a, b) in serial.iter().zip(&sharded) {
                prop_assert_eq!(a.t, b.t);
                prop_assert_eq!(a.frame.as_ref(), b.frame.as_ref(), "S={} seq {}", shards, a.seq);
            }
        }
    }
}

/// Two-column frame `(key: Int64 nullable, val: Int64)`.
fn nullable_frame(kname: &str, vname: &str, rows: &[(Option<i64>, i64)]) -> DataFrame {
    let schema = Arc::new(Schema::new(vec![
        Field::new(kname, DataType::Int64),
        Field::new(vname, DataType::Int64),
    ]));
    let keys: Vec<Value> = rows
        .iter()
        .map(|(k, _)| k.map_or(Value::Null, Value::Int))
        .collect();
    DataFrame::new(
        schema,
        vec![
            Column::from_values(DataType::Int64, &keys).unwrap(),
            Column::from_i64(rows.iter().map(|r| r.1).collect()),
        ],
    )
    .unwrap()
}

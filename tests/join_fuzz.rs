//! Property-based equivalence of Wake's streaming/recompute joins against
//! the naive build-probe join on random tables, across all join kinds,
//! partitionings, and duplicate-key densities.

use proptest::prelude::*;
use std::sync::Arc;
use wake::baseline::naive::{NaiveJoin, Table};
use wake::core::graph::{JoinKind, QueryGraph};
use wake::data::{Column, DataFrame, DataType, Field, MemorySource, Schema, Value};
use wake::engine::SteppedExecutor;
use wake_engine::SeriesExt;

fn left_frame(rows: &[(i64, i64)]) -> DataFrame {
    let schema = Arc::new(Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("lv", DataType::Int64),
    ]));
    DataFrame::new(
        schema,
        vec![
            Column::from_i64(rows.iter().map(|r| r.0).collect()),
            Column::from_i64(rows.iter().map(|r| r.1).collect()),
        ],
    )
    .unwrap()
}

fn right_frame(rows: &[(i64, i64)]) -> DataFrame {
    let schema = Arc::new(Schema::new(vec![
        Field::new("rk", DataType::Int64),
        Field::new("rv", DataType::Int64),
    ]));
    DataFrame::new(
        schema,
        vec![
            Column::from_i64(rows.iter().map(|r| r.0).collect()),
            Column::from_i64(rows.iter().map(|r| r.1).collect()),
        ],
    )
    .unwrap()
}

/// Multiset of output rows (order-insensitive comparison).
fn row_multiset(f: &DataFrame) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = (0..f.num_rows()).map(|i| f.row(i)).collect();
    rows.sort();
    rows
}

fn wake_join(
    left: &DataFrame,
    right: &DataFrame,
    kind: JoinKind,
    lparts: usize,
    rparts: usize,
) -> DataFrame {
    let lsrc = MemorySource::from_frame(
        "l",
        left,
        left.num_rows().div_ceil(lparts).max(1),
        vec![],
        None,
    )
    .unwrap();
    let rsrc = MemorySource::from_frame(
        "r",
        right,
        right.num_rows().div_ceil(rparts).max(1),
        vec![],
        None,
    )
    .unwrap();
    let mut g = QueryGraph::new();
    let l = g.read(lsrc);
    let r = g.read(rsrc);
    let j = g.join_kind(l, r, vec!["k"], vec!["rk"], kind);
    g.sink(j);
    SteppedExecutor::new(g)
        .unwrap()
        .run_collect()
        .unwrap()
        .final_frame()
        .as_ref()
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn streaming_joins_match_naive(
        lrows in prop::collection::vec((0i64..12, 0i64..100), 0..60),
        rrows in prop::collection::vec((0i64..12, 0i64..100), 0..60),
        lparts in 1usize..5,
        rparts in 1usize..5,
    ) {
        let lf = left_frame(&lrows);
        let rf = right_frame(&rrows);
        let naive_l = Table::new(lf.clone());
        let naive_r = Table::new(rf.clone());
        for (kind, nkind) in [
            (JoinKind::Inner, NaiveJoin::Inner),
            (JoinKind::Left, NaiveJoin::Left),
            (JoinKind::Semi, NaiveJoin::Semi),
            (JoinKind::Anti, NaiveJoin::Anti),
        ] {
            // Skip empty-left sources only when frame construction allows.
            if lf.num_rows() == 0 && rf.num_rows() == 0 {
                continue;
            }
            let wake = wake_join(&lf, &rf, kind, lparts, rparts);
            let naive = naive_l.join(&naive_r, &["k"], &["rk"], nkind).unwrap();
            prop_assert_eq!(
                row_multiset(&wake),
                row_multiset(naive.frame()),
                "kind {:?} lparts {} rparts {}",
                kind,
                lparts,
                rparts
            );
        }
    }

    #[test]
    fn multi_key_join_matches_naive(
        rows in prop::collection::vec((0i64..4, 0i64..4, 0i64..50), 0..50),
    ) {
        // Join a table with itself on a two-column key.
        let schema = Arc::new(Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("v", DataType::Int64),
        ]));
        let frame = DataFrame::new(
            schema,
            vec![
                Column::from_i64(rows.iter().map(|r| r.0).collect()),
                Column::from_i64(rows.iter().map(|r| r.1).collect()),
                Column::from_i64(rows.iter().map(|r| r.2).collect()),
            ],
        )
        .unwrap();
        if frame.num_rows() == 0 {
            return Ok(());
        }
        let src = || MemorySource::from_frame("t", &frame, 10, vec![], None).unwrap();
        let mut g = QueryGraph::new();
        let l = g.read(src());
        let r = g.read(src());
        let j = g.join(l, r, vec!["a", "b"], vec!["a", "b"]);
        g.sink(j);
        let wake = SteppedExecutor::new(g).unwrap().run_collect().unwrap();
        let naive = Table::new(frame.clone())
            .join(&Table::new(frame.clone()), &["a", "b"], &["a", "b"], NaiveJoin::Inner)
            .unwrap();
        prop_assert_eq!(
            row_multiset(wake.final_frame()).len(),
            row_multiset(naive.frame()).len()
        );
    }
}

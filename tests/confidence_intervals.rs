//! Confidence-interval behaviour (§6, validated as in §8.5 / Fig 10):
//! running Q14 with shuffled input partitions, the 95 % Chebyshev CIs must
//! (a) converge toward the point estimate and (b) bound the true answer
//! for (at least) the nominal fraction of estimates.

use std::sync::Arc;
use wake::core::ci;
use wake::engine::SteppedExecutor;
use wake::tpch::{queries, TpchData, TpchDb};
use wake_engine::SeriesExt;

#[test]
fn q14_cis_bound_truth_and_shrink() {
    let data = Arc::new(TpchData::generate(0.004, 42));
    let db = TpchDb::new(data, 16);
    let g = queries::q14_with_ci(&db);
    let series = SteppedExecutor::new(g).unwrap().run_collect().unwrap();
    assert!(series.len() >= 10);
    let truth = series
        .final_frame()
        .value(0, "promo_revenue")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(truth.is_finite() && truth > 0.0);

    let mut widths = Vec::new();
    let mut covered = 0usize;
    let mut checked = 0usize;
    for est in &series {
        if est.frame.num_rows() == 0 {
            continue;
        }
        let interval = ci::interval_at(&est.frame, 0, "promo_revenue", 0.95).unwrap();
        widths.push(interval.width());
        checked += 1;
        if interval.contains(truth) {
            covered += 1;
        }
    }
    assert!(checked >= 10);
    // Chebyshev at 95% must over-cover by a wide margin in practice.
    let coverage = covered as f64 / checked as f64;
    assert!(coverage >= 0.9, "coverage {coverage} below nominal");
    // CI width collapses to 0 at completion and shrinks broadly over time.
    assert!(*widths.last().unwrap() < 1e-9, "final CI must be exact");
    let first_half: f64 =
        widths[..widths.len() / 2].iter().sum::<f64>() / (widths.len() / 2) as f64;
    let second_half: f64 =
        widths[widths.len() / 2..].iter().sum::<f64>() / (widths.len() - widths.len() / 2) as f64;
    assert!(
        second_half <= first_half,
        "widths should shrink: {first_half} -> {second_half}"
    );
}

#[test]
fn shuffled_partitions_still_bound_truth() {
    // §8.5 shuffles input partitions to simulate unexpected input orders.
    let data = Arc::new(TpchData::generate(0.004, 7));
    let frame = &data.lineitem;
    let rows_per = frame.num_rows().div_ceil(16).max(1);
    let src = wake::data::MemorySource::from_frame(
        "lineitem",
        frame,
        rows_per,
        vec!["l_orderkey".into(), "l_linenumber".into()],
        Some(vec!["l_orderkey".into()]),
    )
    .unwrap();
    // Reverse the partition read order — a deterministic "shuffle".
    let n = wake::data::TableSource::meta(&src).num_partitions();
    let order: Vec<usize> = (0..n).rev().collect();
    let shuffled = src.shuffled_partitions(&order).unwrap();

    // sum(l_quantity) with CI over the shuffled read.
    let mut g = wake::core::graph::QueryGraph::new();
    let r = g.read(shuffled);
    let a = g.agg_with_ci(
        r,
        vec![],
        vec![wake::core::agg::AggSpec::sum(
            wake::expr::col("l_quantity"),
            "q",
        )],
    );
    g.sink(a);
    let series = SteppedExecutor::new(g).unwrap().run_collect().unwrap();
    let truth = series
        .final_frame()
        .value(0, "q")
        .unwrap()
        .as_f64()
        .unwrap();
    let mut covered = 0usize;
    for est in &series {
        let interval = ci::interval_at(&est.frame, 0, "q", 0.95).unwrap();
        if interval.contains(truth) {
            covered += 1;
        }
    }
    let coverage = covered as f64 / series.len() as f64;
    assert!(coverage >= 0.9, "coverage {coverage}");
}

#[test]
fn variance_survives_projections() {
    // agg_with_ci -> map (ratio) : the map output carries a propagated
    // `{alias}__var` column (§6 / Appendix B) whose CI still bounds the
    // truth and collapses at completion.
    let data = Arc::new(TpchData::generate(0.004, 5));
    let db = TpchDb::new(data.clone(), 12);
    let mut g = wake::core::graph::QueryGraph::new();
    let li = db.read(&mut g, "lineitem");
    let a = g.agg_with_ci(
        li,
        vec![],
        vec![
            wake::core::agg::AggSpec::sum(wake::expr::col("l_quantity"), "q"),
            wake::core::agg::AggSpec::count_star("n"),
        ],
    );
    let m = g.map(
        a,
        vec![(wake::expr::col("q").div(wake::expr::lit_f64(1000.0)), "kq")],
    );
    g.sink(m);
    let metas = g.resolve_metas().unwrap();
    assert!(metas.last().unwrap().schema.contains("kq__var"));
    let series = SteppedExecutor::new(g).unwrap().run_collect().unwrap();
    let truth = series
        .final_frame()
        .value(0, "kq")
        .unwrap()
        .as_f64()
        .unwrap();
    let mut covered = 0;
    for est in &series {
        let interval = ci::interval_at(&est.frame, 0, "kq", 0.95).unwrap();
        if interval.contains(truth) {
            covered += 1;
        }
        // Var scales by (1/1000)²: sanity that it is tiny but positive
        // before completion.
        if est.t < 1.0 {
            assert!(interval.width() >= 0.0);
        }
    }
    assert!(covered as f64 / series.len() as f64 >= 0.9);
    let last = ci::interval_at(series.final_frame(), 0, "kq", 0.95).unwrap();
    assert!(last.width() < 1e-12, "exact at completion");
}

#[test]
fn variance_columns_only_when_requested() {
    let data = Arc::new(TpchData::generate(0.002, 1));
    let db = TpchDb::new(data, 4);
    let plain = queries::q14(&db);
    let with_ci = queries::q14_with_ci(&db);
    let plain_schema = plain
        .resolve_metas()
        .unwrap()
        .last()
        .unwrap()
        .schema
        .clone();
    let ci_schema = with_ci
        .resolve_metas()
        .unwrap()
        .last()
        .unwrap()
        .schema
        .clone();
    assert!(!plain_schema.contains("promo_revenue__var"));
    assert!(ci_schema.contains("promo_revenue__var"));
}

//! The streaming-first execution surface: lazy estimate streams must be
//! exactly the batch path, cancellation must be clean (no hangs, no
//! leaked node threads, no leftover spill directories), and the OLA
//! stopping conditions must end TPC-H-scale queries before EOF.

use std::sync::{Arc, Mutex};
use wake::core::graph::QueryGraph;
use wake::prelude::*;
use wake::tpch::{all_queries, queries, TpchData, TpchDb};

/// Serialises the tests that count OS threads or spawn pipelines, so one
/// test's node threads never show up in another's `/proc` snapshot.
static THREADS: Mutex<()> = Mutex::new(());

fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("linux /proc")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

/// Wait (briefly) for the process thread count to drop back to at most
/// `baseline`; returns the final count.
fn settled_thread_count(baseline: usize) -> usize {
    let mut count = thread_count();
    for _ in 0..200 {
        if count <= baseline {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        count = thread_count();
    }
    count
}

/// A high-cardinality group-by over lineitem — the shape that provably
/// spills under a small budget.
fn high_card_graph(db: &TpchDb) -> QueryGraph {
    let mut g = QueryGraph::new();
    let li = db.read(&mut g, "lineitem");
    let a = g.agg(
        li,
        vec!["l_orderkey"],
        vec![AggSpec::sum(col("l_extendedprice"), "rev")],
    );
    g.sink(a);
    g
}

#[test]
fn stepped_stream_is_bit_identical_to_run_collect_on_all_tpch_queries() {
    // The satellite acceptance: lazily polling the stream must reproduce
    // the materialised series exactly — frames bit for bit, progress,
    // sequence numbers, row counts, finality — on every TPC-H query.
    let data = Arc::new(TpchData::generate(0.002, 7));
    let db = TpchDb::new(data, 6);
    for spec in all_queries() {
        let collected = SteppedExecutor::new((spec.build)(&db))
            .unwrap()
            .run_collect()
            .unwrap();
        let mut stream = SteppedExecutor::new((spec.build)(&db))
            .unwrap()
            .stream()
            .unwrap();
        let mut streamed = Vec::new();
        for est in &mut stream {
            streamed.push(est.unwrap());
        }
        assert_eq!(
            collected.len(),
            streamed.len(),
            "{}: series length",
            spec.name
        );
        for (a, b) in collected.iter().zip(&streamed) {
            assert_eq!(
                a.frame.as_ref(),
                b.frame.as_ref(),
                "{} @ seq {}",
                spec.name,
                a.seq
            );
            assert_eq!(a.t, b.t, "{}", spec.name);
            assert_eq!(a.seq, b.seq, "{}", spec.name);
            assert_eq!(a.is_final, b.is_final, "{}", spec.name);
            assert_eq!(a.rows_processed, b.rows_processed, "{}", spec.name);
        }
        assert!(stream.next().is_none(), "{}: stream must fuse", spec.name);
    }
}

#[test]
fn dropping_threaded_stream_mid_query_leaks_nothing() {
    let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
    let data = Arc::new(TpchData::generate(0.01, 21));
    let db = TpchDb::new(data, 32);
    let baseline = thread_count();
    let mut stream = EngineConfig::threaded()
        .start(high_card_graph(&db))
        .unwrap();
    // Mid-query: at least one estimate in, query far from done.
    let first = stream.next().unwrap().unwrap();
    assert!(!first.is_final);
    assert!(first.t < 1.0);
    assert!(thread_count() > baseline, "pipeline threads are running");
    drop(stream); // must not hang (drop joins every node thread)
    let after = settled_thread_count(baseline);
    assert!(
        after <= baseline,
        "leaked node threads: {baseline} before, {after} after cancel"
    );
}

#[test]
fn dropping_threaded_stream_with_spill_budget_cleans_spill_dir() {
    let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
    let data = Arc::new(TpchData::generate(0.01, 22));
    let db = TpchDb::new(data, 32);
    let baseline = thread_count();
    let mut stream = EngineConfig::threaded()
        .with_memory_budget(16 << 10)
        .start(high_card_graph(&db))
        .unwrap();
    let spill_dir = stream.spill_dir().expect("budgeted query has a spill dir");
    assert!(spill_dir.exists(), "spill dir allocated up front");
    // Poll until the query demonstrably spilled, then abandon it.
    let mut spilled = false;
    while let Some(est) = stream.next() {
        est.unwrap();
        if stream.stats().spill.evictions > 0 {
            spilled = true;
            break;
        }
    }
    assert!(spilled, "16 KiB budget must evict on a high-card group-by");
    drop(stream);
    let after = settled_thread_count(baseline);
    assert!(
        after <= baseline,
        "leaked node threads: {baseline} before, {after} after cancel"
    );
    assert!(
        !spill_dir.exists(),
        "per-query spill temp dir must be removed on cancellation: {spill_dir:?}"
    );
}

#[test]
fn threaded_stream_exhaustion_also_cleans_spill_dir() {
    let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
    let data = Arc::new(TpchData::generate(0.002, 23));
    let db = TpchDb::new(data, 6);
    let stream = EngineConfig::threaded()
        .with_memory_budget(16 << 10)
        .start(high_card_graph(&db))
        .unwrap();
    let spill_dir = stream.spill_dir().unwrap();
    let (series, stats) = stream.collect_with_stats().unwrap();
    assert!(series.last().unwrap().is_final);
    assert!(stats.spill.evictions > 0);
    assert!(
        !spill_dir.exists(),
        "spill temp dir must be removed after normal completion"
    );
}

/// TPC-H-scale CI-enabled aggregation: global average of
/// `l_extendedprice` over lineitem with §6 variance propagation. The
/// Chebyshev interval demonstrably tightens with progress (≈11 % relative
/// half-width at t = 0.01, ≈1.2 % at t = 0.93 at SF 0.01).
fn ci_avg_graph(db: &TpchDb) -> QueryGraph {
    let mut g = QueryGraph::new();
    let li = db.read(&mut g, "lineitem");
    let a = g.agg_with_ci(
        li,
        vec![],
        vec![AggSpec::avg(col("l_extendedprice"), "avg_price")],
    );
    g.sink(a);
    g
}

#[test]
fn until_confidence_stops_a_tpch_query_before_eof() {
    // The paper's §3.1 loop: stop as soon as the 95 % Chebyshev interval
    // is tighter than ±2 % — long before the scan completes (the probe
    // above crosses 2 % around a quarter of the way through the scan).
    let data = Arc::new(TpchData::generate(0.01, 31));
    let db = TpchDb::new(data, 48);
    let stream = EngineConfig::stepped().start(ci_avg_graph(&db)).unwrap();
    let mut stop = stream.until_confidence("avg_price", 0.02);
    let mut last = None;
    for est in &mut stop {
        last = Some(est.unwrap());
    }
    let last = last.expect("at least one estimate");
    assert!(
        stop.stopped_early(),
        "CI never tightened below 2% before EOF (final t = {})",
        last.t
    );
    assert!(!last.is_final, "stopped estimate is not the exact answer");
    assert!(
        last.t < 0.9,
        "expected an early stop well before EOF: t = {}",
        last.t
    );
    assert!(last.max_rel_half_width("avg_price", 0.95).unwrap() <= 0.02);
    assert!(stop.next().is_none(), "stopped stream must fuse");

    // A degenerate-but-plausible trap: Q14's early snapshots contain a
    // zero estimate with zero variance (the join has not produced rows
    // yet). That must never read as converged.
    let q14 = EngineConfig::stepped()
        .start(queries::q14_with_ci(&db))
        .unwrap();
    let mut q14_stop = q14.until_confidence("promo_revenue", 0.5);
    let first = q14_stop.next().unwrap().unwrap();
    if let Some(v) = first
        .frame
        .value(0, "promo_revenue")
        .ok()
        .and_then(|v| v.as_f64())
    {
        if v == 0.0 {
            assert!(
                !q14_stop.stopped_early(),
                "zero/zero row must not stop the stream"
            );
        }
    }

    // And the final-on-completion answer (no stopping condition) stays
    // bit-identical to the batch collect() path.
    let via_stream = EngineConfig::stepped()
        .start(ci_avg_graph(&db))
        .unwrap()
        .final_frame()
        .unwrap();
    let via_collect = SteppedExecutor::new(ci_avg_graph(&db))
        .unwrap()
        .run_collect()
        .unwrap();
    assert_eq!(via_stream.as_ref(), via_collect.final_frame().as_ref());
}

#[test]
fn until_rows_processed_stops_both_engines_at_tpch_scale() {
    let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
    let data = Arc::new(TpchData::generate(0.01, 33));
    let db = TpchDb::new(data, 32);
    for kind in [ExecutorKind::Stepped, ExecutorKind::Threaded] {
        let stream = EngineConfig::new()
            .with_executor(kind)
            .start(high_card_graph(&db))
            .unwrap();
        let mut stop = stream.until_rows_processed(5_000);
        let mut last = None;
        for est in &mut stop {
            last = Some(est.unwrap());
        }
        let last = last.expect("at least one estimate");
        assert!(stop.stopped_early(), "{kind:?}");
        assert!(
            last.rows_processed >= 5_000,
            "{kind:?}: {}",
            last.rows_processed
        );
        assert!(!last.is_final, "{kind:?}");
    }
}

#[test]
fn stats_are_retrievable_from_exhausted_streams_of_both_engines() {
    let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
    let data = Arc::new(TpchData::generate(0.002, 35));
    let db = TpchDb::new(data, 6);
    for kind in [ExecutorKind::Stepped, ExecutorKind::Threaded] {
        let mut stream = EngineConfig::new()
            .with_executor(kind)
            .with_memory_budget(16 << 10)
            .start(high_card_graph(&db))
            .unwrap();
        for est in &mut stream {
            est.unwrap();
        }
        let stats = stream.stats();
        assert!(stats.peak_state_bytes > 0, "{kind:?}");
        assert!(stats.spill.evictions > 0, "{kind:?}: {:?}", stats.spill);
        // `finish` on an exhausted stream is a no-op that keeps the
        // telemetry readable.
        let final_stats = stream.finish();
        assert_eq!(
            final_stats.spill.evictions, stats.spill.evictions,
            "{kind:?}"
        );
    }
}

#[test]
fn session_streaming_loop_matches_batch_answers() {
    // The §1 session listing as a streaming loop, TPC-H flavoured: the
    // answer assembled by watching the stream equals the batch adapters.
    let data = Arc::new(TpchData::generate(0.002, 37));
    let mut s = Session::new();
    let li = s.read(data.source("lineitem", 8));
    let q = li
        .sum("l_quantity", &["l_orderkey"], "sum_qty")
        .filter(col("sum_qty").gt(lit(150.0)))
        .sort(&["sum_qty"], &[true])
        .limit(10);
    let mut final_from_stream = None;
    for est in q.stream().unwrap() {
        let est = est.unwrap();
        if est.is_final {
            final_from_stream = Some(est.frame.clone());
        }
    }
    let batch = q.get_final().unwrap();
    assert_eq!(final_from_stream.unwrap().as_ref(), batch.as_ref());
}

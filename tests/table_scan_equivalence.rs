//! Persisted segment tables must be a *transparent* swap for in-memory
//! sources: all 22 TPC-H queries over unpruned on-disk tables reproduce
//! the in-memory estimate stream bit for bit (same partitioning, same
//! zone order, same frames); zone pruning may only skip I/O, never change
//! answers; and under pruning + seeded zone reordering the growth model's
//! population accounting must keep estimates unbiased and confidence
//! intervals valid (no false convergence — including the all-zones-pruned
//! query, which must end on the exact empty answer).

use std::path::PathBuf;
use std::sync::Arc;
use wake::core::metrics;
use wake::engine::{EngineConfig, SteppedExecutor};
use wake::store::segment::frames_bit_identical;
use wake::tpch::{all_queries, TpchData, TpchDb};
use wake_engine::SeriesExt;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wake-scan-equiv-{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn all_queries_persisted_unpruned_bit_identical() {
    let data = Arc::new(TpchData::generate(0.002, 42));
    let mem = TpchDb::new(data.clone(), 8);
    let dir = scratch_dir("unpruned");
    let disk = TpchDb::persisted(data, 8, &dir).unwrap();
    for spec in all_queries() {
        // `SteppedExecutor::new` runs no planner passes: the on-disk scan
        // visits every zone in file order, so the entire estimate stream —
        // frames (to the float bit), progress, sequence numbers, finality —
        // must match the in-memory run exactly.
        let a = SteppedExecutor::new((spec.build)(&mem))
            .unwrap()
            .run_collect()
            .unwrap();
        let b = SteppedExecutor::new((spec.build)(&disk))
            .unwrap()
            .run_collect()
            .unwrap();
        assert_eq!(a.len(), b.len(), "{}: estimate counts differ", spec.name);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.t, y.t, "{}: progress diverged", spec.name);
            assert_eq!(x.seq, y.seq, "{}", spec.name);
            assert_eq!(x.rows_processed, y.rows_processed, "{}", spec.name);
            assert_eq!(x.is_final, y.is_final, "{}", spec.name);
            assert!(
                frames_bit_identical(&x.frame, &y.frame),
                "{}: estimate {} not bit-identical\nmem:\n{}\ndisk:\n{}",
                spec.name,
                x.seq,
                x.frame.pretty(8),
                y.frame.pretty(8)
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn all_queries_pruned_finals_match_in_memory() {
    let data = Arc::new(TpchData::generate(0.002, 11));
    let mem = TpchDb::new(data.clone(), 8);
    let dir = scratch_dir("pruned");
    let disk = TpchDb::persisted(data, 8, &dir).unwrap();
    for spec in all_queries() {
        let want = SteppedExecutor::new((spec.build)(&mem))
            .unwrap()
            .run_collect()
            .unwrap();
        let want = want.final_frame();
        // Pruning enabled (the default): predicates are pushed into every
        // eligible scan, zones provably empty of matches are skipped. The
        // final answer must be unchanged.
        let got = EngineConfig::stepped()
            .with_zone_pruning(true)
            .run_collect((spec.build)(&disk))
            .unwrap();
        let got = got.final_frame();
        assert_eq!(
            want.num_rows(),
            got.num_rows(),
            "{}: row count {} (mem) vs {} (pruned disk)",
            spec.name,
            want.num_rows(),
            got.num_rows()
        );
        if want.num_rows() == 0 {
            continue;
        }
        let report = metrics::compare(want, got, spec.keys, spec.values)
            .unwrap_or_else(|e| panic!("{}: compare failed: {e}", spec.name));
        assert!(
            report.recall > 0.999 && report.precision > 0.999,
            "{}: recall {} precision {}",
            spec.name,
            report.recall,
            report.precision
        );
        assert!(
            report.mape < 1e-9,
            "{}: pruned final MAPE {}\nmem:\n{}\ndisk:\n{}",
            spec.name,
            report.mape,
            want.pretty(12),
            got.pretty(12)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zero_survivor_query_yields_exact_empty_not_false_convergence() {
    let data = Arc::new(TpchData::generate(0.002, 3));
    let dir = scratch_dir("zero-survivor");
    let disk = TpchDb::persisted(data, 8, &dir).unwrap();
    // No lineitem row has l_quantity > 1e9: every zone's max rules it out,
    // so the pushed-down scan prunes the whole table and presents a single
    // empty partition.
    let mut g = wake::core::graph::QueryGraph::new();
    let li = disk.read(&mut g, "lineitem");
    let f = g.filter(
        li,
        wake::expr::col("l_quantity").gt(wake::expr::lit_f64(1e9)),
    );
    let a = g.agg_with_ci(
        f,
        vec![],
        vec![wake::core::agg::AggSpec::sum(
            wake::expr::col("l_extendedprice"),
            "s",
        )],
    );
    g.sink(a);
    let (series, stats) = EngineConfig::stepped()
        .start(g)
        .unwrap()
        .collect_with_stats()
        .unwrap();
    let zones = disk
        .persisted_source("lineitem")
        .unwrap()
        .reader()
        .zone_count() as u64;
    assert!(zones >= 2, "need a multi-zone lineitem for this test");
    assert_eq!(stats.scan.zones_pruned, zones, "all zones must be pruned");
    assert_eq!(stats.scan.zones_scanned, 0, "nothing may be decoded");
    let last = series.last().unwrap();
    assert!(last.is_final);
    assert_eq!(last.t, 1.0);
    // The exact empty answer — not a scaled-up estimate from zero rows.
    assert_eq!(
        last.frame.num_rows(),
        0,
        "zero-survivor query must end empty, got:\n{}",
        last.frame.pretty(5)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pruned_reordered_scan_keeps_estimates_unbiased() {
    use wake::data::{Column, DataFrame, DataType, Field, Schema};
    // A table built for pruning: `z` is the zone index (perfectly
    // clustered — the filter column), `v` is hash-scattered (the measure
    // column, representative within every zone). 16 zones of 500 rows.
    let n = 8_000usize;
    let scatter = |i: usize| ((i as u64).wrapping_mul(2_654_435_761) % 1_000) as f64;
    let schema = Arc::new(Schema::new(vec![
        Field::new("z", DataType::Int64),
        Field::new("v", DataType::Float64),
    ]));
    let frame = DataFrame::new(
        schema,
        vec![
            Column::from_i64((0..n).map(|i| (i / 500) as i64).collect()),
            Column::from_f64((0..n).map(scatter).collect()),
        ],
    )
    .unwrap();
    let dir = scratch_dir("unbiased");
    let path = dir.join("clustered.wseg");
    wake::store::write_segment(
        "clustered",
        &frame,
        500,
        &[],
        None,
        &path,
        &wake::store::StdIo,
    )
    .unwrap();
    let source = wake::store::SegmentSource::open(&path, Arc::new(wake::store::StdIo)).unwrap();

    // z >= 8 prunes the lower half of the zones exactly (each zone's z is
    // constant); the survivors are visited in seeded random order.
    let build = || {
        let mut g = wake::core::graph::QueryGraph::new();
        let src = wake::store::SegmentSource::from_reader(source.reader().clone()).unwrap();
        let r = g.read(src);
        let f = g.filter(r, wake::expr::col("z").ge(wake::expr::lit_i64(8)));
        let a = g.agg_with_ci(
            f,
            vec![],
            vec![wake::core::agg::AggSpec::avg(wake::expr::col("v"), "m")],
        );
        g.sink(a);
        g
    };
    let truth = (4000..8000).map(scatter).sum::<f64>() / 4000.0;
    for seed in [1u64, 42, 1234] {
        let (series, stats) = EngineConfig::stepped()
            .with_scan_seed(seed)
            .start(build())
            .unwrap()
            .collect_with_stats()
            .unwrap();
        assert_eq!(stats.scan.zones_total, 16);
        assert_eq!(stats.scan.zones_pruned, 8, "seed {seed}");
        assert_eq!(stats.scan.zones_scanned, 8, "seed {seed}");
        // One estimate per surviving zone; progress spans the *retained*
        // population, reaching exactly 1 at the end (the pruned rows are
        // excluded from the growth model's totals, keeping it unbiased).
        assert_eq!(series.len(), 8, "seed {seed}");
        let last = series.last().unwrap();
        assert_eq!(last.t, 1.0);
        assert_eq!(
            last.frame.value(0, "m").unwrap().as_f64().unwrap(),
            truth,
            "seed {seed}: final must be exact"
        );
        // Every intermediate 95% Chebyshev CI must cover the truth — the
        // §8.5 validity check under the shuffled, pruned read. A biased
        // population accounting would shift estimates systematically and
        // break coverage (and make `until_confidence` stop on a wrong
        // answer).
        let mut covered = 0usize;
        for est in &series {
            let interval = wake::core::ci::interval_at(&est.frame, 0, "m", 0.95).unwrap();
            if interval.contains(truth) {
                covered += 1;
            }
        }
        let coverage = covered as f64 / series.len() as f64;
        assert!(coverage >= 0.9, "seed {seed}: coverage {coverage}");
        // The declarative stopping rule ends on an estimate whose CI is
        // both tight and truthful — never a false trigger.
        let stopped = EngineConfig::stepped()
            .with_scan_seed(seed)
            .start(build())
            .unwrap()
            .until_confidence("m", 0.05)
            .last()
            .unwrap()
            .unwrap();
        let interval = wake::core::ci::interval_at(&stopped.frame, 0, "m", 0.95).unwrap();
        assert!(
            interval.contains(truth),
            "seed {seed}: until_confidence stopped outside the truth: {:?} vs {truth}",
            interval
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
